//! # eov-ledger
//!
//! The blockchain ledger substrate: a hash-chained sequence of blocks, each batching the
//! ordered transactions delivered by the ordering service, together with the per-transaction
//! validity flags set during the validation phase (Fabric marks invalid transactions in the
//! block rather than removing them, so the raw ledger throughput counts them too — this is
//! exactly the raw-vs-effective distinction of Figure 1).
//!
//! * [`sha256`] — a dependency-free SHA-256 implementation used for block hashing.
//! * [`block`] — block headers, block bodies, and per-transaction commit flags.
//! * [`chain`] — the append-only hash-chained block store with integrity verification
//!   (the safety properties of Section 3.5: hash-chain integrity, no skipping, no creation).
//! * [`error`] — the typed [`error::LedgerError`] every durable operation reports instead of
//!   panicking.
//! * [`codec`] — the deterministic big-endian binary codec + CRC-32 behind the disk formats.
//! * [`segment`] — append-only, CRC-framed, size-rotated segment files holding the block
//!   records, with torn-tail repair on open.
//! * [`durable`] — [`durable::DurableLedger`] (segment files mirroring an in-memory
//!   [`Ledger`]) and the [`durable::LedgerBackend`] enum that keeps the in-memory ledger as
//!   the reference implementation.
//! * [`checkpoint`] — periodic multi-version-store snapshots cold recovery replays from.
//! * [`reenact`] — provenance queries joining a [`eov_vstore::TimeTravel`] answer back to the
//!   committing transaction in the ledger.

#![forbid(unsafe_code)]

pub mod block;
pub mod chain;
pub mod checkpoint;
pub mod codec;
pub mod durable;
pub mod error;
pub mod reenact;
pub mod segment;
pub mod sha256;

pub use block::{Block, BlockHeader, TxnEntry};
pub use chain::Ledger;
pub use checkpoint::{latest_checkpoint_at_most, load_checkpoint, write_checkpoint};
pub use durable::{DurableLedger, DurableOptions, LedgerBackend, OpenReport};
pub use error::LedgerError;
pub use reenact::{provenance, Provenance};
pub use segment::TornTail;
pub use sha256::{sha256, Digest};
