//! # fabricsharp
//!
//! Facade crate for the Rust reproduction of *"A Transactional Perspective on
//! Execute-Order-Validate Blockchains"* (Ruan et al., SIGMOD 2020).
//!
//! The workspace is organised as a set of substrate crates plus the paper's core contribution;
//! this crate re-exports all of them under stable module names so that examples, integration
//! tests and downstream users can depend on a single package:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`common`] | `eov-common` | sequence numbers, transactions, read/write sets, abort reasons, configuration |
//! | [`vstore`] | `eov-vstore` | multi-versioned state store, block snapshots, CW/CR/PW/PR indices |
//! | [`ledger`] | `eov-ledger` | SHA-256, blocks, hash-chained ledger |
//! | [`consensus`] | `eov-consensus` | simulated ordering service and adversarial leader hooks |
//! | [`depgraph`] | `eov-depgraph` | dependency graph, bloom-filter reachability, pruning |
//! | [`core`] | `fabricsharp-core` | **the paper's contribution**: Algorithms 1–5, the FabricSharp orderer-side concurrency control and the serializability oracle |
//! | [`baselines`] | `eov-baselines` | vanilla Fabric, Fabric++, Focc-s, Focc-l, and the `SimpleChain` facade |
//! | [`workload`] | `eov-workload` | Zipfian sampler, Smallbank contracts, workload generators |
//! | [`sim`] | `eov-sim` | discrete-event EOV pipeline simulator (Fabric & FastFabric profiles) |
//!
//! ## Quickstart
//!
//! ```
//! use fabricsharp::prelude::*;
//!
//! // Build a tiny chain with the FabricSharp concurrency control.
//! let mut chain = SimpleChain::new(SystemKind::FabricSharp);
//! let alice = Key::new("alice");
//! let bob = Key::new("bob");
//! chain.seed([(alice.clone(), Value::from_i64(100)), (bob.clone(), Value::from_i64(0))]);
//!
//! // Execute phase: simulate a transfer against the current snapshot...
//! let txn = chain.execute(|ctx| {
//!     let a = ctx.read_balance(&alice);
//!     let b = ctx.read_balance(&bob);
//!     ctx.write(alice.clone(), Value::from_i64(a - 10));
//!     ctx.write(bob.clone(), Value::from_i64(b + 10));
//! });
//! // ...order phase: submit it to the orderer-side concurrency control...
//! assert!(chain.submit(txn).is_accept());
//! // ...validate phase: seal the block, apply the writes, append to the hash-chained ledger.
//! let report = chain.seal_block();
//! assert_eq!(report.committed.len(), 1);
//! assert_eq!(chain.latest(&bob).unwrap().as_i64(), Some(10));
//! assert!(chain.ledger().verify_integrity().is_ok());
//! ```

#![forbid(unsafe_code)]

pub use eov_baselines as baselines;
pub use eov_common as common;
pub use eov_consensus as consensus;
pub use eov_depgraph as depgraph;
pub use eov_ledger as ledger;
pub use eov_sim as sim;
pub use eov_vstore as vstore;
pub use eov_workload as workload;
pub use fabricsharp_core as core;

/// Commonly used items, re-exported for examples and quick experiments.
pub mod prelude {
    pub use eov_baselines::api::{ConcurrencyControl, SystemKind};
    pub use eov_baselines::chain::{BlockReport, SimpleChain};
    pub use eov_common::rwset::{Key, Value};
    pub use eov_common::{
        AbortReason, BlockConfig, CcConfig, CommitDecision, DependencyKind, ExperimentGrid,
        ReadSet, SeqNo, Transaction, TxnId, TxnStatus, WorkloadParams, WriteSet,
    };
    pub use eov_sim::{PipelineProfile, SimReport, SimulationConfig, Simulator};
    pub use eov_workload::generator::{TxnTemplate, WorkloadGenerator, WorkloadKind};
    pub use fabricsharp_core::serializability::{is_serializable, is_strongly_serializable};
    pub use fabricsharp_core::FabricSharpCC;
}
