//! Exact cycle detection — the test oracle behind the bloom-filter fast path.
//!
//! Production FabricSharp never materialises full reachability; it relies on the bloom filters
//! (Section 4.4), accepting occasional false-positive aborts. For testing, benchmarking the
//! ablation, and validating Theorem 2 end-to-end, this module provides exact graph algorithms
//! over the successor edges: whole-graph acyclicity and an exact version of the arrival-time
//! cycle check. Both run directly on interned slots — dense colour tables and the epoch-tagged
//! scratch replace the per-call hash maps of the seed implementation.

use crate::graph::DependencyGraph;
use eov_common::txn::TxnId;

/// DFS colouring for cycle detection.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Colour {
    White,
    Grey,
    Black,
}

impl DependencyGraph {
    /// Exact whole-graph acyclicity check over successor edges. The FabricSharp invariant
    /// (Algorithm 2 keeps the graph acyclic) is asserted against this in tests and property
    /// tests.
    pub fn is_acyclic_exact(&self) -> bool {
        let capacity = self.capacity();
        let mut colour = vec![Colour::White; capacity];

        // Iterative DFS from every white live slot.
        let mut dfs: Vec<(u32, u32)> = Vec::new();
        for start in 0..capacity as u32 {
            if self.node_at(start).is_none() || colour[start as usize] != Colour::White {
                continue;
            }
            colour[start as usize] = Colour::Grey;
            dfs.push((start, 0));
            while let Some((slot, child_idx)) = dfs.last_mut() {
                let node = self.node_at(*slot).expect("grey slots are live");
                if let Some(&child) = node.succ.get(*child_idx as usize) {
                    *child_idx += 1;
                    match colour[child as usize] {
                        Colour::Grey => return false,
                        Colour::White => {
                            colour[child as usize] = Colour::Grey;
                            dfs.push((child, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[*slot as usize] = Colour::Black;
                    dfs.pop();
                }
            }
        }
        true
    }

    /// Exact version of [`DependencyGraph::would_close_cycle`]: inserting a transaction with
    /// the given predecessors and successors closes a cycle iff some successor can reach some
    /// predecessor through existing edges (or a transaction appears on both sides).
    pub fn would_close_cycle_exact(&self, preds: &[TxnId], succs: &[TxnId]) -> bool {
        let mut scratch = self.scratch().borrow_mut();
        let capacity = self.capacity();
        // Mark the (tracked) predecessor slots; the DFS below tests membership in O(1).
        scratch.marks.reset(capacity);
        let mut any_pred = false;
        for &p in preds {
            if let Some(slot) = self.slot_of(p) {
                scratch.marks.insert(slot);
                any_pred = true;
            }
        }
        if !any_pred {
            return false;
        }
        for &s in succs {
            let Some(s_slot) = self.slot_of(s) else {
                continue;
            };
            if scratch.marks.contains(s_slot) {
                return true;
            }
            // DFS from s looking for any predecessor.
            scratch.visited.reset(capacity);
            scratch.visited.insert(s_slot);
            scratch.stack.clear();
            scratch.stack.push(s_slot);
            while let Some(current) = scratch.stack.pop() {
                let node = self.node_at(current).expect("adjacency never dangles");
                for &nxt in &node.succ {
                    if scratch.marks.contains(nxt) {
                        return true;
                    }
                    if scratch.visited.insert(nxt) {
                        scratch.stack.push(nxt);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PendingTxnSpec;
    use eov_common::config::CcConfig;
    use eov_common::version::SeqNo;

    fn spec(id: u64) -> PendingTxnSpec {
        PendingTxnSpec {
            id: TxnId(id),
            start_ts: SeqNo::snapshot_after(0),
            read_keys: vec![],
            write_keys: vec![],
        }
    }

    fn exact_graph() -> DependencyGraph {
        DependencyGraph::new(CcConfig {
            track_exact_reachability: true,
            ..CcConfig::default()
        })
    }

    #[test]
    fn chains_and_diamonds_are_acyclic() {
        let mut g = exact_graph();
        g.insert_pending(spec(1), &[], &[], 1);
        g.insert_pending(spec(2), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(3), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(4), &[TxnId(2), TxnId(3)], &[], 1);
        assert!(g.is_acyclic_exact());
    }

    #[test]
    fn manually_forced_cycle_is_detected() {
        let mut g = exact_graph();
        g.insert_pending(spec(1), &[], &[], 1);
        g.insert_pending(spec(2), &[TxnId(1)], &[], 1);
        // Force 2 → 1 by adding the edge directly (bypassing Algorithm 2's guard).
        g.add_edge_with_union(TxnId(2), TxnId(1));
        assert!(!g.is_acyclic_exact());
    }

    #[test]
    fn exact_would_close_cycle_agrees_with_reachability() {
        let mut g = exact_graph();
        g.insert_pending(spec(1), &[], &[], 1);
        g.insert_pending(spec(2), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(3), &[TxnId(2)], &[], 1);
        // succ 1, pred 3 closes 1→2→3→new→1.
        assert!(g.would_close_cycle_exact(&[TxnId(3)], &[TxnId(1)]));
        // succ 3, pred 1 does not (1 already reaches 3, new extends the chain).
        assert!(!g.would_close_cycle_exact(&[TxnId(1)], &[TxnId(3)]));
        // Same node on both sides is a cycle.
        assert!(g.would_close_cycle_exact(&[TxnId(2)], &[TxnId(2)]));
        // Unknown ids never close cycles.
        assert!(!g.would_close_cycle_exact(&[TxnId(9)], &[TxnId(1)]));
        assert!(!g.would_close_cycle_exact(&[], &[TxnId(1)]));
    }

    #[test]
    fn empty_graph_is_acyclic() {
        let g = exact_graph();
        assert!(g.is_acyclic_exact());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::{CycleCheck, PendingTxnSpec};
    use eov_common::config::CcConfig;
    use eov_common::version::SeqNo;
    use proptest::prelude::*;

    proptest! {
        /// The bloom-filter cycle check never reports "acyclic" when the exact check finds a
        /// cycle (no false negatives), on randomly grown DAGs with random probe edges.
        #[test]
        fn bloom_check_has_no_false_negatives(
            edges in proptest::collection::vec((0u64..10, 0u64..10), 0..30),
            probe_preds in proptest::collection::vec(0u64..10, 1..4),
            probe_succs in proptest::collection::vec(0u64..10, 1..4),
        ) {
            let mut g = DependencyGraph::new(CcConfig {
                track_exact_reachability: true,
                ..CcConfig::default()
            });
            let mut preds: std::collections::HashMap<u64, Vec<TxnId>> = Default::default();
            for (a, b) in edges {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if lo != hi {
                    preds.entry(hi).or_default().push(TxnId(lo));
                }
            }
            for id in 0u64..10 {
                let p = preds.remove(&id).unwrap_or_default();
                g.insert_pending(PendingTxnSpec {
                    id: TxnId(id),
                    start_ts: SeqNo::snapshot_after(0),
                    read_keys: vec![],
                    write_keys: vec![],
                }, &p, &[], 1);
            }
            prop_assert!(g.is_acyclic_exact());

            let pred_ids: Vec<TxnId> = probe_preds.into_iter().map(TxnId).collect();
            let succ_ids: Vec<TxnId> = probe_succs.into_iter().map(TxnId).collect();
            let exact = g.would_close_cycle_exact(&pred_ids, &succ_ids);
            let bloom = g.would_close_cycle(&pred_ids, &succ_ids);
            if exact {
                prop_assert!(matches!(bloom, CycleCheck::Cycle { .. }),
                    "bloom check missed a genuine cycle");
            }
        }
    }
}
