//! Key-space sharded dependency graph: per-shard [`DependencyGraph`]s plus the cross-shard
//! coordinator for border transactions.
//!
//! Every dependency edge is induced by a key, so the edge set of the global graph partitions
//! cleanly across shards: shard `s` holds the edges whose inducing key routes to `s`. A
//! transaction whose keys all live in one shard (*local*) has exactly one graph node, in that
//! shard. A transaction touching two or more shards (*border*) gets one node copy per touched
//! shard — its edges split across them — and is registered with the coordinator.
//!
//! # The reachability invariant
//!
//! Every copy of every node carries the transaction's **global** `anti_reachable` set (and
//! age). For local-only shards this holds for free: with no border transaction in a shard,
//! everything downstream of a node stays inside the shard, so the shard's own Algorithm 4 walk
//! is the global walk. The moment a border transaction exists, insertion switches to the
//! coordinator's cross-shard walk: node copies are inserted with their per-shard predecessor
//! edges, the copies' reach sets are merged, successor edges are wired per shard without
//! unions, and one global downstream walk (crossing shards at border transactions) applies the
//! delta to *every copy* of every reachable node — the same per-node update, over the same
//! node set, as the unsharded walk.
//!
//! Because bloom filters are order-insensitive bitwise-OR accumulators over transaction ids,
//! maintaining equal reach *sets* yields bit-identical filters — so the arrival-time cycle
//! probe returns the same verdict (including the same false positives) as the unsharded graph,
//! and the topological order (same closure relation, same arrival tie-break) is identical.
//! That is the foundation of the `sharding_determinism` ledger-identity guarantee, and the
//! module's property tests pin it directly against a global reference graph.
//!
//! This mirrors the per-partition reasoning of transaction-template robustness work
//! (Vandevoort et al., arXiv:2201.05021): conflicts decompose per key partition, and only the
//! border transactions require cross-partition reasoning.

use crate::graph::{CycleCheck, DependencyGraph, InsertReport, PendingTxnSpec, TxnNode};
use eov_common::config::CcConfig;
use eov_common::rwset::Key;
use eov_common::txn::TxnId;
use eov_common::version::SeqNo;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One shard's slice of a new transaction: the keys it touches there and the dependency edges
/// induced by those keys.
#[derive(Clone, Debug, Default)]
pub struct ShardDeps {
    /// The shard these keys route to.
    pub shard: usize,
    /// Read keys owned by this shard.
    pub read_keys: Vec<Key>,
    /// Write keys owned by this shard.
    pub write_keys: Vec<Key>,
    /// Predecessors resolved against this shard's indices (deduplicated).
    pub predecessors: Vec<TxnId>,
    /// Successors resolved against this shard's indices (deduplicated).
    pub successors: Vec<TxnId>,
}

/// Global arrival order of the pending set, shared by all shards (the tie-break of the
/// deterministic topological sort).
#[derive(Clone, Debug, Default)]
struct PendingOrder {
    seq_of: HashMap<u64, u64>,
    by_seq: BTreeMap<u64, TxnId>,
    next_seq: u64,
}

impl PendingOrder {
    fn push(&mut self, id: TxnId) {
        if self.seq_of.contains_key(&id.0) {
            return;
        }
        self.seq_of.insert(id.0, self.next_seq);
        self.by_seq.insert(self.next_seq, id);
        self.next_seq += 1;
    }

    fn remove(&mut self, id: TxnId) {
        if let Some(seq) = self.seq_of.remove(&id.0) {
            self.by_seq.remove(&seq);
        }
    }

    fn seq(&self, id: TxnId) -> Option<u64> {
        self.seq_of.get(&id.0).copied()
    }

    fn len(&self) -> usize {
        self.by_seq.len()
    }

    fn iter(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.by_seq.values().copied()
    }
}

/// The sharded dependency graph: `S` per-shard graphs plus the border-transaction coordinator.
#[derive(Clone, Debug)]
pub struct ShardedDependencyGraph {
    config: CcConfig,
    shards: Vec<DependencyGraph>,
    /// Coordinator state: txn id → home shards (ascending). `len() > 1` marks a border txn.
    homes: HashMap<u64, Vec<usize>>,
    /// Live border transactions per shard; a shard with zero border txns runs entirely on its
    /// local fast path (its downstream closures cannot leave the shard).
    border_in_shard: Vec<usize>,
    /// Live border transactions in total; zero means the global graph is a disjoint union of
    /// the per-shard graphs and the coordinator is bypassed everywhere.
    border_total: usize,
    pending: PendingOrder,
}

impl ShardedDependencyGraph {
    /// Creates an empty sharded graph with `shards` partitions (clamped to at least 1).
    pub fn new(config: CcConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        ShardedDependencyGraph {
            shards: (0..shards).map(|_| DependencyGraph::new(config)).collect(),
            config,
            homes: HashMap::new(),
            border_in_shard: vec![0; shards],
            border_total: 0,
            pending: PendingOrder::default(),
        }
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> &CcConfig {
        &self.config
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard graph (diagnostics and tests).
    pub fn shard(&self, shard: usize) -> &DependencyGraph {
        &self.shards[shard]
    }

    /// Number of distinct transactions currently tracked.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether no transaction is tracked.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// Whether `id` is currently tracked.
    pub fn contains(&self, id: TxnId) -> bool {
        self.homes.contains_key(&id.0)
    }

    /// Number of live border (multi-shard) transactions.
    pub fn border_count(&self) -> usize {
        self.border_total
    }

    /// Whether `id` is a border transaction.
    pub fn is_border(&self, id: TxnId) -> bool {
        self.homes.get(&id.0).map(|h| h.len() > 1).unwrap_or(false)
    }

    /// Number of pending transactions (globally).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The pending transactions in global arrival order.
    pub fn pending_ids(&self) -> Vec<TxnId> {
        self.pending.iter().collect()
    }

    /// One of `id`'s node copies (they agree on everything except per-shard edges).
    pub fn node(&self, id: TxnId) -> Option<&TxnNode> {
        let homes = self.homes.get(&id.0)?;
        self.shards[homes[0]].node(id)
    }

    /// The union of `id`'s immediate successors across its home shards (deduplicated).
    pub fn successors_global(&self, id: TxnId) -> Vec<TxnId> {
        let Some(homes) = self.homes.get(&id.0) else {
            return Vec::new();
        };
        if homes.len() == 1 {
            return self.shards[homes[0]].successors(id);
        }
        let mut out: Vec<TxnId> = Vec::new();
        for &shard in homes {
            for s in self.shards[shard].successors(id) {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }

    /// Section 4.4's cycle test over the global reach sets. Identical verdict (bit for bit,
    /// including bloom false positives) to the unsharded graph thanks to the reachability
    /// invariant: any copy of a predecessor carries the merged global filter, so one probe per
    /// pair suffices no matter how many shards the path crosses.
    pub fn would_close_cycle(&self, preds: &[TxnId], succs: &[TxnId]) -> CycleCheck {
        for &p in preds {
            let p_node = self.node(p);
            for &s in succs {
                if p == s {
                    return CycleCheck::Cycle {
                        confirmed_exact: Some(true),
                    };
                }
                let Some(p_node) = p_node else {
                    continue;
                };
                if !self.contains(s) {
                    continue;
                }
                if p_node.anti_reachable.contains(s) {
                    let confirmed = p_node
                        .anti_reachable
                        .contains_exact(s)
                        .map(|exact| exact || self.reaches_exact(s, p));
                    return CycleCheck::Cycle {
                        confirmed_exact: confirmed,
                    };
                }
            }
        }
        CycleCheck::Acyclic
    }

    /// Algorithm 4 across shards. `per_shard` carries the transaction's keys and resolved
    /// dependencies split by owning shard; an empty slice means "single shard 0 with the
    /// spec's full key set and the given global dependency lists" (the `S = 1` convenience).
    ///
    /// Local fast path: a single-home transaction whose home shard tracks no border
    /// transaction delegates wholesale to that shard's own insert — the coordinator is never
    /// touched. Otherwise the coordinator inserts the node copies, merges their reach sets,
    /// wires successor edges per shard, and runs one global downstream walk that applies the
    /// delta to every copy of every reachable node (crossing shards at border transactions).
    pub fn insert_pending(
        &mut self,
        spec: PendingTxnSpec,
        global_preds: &[TxnId],
        global_succs: &[TxnId],
        per_shard: &[ShardDeps],
        next_block: u64,
    ) -> InsertReport {
        let id = spec.id;
        if self.contains(id) {
            // Same contract as the unsharded graph: replayed deliveries are a no-op.
            return InsertReport::default();
        }

        let single_shard_fallback;
        let per_shard: &[ShardDeps] = if per_shard.is_empty() {
            single_shard_fallback = [ShardDeps {
                shard: 0,
                read_keys: spec.read_keys.clone(),
                write_keys: spec.write_keys.clone(),
                predecessors: global_preds.to_vec(),
                successors: global_succs.to_vec(),
            }];
            &single_shard_fallback
        } else {
            per_shard
        };

        let homes: Vec<usize> = per_shard.iter().map(|d| d.shard).collect();
        debug_assert!(homes.windows(2).all(|w| w[0] < w[1]), "homes ascending");

        // Local fast path: no coordinator involvement possible or needed.
        if homes.len() == 1 && self.border_in_shard[homes[0]] == 0 {
            let d = &per_shard[0];
            let report = self.shards[d.shard].insert_pending(
                PendingTxnSpec {
                    id,
                    start_ts: spec.start_ts,
                    read_keys: d.read_keys.clone(),
                    write_keys: d.write_keys.clone(),
                },
                &d.predecessors,
                &d.successors,
                next_block,
            );
            self.homes.insert(id.0, homes);
            self.pending.push(id);
            return report;
        }

        // Coordinator path. 1) Insert the node copies with predecessor edges only (no local
        // walk fires without successors). Each shard's predecessors carry global reach sets by
        // the invariant, so each copy's set is the union of its shard's contribution.
        for d in per_shard {
            self.shards[d.shard].insert_pending(
                PendingTxnSpec {
                    id,
                    start_ts: spec.start_ts,
                    read_keys: d.read_keys.clone(),
                    write_keys: d.write_keys.clone(),
                },
                &d.predecessors,
                &[],
                next_block,
            );
        }

        // 2) Merge the copies so every one carries the global set.
        if homes.len() > 1 {
            let mut merged = self.shards[homes[0]]
                .node(id)
                .expect("just inserted")
                .anti_reachable
                .clone();
            for &shard in &homes[1..] {
                merged.union_with(
                    &self.shards[shard]
                        .node(id)
                        .expect("just inserted")
                        .anti_reachable,
                );
            }
            for &shard in &homes {
                self.shards[shard].replace_reach(id, merged.clone());
            }
            self.border_total += 1;
            for &shard in &homes {
                self.border_in_shard[shard] += 1;
            }
        }
        self.homes.insert(id.0, homes);
        self.pending.push(id);

        // 3) Wire successor edges per shard, without unions — the walk below applies the delta.
        for d in per_shard {
            for &s in &d.successors {
                self.shards[d.shard].add_edge(id, s);
            }
        }

        // 4) One global downstream walk (Algorithm 4 lines 5–7): every node reachable from the
        // successors learns the new transaction's reach set plus the transaction itself, on
        // every copy, and has its age bumped. `hops` counts distinct visited nodes, exactly
        // like the unsharded walk.
        let delta = self.node(id).expect("just inserted").anti_reachable.clone();
        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(id.0);
        let mut stack: Vec<TxnId> = Vec::new();
        for d in per_shard {
            for &s in &d.successors {
                if s != id && self.contains(s) && !stack.contains(&s) {
                    stack.push(s);
                }
            }
        }
        let mut hops = 0usize;
        while let Some(t) = stack.pop() {
            if !visited.insert(t.0) {
                continue;
            }
            hops += 1;
            let homes_t = self.homes[&t.0].clone();
            for &shard in &homes_t {
                self.shards[shard].absorb_reach(t, &delta, Some(id), next_block);
            }
            for s in self.successors_global(t) {
                if !visited.contains(&s.0) {
                    stack.push(s);
                }
            }
        }
        InsertReport { hops }
    }

    /// Marks a transaction as committed at `end_ts` on every copy.
    pub fn mark_committed(&mut self, id: TxnId, end_ts: SeqNo) {
        if let Some(homes) = self.homes.get(&id.0) {
            for &shard in homes.clone().iter() {
                self.shards[shard].mark_committed(id, end_ts);
            }
        }
        self.pending.remove(id);
    }

    /// Removes a transaction entirely (withdrawals / adversarial tests).
    pub fn remove(&mut self, id: TxnId) {
        let Some(homes) = self.homes.remove(&id.0) else {
            return;
        };
        if homes.len() > 1 {
            self.border_total -= 1;
            for &shard in &homes {
                self.border_in_shard[shard] -= 1;
            }
        }
        for &shard in &homes {
            self.shards[shard].remove(id);
        }
        self.pending.remove(id);
    }

    /// Whether `earlier` already reaches `later` (bloom probe on `later`'s global set).
    pub fn already_connected(&self, earlier: TxnId, later: TxnId) -> bool {
        self.node(later)
            .map(|n| n.anti_reachable.contains(earlier))
            .unwrap_or(false)
    }

    /// Algorithm 5's restored ww edge, attributed to the shard owning the restored key: adds
    /// the edge there with the union, then mirrors the delta onto `to`'s other copies so the
    /// invariant holds before the caller's downstream propagation.
    pub fn add_ww_edge(&mut self, shard: usize, from: TxnId, to: TxnId) {
        if from == to {
            return;
        }
        let to_homes = match self.homes.get(&to.0) {
            Some(h) if self.contains(from) => h.clone(),
            _ => return,
        };
        let delta = (to_homes.len() > 1).then(|| {
            self.node(from)
                .expect("checked above")
                .anti_reachable
                .clone()
        });
        self.shards[shard].add_edge_with_union(from, to);
        if let Some(delta) = delta {
            for &h in &to_homes {
                if h != shard {
                    self.shards[h].absorb_reach(to, &delta, Some(from), 0);
                }
            }
        }
    }

    /// Propagates reachability downstream of `heads` exactly once per node in topological
    /// order (the tail of Algorithm 5). With no border transactions this runs each shard's
    /// local topo walk; otherwise the coordinator computes a global topological order over the
    /// union adjacency and pushes every node's set into all copies of its successors.
    pub fn propagate_from(&mut self, heads: &[TxnId]) {
        if heads.is_empty() {
            return;
        }
        if self.border_total == 0 {
            let mut heads_by_shard: HashMap<usize, Vec<TxnId>> = HashMap::new();
            for &head in heads {
                if let Some(homes) = self.homes.get(&head.0) {
                    heads_by_shard.entry(homes[0]).or_default().push(head);
                }
            }
            for (shard, heads) in heads_by_shard {
                let graph = &mut self.shards[shard];
                let iteration = graph.reachable_in_topo_order(&heads);
                for txn in iteration {
                    for s in graph.successors(txn) {
                        graph.propagate_reachability(txn, s);
                    }
                }
            }
            return;
        }

        for txn in self.reachable_in_topo_order_global(heads) {
            let succs = self.successors_global(txn);
            if succs.is_empty() {
                continue;
            }
            let delta = self
                .node(txn)
                .expect("topo order only visits tracked nodes")
                .anti_reachable
                .clone();
            for s in succs {
                let homes_s = self.homes[&s.0].clone();
                for &shard in &homes_s {
                    self.shards[shard].absorb_reach(s, &delta, Some(txn), 0);
                }
            }
        }
    }

    /// Every transaction reachable from `roots` over the union adjacency, in topological order
    /// (reverse postorder of an iterative DFS — the global counterpart of
    /// [`DependencyGraph::reachable_in_topo_order`]).
    fn reachable_in_topo_order_global(&self, roots: &[TxnId]) -> Vec<TxnId> {
        let mut visited: HashSet<u64> = HashSet::new();
        let mut postorder: Vec<TxnId> = Vec::new();
        let mut dfs: Vec<(TxnId, Vec<TxnId>, usize)> = Vec::new();
        for &root in roots {
            if !self.contains(root) || !visited.insert(root.0) {
                continue;
            }
            dfs.push((root, self.successors_global(root), 0));
            while let Some((node, succs, child_idx)) = dfs.last_mut() {
                if let Some(&child) = succs.get(*child_idx) {
                    *child_idx += 1;
                    if visited.insert(child.0) {
                        let child_succs = self.successors_global(child);
                        dfs.push((child, child_succs, 0));
                    }
                } else {
                    postorder.push(*node);
                    dfs.pop();
                }
            }
        }
        postorder.reverse();
        postorder
    }

    /// The pending transactions in a topological order consistent with global reachability,
    /// ties broken by global arrival order — the same order the unsharded graph computes.
    ///
    /// With zero border transactions the global closure graph is a disjoint union of the
    /// per-shard closure graphs, so the global Kahn-by-arrival order is exactly the k-way merge
    /// of the per-shard orders by arrival index (each per-shard order is the restriction of
    /// the global one). Otherwise the coordinator computes the cross-shard closure and runs
    /// Kahn's algorithm itself.
    pub fn topo_sort_pending(&self) -> Vec<TxnId> {
        if self.pending.len() <= 1 {
            return self.pending.iter().collect();
        }
        if self.border_total == 0 {
            return self.merge_shard_orders();
        }
        self.topo_sort_pending_global()
    }

    /// Fast path: merge per-shard topological orders by global arrival index.
    fn merge_shard_orders(&self) -> Vec<TxnId> {
        let mut orders: Vec<std::vec::IntoIter<TxnId>> = self
            .shards
            .iter()
            .map(|g| g.topo_sort_pending().into_iter())
            .collect();
        let mut heads: Vec<Option<(u64, TxnId)>> = orders
            .iter_mut()
            .map(|it| it.next().map(|id| (self.seq_or_max(id), id)))
            .collect();
        let mut out = Vec::with_capacity(self.pending.len());
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (i, head) in heads.iter().enumerate() {
                if let Some((seq, _)) = head {
                    if best.map(|(s, _)| *seq < s).unwrap_or(true) {
                        best = Some((*seq, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            let (_, id) = heads[i].take().expect("best head exists");
            out.push(id);
            heads[i] = orders[i].next().map(|id| (self.seq_or_max(id), id));
        }
        out
    }

    fn seq_or_max(&self, id: TxnId) -> u64 {
        self.pending.seq(id).unwrap_or(u64::MAX)
    }

    /// Coordinator path: closure over the union adjacency + Kahn with arrival tie-breaks.
    fn topo_sort_pending_global(&self) -> Vec<TxnId> {
        let pending: Vec<TxnId> = self.pending.iter().collect();
        let p = pending.len();
        let pos: HashMap<u64, u32> = pending
            .iter()
            .enumerate()
            .map(|(i, id)| (id.0, i as u32))
            .collect();

        // Closure edges: i → j iff pending[i] reaches pending[j] through any path, committed
        // intermediaries and cross-shard hops included.
        let mut closure: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut indegree: Vec<u32> = vec![0; p];
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<TxnId> = Vec::new();
        for (i, &pid) in pending.iter().enumerate() {
            visited.clear();
            visited.insert(pid.0);
            stack.clear();
            stack.extend(self.successors_global(pid));
            while let Some(t) = stack.pop() {
                if !visited.insert(t.0) {
                    continue;
                }
                if let Some(&j) = pos.get(&t.0) {
                    closure[i].push(j);
                    indegree[j as usize] += 1;
                }
                stack.extend(self.successors_global(t));
            }
        }

        // Kahn with a min-heap on arrival index (identical tie-break to the unsharded engine).
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<u32>> = indegree
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == 0)
            .map(|(i, _)| Reverse(i as u32))
            .collect();
        let mut order: Vec<TxnId> = Vec::with_capacity(p);
        let mut emitted = vec![false; p];
        while let Some(Reverse(next)) = heap.pop() {
            emitted[next as usize] = true;
            order.push(pending[next as usize]);
            for &j in &closure[next as usize] {
                let d = &mut indegree[j as usize];
                *d -= 1;
                if *d == 0 {
                    heap.push(Reverse(j));
                }
            }
        }
        // Defensive fallback, mirroring the unsharded engine: emit leftovers in arrival order.
        if order.len() < p {
            for (i, &t) in pending.iter().enumerate() {
                if !emitted[i] {
                    order.push(t);
                }
            }
        }
        order
    }

    /// Exact reachability over the union adjacency (cross-shard DFS).
    pub fn reaches_exact(&self, from: TxnId, to: TxnId) -> bool {
        if from == to {
            return self.contains(from);
        }
        if !self.contains(from) || !self.contains(to) {
            return false;
        }
        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(from.0);
        let mut stack = vec![from];
        while let Some(t) = stack.pop() {
            for s in self.successors_global(t) {
                if s == to {
                    return true;
                }
                if visited.insert(s.0) {
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Exact whole-graph acyclicity over the union adjacency (test oracle).
    pub fn is_acyclic_exact(&self) -> bool {
        // Iterative 3-colour DFS over transaction ids.
        let mut colour: HashMap<u64, u8> = HashMap::new(); // 1 = grey, 2 = black
        let ids: Vec<u64> = self.homes.keys().copied().collect();
        let mut dfs: Vec<(TxnId, Vec<TxnId>, usize)> = Vec::new();
        for &start in &ids {
            if colour.contains_key(&start) {
                continue;
            }
            colour.insert(start, 1);
            dfs.push((TxnId(start), self.successors_global(TxnId(start)), 0));
            while let Some((node, succs, child_idx)) = dfs.last_mut() {
                if let Some(&child) = succs.get(*child_idx) {
                    *child_idx += 1;
                    match colour.get(&child.0) {
                        Some(1) => return false,
                        Some(_) => {}
                        None => {
                            colour.insert(child.0, 1);
                            let child_succs = self.successors_global(child);
                            dfs.push((child, child_succs, 0));
                        }
                    }
                } else {
                    colour.insert(node.0, 2);
                    dfs.pop();
                }
            }
        }
        true
    }

    /// Section 4.6 pruning across shards. Ages are kept in sync on every copy, so each border
    /// transaction leaves all its shards in the same call; the coordinator then retires its
    /// bookkeeping. Returns the number of distinct transactions removed.
    pub fn prune_for_next_block(&mut self, next_block: u64) -> usize {
        let threshold = crate::prune::snapshot_threshold(next_block, self.config.max_span);
        let mut removed: HashSet<u64> = HashSet::new();
        for shard in &mut self.shards {
            for id in shard.prune_stale(threshold) {
                removed.insert(id.0);
            }
        }
        for id in &removed {
            if let Some(homes) = self.homes.remove(id) {
                if homes.len() > 1 {
                    self.border_total -= 1;
                    for &shard in &homes {
                        self.border_in_shard[shard] -= 1;
                    }
                }
            }
        }
        removed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_exact() -> CcConfig {
        CcConfig {
            track_exact_reachability: true,
            ..CcConfig::default()
        }
    }

    fn spec(id: u64, read_keys: Vec<Key>, write_keys: Vec<Key>) -> PendingTxnSpec {
        PendingTxnSpec {
            id: TxnId(id),
            start_ts: SeqNo::snapshot_after(0),
            read_keys,
            write_keys,
        }
    }

    /// Splits a flat dependency list into per-shard slices for a two-shard graph where even
    /// ids live on shard 0 and odd ids on shard 1 — a synthetic router for tests that need
    /// precise control of border membership.
    fn deps_for(
        shards: &[usize],
        preds: &[(usize, TxnId)],
        succs: &[(usize, TxnId)],
    ) -> Vec<ShardDeps> {
        shards
            .iter()
            .map(|&shard| ShardDeps {
                shard,
                read_keys: vec![],
                write_keys: vec![],
                predecessors: preds
                    .iter()
                    .filter(|(s, _)| *s == shard)
                    .map(|(_, t)| *t)
                    .collect(),
                successors: succs
                    .iter()
                    .filter(|(s, _)| *s == shard)
                    .map(|(_, t)| *t)
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn local_transactions_never_touch_the_coordinator() {
        let mut g = ShardedDependencyGraph::new(cfg_exact(), 2);
        g.insert_pending(
            spec(1, vec![], vec![]),
            &[],
            &[],
            &deps_for(&[0], &[], &[]),
            1,
        );
        g.insert_pending(
            spec(2, vec![], vec![]),
            &[TxnId(1)],
            &[],
            &deps_for(&[0], &[(0, TxnId(1))], &[]),
            1,
        );
        g.insert_pending(
            spec(3, vec![], vec![]),
            &[],
            &[],
            &deps_for(&[1], &[], &[]),
            1,
        );
        assert_eq!(g.border_count(), 0);
        assert_eq!(g.len(), 3);
        assert!(g.contains(TxnId(2)));
        assert!(!g.is_border(TxnId(2)));
        assert!(g.reaches_exact(TxnId(1), TxnId(2)));
        assert!(!g.reaches_exact(TxnId(1), TxnId(3)));
        assert_eq!(g.topo_sort_pending(), vec![TxnId(1), TxnId(2), TxnId(3)]);
        assert!(g.is_acyclic_exact());
    }

    #[test]
    fn border_transactions_bridge_reachability_across_shards() {
        let mut g = ShardedDependencyGraph::new(cfg_exact(), 2);
        // Local chain on shard 0: 1 → 2.
        g.insert_pending(
            spec(1, vec![], vec![]),
            &[],
            &[],
            &deps_for(&[0], &[], &[]),
            1,
        );
        g.insert_pending(
            spec(2, vec![], vec![]),
            &[TxnId(1)],
            &[],
            &deps_for(&[0], &[(0, TxnId(1))], &[]),
            1,
        );
        // Border txn 5 with a predecessor on shard 0 (txn 2) and nothing on shard 1 yet.
        g.insert_pending(
            spec(5, vec![], vec![]),
            &[TxnId(2)],
            &[],
            &deps_for(&[0, 1], &[(0, TxnId(2))], &[]),
            1,
        );
        assert_eq!(g.border_count(), 1);
        assert!(g.is_border(TxnId(5)));
        // Local txn 7 on shard 1 downstream of the border txn.
        g.insert_pending(
            spec(7, vec![], vec![]),
            &[TxnId(5)],
            &[],
            &deps_for(&[1], &[(1, TxnId(5))], &[]),
            1,
        );

        // Cross-shard transitive reachability: 1 → 2 → 5 → 7.
        assert!(g.reaches_exact(TxnId(1), TxnId(7)));
        let n7 = g.node(TxnId(7)).unwrap();
        for upstream in [1u64, 2, 5] {
            assert_eq!(
                n7.anti_reachable.contains_exact(TxnId(upstream)),
                Some(true),
                "txn 7 must know {upstream} reaches it"
            );
        }
        // The cycle probe sees the cross-shard path: pred 7, succ 1 closes 1→…→7→new→1.
        assert!(!g.would_close_cycle(&[TxnId(7)], &[TxnId(1)]).is_acyclic());
        assert!(g.would_close_cycle(&[TxnId(1)], &[TxnId(7)]).is_acyclic());
        assert_eq!(
            g.topo_sort_pending(),
            vec![TxnId(1), TxnId(2), TxnId(5), TxnId(7)]
        );
    }

    /// Successor edges wired at insert time must propagate the new transaction's reach set
    /// across shards too (the downstream-walk half of the invariant).
    #[test]
    fn insert_with_cross_shard_downstream_updates_every_copy() {
        let mut g = ShardedDependencyGraph::new(cfg_exact(), 2);
        // Border txn 10 homed on both shards; local txn 11 downstream on shard 1.
        g.insert_pending(
            spec(10, vec![], vec![]),
            &[],
            &[],
            &deps_for(&[0, 1], &[], &[]),
            1,
        );
        g.insert_pending(
            spec(11, vec![], vec![]),
            &[TxnId(10)],
            &[],
            &deps_for(&[1], &[(1, TxnId(10))], &[]),
            1,
        );
        // New txn 3 on shard 0 whose successor is the border txn 10: 11 (shard 1) must learn
        // that 3 reaches it, through the coordinator walk.
        let report = g.insert_pending(
            spec(3, vec![], vec![]),
            &[],
            &[TxnId(10)],
            &deps_for(&[0], &[], &[(0, TxnId(10))]),
            1,
        );
        assert!(
            report.hops >= 2,
            "walk must visit 10 and 11, got {}",
            report.hops
        );
        assert_eq!(
            g.node(TxnId(11))
                .unwrap()
                .anti_reachable
                .contains_exact(TxnId(3)),
            Some(true)
        );
        // Both copies of the border txn agree.
        for shard in 0..2 {
            assert_eq!(
                g.shard(shard)
                    .node(TxnId(10))
                    .unwrap()
                    .anti_reachable
                    .contains_exact(TxnId(3)),
                Some(true),
                "copy in shard {shard}"
            );
        }
        assert!(g.reaches_exact(TxnId(3), TxnId(11)));
    }

    #[test]
    fn ww_edges_and_propagation_keep_copies_in_sync() {
        let mut g = ShardedDependencyGraph::new(cfg_exact(), 2);
        g.insert_pending(
            spec(1, vec![], vec![]),
            &[],
            &[],
            &deps_for(&[0], &[], &[]),
            1,
        );
        g.insert_pending(
            spec(2, vec![], vec![]),
            &[],
            &[],
            &deps_for(&[0, 1], &[], &[]),
            1,
        );
        g.insert_pending(
            spec(3, vec![], vec![]),
            &[TxnId(2)],
            &[],
            &deps_for(&[1], &[(1, TxnId(2))], &[]),
            1,
        );
        // Restore a ww edge 1 → 2 on shard 0, then propagate downstream from 2.
        assert!(!g.already_connected(TxnId(1), TxnId(2)));
        g.add_ww_edge(0, TxnId(1), TxnId(2));
        assert!(g.already_connected(TxnId(1), TxnId(2)));
        for shard in 0..2 {
            assert_eq!(
                g.shard(shard)
                    .node(TxnId(2))
                    .unwrap()
                    .anti_reachable
                    .contains_exact(TxnId(1)),
                Some(true),
                "both copies of 2 must learn the restored edge (shard {shard})"
            );
        }
        g.propagate_from(&[TxnId(2)]);
        assert_eq!(
            g.node(TxnId(3))
                .unwrap()
                .anti_reachable
                .contains_exact(TxnId(1)),
            Some(true),
            "downstream of the border txn must learn the restored reachability"
        );
        assert!(g.reaches_exact(TxnId(1), TxnId(3)));
    }

    #[test]
    fn mark_committed_and_prune_retire_border_bookkeeping() {
        let mut g = ShardedDependencyGraph::new(
            CcConfig {
                max_span: 2,
                track_exact_reachability: true,
                ..CcConfig::default()
            },
            2,
        );
        g.insert_pending(
            spec(1, vec![], vec![]),
            &[],
            &[],
            &deps_for(&[0, 1], &[], &[]),
            1,
        );
        assert_eq!(g.border_count(), 1);
        g.mark_committed(TxnId(1), SeqNo::new(1, 1));
        assert_eq!(g.pending_len(), 0);
        assert!(g.contains(TxnId(1)));

        // Once the age falls behind the threshold the node leaves every shard and the
        // coordinator forgets it.
        let removed = g.prune_for_next_block(10);
        assert_eq!(removed, 1);
        assert!(!g.contains(TxnId(1)));
        assert_eq!(g.border_count(), 0);
        assert!(g.is_empty());
        for shard in 0..2 {
            assert!(g.shard(shard).is_empty(), "shard {shard} must be empty");
        }
    }

    #[test]
    fn remove_and_reinsert_handle_border_transactions() {
        let mut g = ShardedDependencyGraph::new(cfg_exact(), 2);
        g.insert_pending(
            spec(1, vec![], vec![]),
            &[],
            &[],
            &deps_for(&[0, 1], &[], &[]),
            1,
        );
        // Replay is a no-op, like the unsharded engine.
        let report = g.insert_pending(
            spec(1, vec![], vec![]),
            &[],
            &[],
            &deps_for(&[0, 1], &[], &[]),
            2,
        );
        assert_eq!(report, InsertReport::default());
        assert_eq!(g.len(), 1);
        assert_eq!(g.border_count(), 1);

        g.remove(TxnId(1));
        assert!(g.is_empty());
        assert_eq!(g.border_count(), 0);
        assert_eq!(g.pending_len(), 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference-vs-sharded equivalence on random DAG workloads with cross-shard edges: the
    /// sharded graph must agree with a single global [`DependencyGraph`] on every cycle
    /// verdict, every reach set (exact *and* bloom bits via `contains`), and the topological
    /// order — the micro-scale version of the ledger-identity acceptance criterion.
    fn run_equivalence(edges: Vec<(u64, u64)>, probes: Vec<(u64, u64)>, shards: usize) {
        let config = CcConfig {
            track_exact_reachability: true,
            ..CcConfig::default()
        };
        let mut global = DependencyGraph::new(config);
        let mut sharded = ShardedDependencyGraph::new(config, shards);

        // Synthetic router: txn t "touches" shard (t % shards) always, plus shard
        // ((t / 3) % shards) — so roughly a third of transactions are border. An edge (a, b)
        // is attributed to a shard both endpoints touch if one exists, else it forces both
        // endpoints to become border there (we precompute homes so insertion sees them).
        let n = 12u64;
        let home_of = |t: u64| -> Vec<usize> {
            let mut h = vec![(t % shards as u64) as usize];
            let extra = ((t / 3) % shards as u64) as usize;
            if !h.contains(&extra) {
                h.push(extra);
            }
            h.sort_unstable();
            h
        };
        // Dependency lists per txn: edge (a, b), a < b becomes pred a of b, attributed to the
        // smallest shard shared by a's and b's homes (guaranteed non-empty after widening:
        // if disjoint, attribute to b's first home and widen a's home set — but to keep homes
        // static we instead attribute to a shard of a, and widen b's membership up front).
        let mut homes: Vec<Vec<usize>> = (0..n).map(home_of).collect();
        let mut preds: HashMap<u64, Vec<(usize, TxnId)>> = HashMap::new();
        for &(a, b) in &edges {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            if lo == hi {
                continue;
            }
            let shared: Option<usize> = homes[lo as usize]
                .iter()
                .find(|s| homes[hi as usize].contains(s))
                .copied();
            let shard = match shared {
                Some(s) => s,
                None => {
                    let s = homes[lo as usize][0];
                    homes[hi as usize].push(s);
                    homes[hi as usize].sort_unstable();
                    s
                }
            };
            preds.entry(hi).or_default().push((shard, TxnId(lo)));
        }

        for id in 0..n {
            let p = preds.remove(&id).unwrap_or_default();
            let global_preds: Vec<TxnId> = {
                let mut seen = Vec::new();
                for &(_, t) in &p {
                    if !seen.contains(&t) {
                        seen.push(t);
                    }
                }
                seen
            };
            let spec = PendingTxnSpec {
                id: TxnId(id),
                start_ts: SeqNo::snapshot_after(0),
                read_keys: vec![],
                write_keys: vec![],
            };
            let per_shard: Vec<ShardDeps> = homes[id as usize]
                .iter()
                .map(|&shard| ShardDeps {
                    shard,
                    read_keys: vec![],
                    write_keys: vec![],
                    predecessors: {
                        let mut seen = Vec::new();
                        for &(s, t) in &p {
                            if s == shard && !seen.contains(&t) {
                                seen.push(t);
                            }
                        }
                        seen
                    },
                    successors: vec![],
                })
                .collect();
            let report_global = global.insert_pending(spec.clone(), &global_preds, &[], 1);
            let report_sharded = sharded.insert_pending(spec, &global_preds, &[], &per_shard, 1);
            assert_eq!(report_global.hops, report_sharded.hops, "hops for txn {id}");
        }

        // Same reach sets — exact and probabilistic — for every (a, b) pair.
        for a in 0..n {
            for b in 0..n {
                let ta = TxnId(a);
                let tb = TxnId(b);
                assert_eq!(
                    global.reaches_exact(ta, tb),
                    sharded.reaches_exact(ta, tb),
                    "reaches_exact({a}, {b})"
                );
                let g_node = global.node(tb).unwrap();
                let s_node = sharded.node(tb).unwrap();
                assert_eq!(
                    g_node.anti_reachable.contains(ta),
                    s_node.anti_reachable.contains(ta),
                    "bloom bit for {a} in reach({b})"
                );
                assert_eq!(
                    g_node.anti_reachable.contains_exact(ta),
                    s_node.anti_reachable.contains_exact(ta),
                    "exact membership for {a} in reach({b})"
                );
            }
        }

        // Same commit order.
        assert_eq!(global.topo_sort_pending(), sharded.topo_sort_pending());
        assert!(sharded.is_acyclic_exact());

        // Same cycle verdicts on random probes.
        for (a, b) in probes {
            let preds = [TxnId(a % n)];
            let succs = [TxnId(b % n)];
            assert_eq!(
                global.would_close_cycle(&preds, &succs),
                sharded.would_close_cycle(&preds, &succs),
                "cycle probe ({a}, {b})"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn sharded_graph_is_bit_identical_to_the_global_reference(
            edges in proptest::collection::vec((0u64..12, 0u64..12), 0..40),
            probes in proptest::collection::vec((0u64..12, 0u64..12), 1..12),
            shards in 2usize..5,
        ) {
            run_equivalence(edges, probes, shards);
        }
    }
}
