//! Dependency resolution for an incoming transaction (Section 4.3).
//!
//! Given the committed-transaction indices (CW / CR), the pending indices (PW / PR) and the
//! new transaction's read keys, write keys and start timestamp, the orderer computes:
//!
//! ```text
//! anti-rw(txn) = ⋃_{r ∈ R}  CW[r][startTS:]  ∪  PW[r]      (successors of txn)
//! rw(txn)      = ⋃_{w ∈ W}  CR[w]            ∪  PR[w]      (predecessors)
//! n-wr(txn)    = ⋃_{r ∈ R}  CW.Before(r, startTS)          (predecessors)
//! ww(txn)      = ⋃_{w ∈ W}  CW.Last(w)                     (predecessors)
//! ```
//!
//! Predecessors must be serialized before the new transaction, successors after it. The c-ww
//! dependencies *between pending transactions* are deliberately ignored here — Theorem 2 shows
//! they are the only edges reordering can flip, so they are restored later (Algorithm 5) once
//! the block's commit order has been fixed.

use eov_common::txn::{Transaction, TxnId};
use eov_vstore::{CommittedReadIndex, CommittedWriteIndex, PendingIndex};

/// The dependencies of a newly arrived transaction, split into the two roles they play in the
/// cycle test of Algorithm 2.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ResolvedDeps {
    /// Transactions that must be serialized *before* the new one (ww ∪ n-wr ∪ rw).
    pub predecessors: Vec<TxnId>,
    /// Transactions that must be serialized *after* the new one (anti-rw).
    pub successors: Vec<TxnId>,
}

impl ResolvedDeps {
    /// Whether the transaction has no dependencies at all (the common case under uniform
    /// workloads, which is what makes the arrival path cheap on average).
    pub fn is_empty(&self) -> bool {
        self.predecessors.is_empty() && self.successors.is_empty()
    }
}

/// Computes the dependencies of `txn` against the committed and pending indices.
///
/// The transaction's own id never appears in the result (a transaction cannot depend on
/// itself), and each side is deduplicated while preserving first-seen order so the downstream
/// graph insertion is deterministic across replicated orderers.
pub fn resolve_dependencies(
    txn: &Transaction,
    cw: &CommittedWriteIndex,
    cr: &CommittedReadIndex,
    pw: &PendingIndex,
    pr: &PendingIndex,
) -> ResolvedDeps {
    let start_ts = txn.start_ts();
    let mut successors = Dedup::new(txn.id);
    let mut predecessors = Dedup::new(txn.id);

    // anti-rw: committed or pending writers that overwrite something we read at or after our
    // snapshot — we must come before them in any serializable order.
    for read in txn.read_set.iter() {
        for w in cw.from(&read.key, start_ts) {
            successors.push(w);
        }
        for &w in pw.get(&read.key) {
            successors.push(w);
        }
    }

    // rw: committed or pending readers of keys we overwrite — they read the previous value, so
    // they come before us.
    for write in txn.write_set.iter() {
        for r in cr.readers(&write.key) {
            predecessors.push(r);
        }
        for &r in pr.get(&write.key) {
            predecessors.push(r);
        }
    }

    // n-wr: the committed writer that installed each version we read.
    for read in txn.read_set.iter() {
        if let Some(w) = cw.before(&read.key, start_ts) {
            predecessors.push(w);
        }
    }

    // ww: the last committed writer of each key we overwrite.
    for write in txn.write_set.iter() {
        if let Some(w) = cw.last(&write.key) {
            predecessors.push(w);
        }
    }

    ResolvedDeps {
        predecessors: predecessors.into_vec(),
        successors: successors.into_vec(),
    }
}

/// Order-preserving deduplicating collector that also filters out the transaction itself.
struct Dedup {
    own: TxnId,
    seen: Vec<TxnId>,
}

impl Dedup {
    fn new(own: TxnId) -> Self {
        Dedup {
            own,
            seen: Vec::new(),
        }
    }

    fn push(&mut self, id: TxnId) {
        if id != self.own && !self.seen.contains(&id) {
            self.seen.push(id);
        }
    }

    fn into_vec(self) -> Vec<TxnId> {
        self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::rwset::{Key, Value};
    use eov_common::version::SeqNo;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    /// A transaction reading A (observed at version (1,1)) and writing B, simulated against
    /// block 2 (start timestamp (3,0)).
    fn sample_txn() -> Transaction {
        Transaction::from_parts(
            100,
            2,
            [(k("A"), SeqNo::new(1, 1))],
            [(k("B"), Value::from_i64(7))],
        )
    }

    #[test]
    fn empty_indices_give_no_dependencies() {
        let deps = resolve_dependencies(
            &sample_txn(),
            &CommittedWriteIndex::new(),
            &CommittedReadIndex::new(),
            &PendingIndex::new(),
            &PendingIndex::new(),
        );
        assert!(deps.is_empty());
    }

    #[test]
    fn anti_rw_picks_up_committed_and_pending_writers_of_read_keys() {
        let mut cw = CommittedWriteIndex::new();
        // A committed writer of A *after* our snapshot (3,0) → anti-rw successor.
        cw.record(k("A"), SeqNo::new(3, 1), TxnId(1));
        // A committed writer of A *before* our snapshot → n-wr predecessor, not anti-rw.
        cw.record(k("A"), SeqNo::new(1, 1), TxnId(2));
        let mut pw = PendingIndex::new();
        pw.record(k("A"), TxnId(3));

        let deps = resolve_dependencies(
            &sample_txn(),
            &cw,
            &CommittedReadIndex::new(),
            &pw,
            &PendingIndex::new(),
        );
        assert_eq!(deps.successors, vec![TxnId(1), TxnId(3)]);
        assert_eq!(deps.predecessors, vec![TxnId(2)]);
    }

    #[test]
    fn rw_and_ww_pick_up_accessors_of_written_keys() {
        let mut cr = CommittedReadIndex::new();
        cr.record(k("B"), SeqNo::new(2, 1), TxnId(4)); // committed reader of B
        let mut pr = PendingIndex::new();
        pr.record(k("B"), TxnId(5)); // pending reader of B
        let mut cw = CommittedWriteIndex::new();
        cw.record(k("B"), SeqNo::new(2, 2), TxnId(6)); // last committed writer of B

        let deps = resolve_dependencies(&sample_txn(), &cw, &cr, &PendingIndex::new(), &pr);
        assert_eq!(deps.predecessors, vec![TxnId(4), TxnId(5), TxnId(6)]);
        assert!(deps.successors.is_empty());
    }

    #[test]
    fn own_id_and_duplicates_are_filtered() {
        let mut pw = PendingIndex::new();
        pw.record(k("A"), TxnId(100)); // the transaction itself
        pw.record(k("A"), TxnId(7));
        let mut pr = PendingIndex::new();
        pr.record(k("B"), TxnId(7)); // same id also a predecessor via a different key
        pr.record(k("B"), TxnId(100));

        let deps = resolve_dependencies(
            &sample_txn(),
            &CommittedWriteIndex::new(),
            &CommittedReadIndex::new(),
            &pw,
            &pr,
        );
        assert_eq!(deps.successors, vec![TxnId(7)]);
        assert_eq!(deps.predecessors, vec![TxnId(7)]);
    }

    #[test]
    fn blind_writes_have_no_successors() {
        // A transaction with no reads can never be on the reading end of an anti-rw.
        let txn = Transaction::from_parts(1, 0, [], [(k("X"), Value::from_i64(1))]);
        let mut cw = CommittedWriteIndex::new();
        cw.record(k("X"), SeqNo::new(1, 1), TxnId(9));
        let deps = resolve_dependencies(
            &txn,
            &cw,
            &CommittedReadIndex::new(),
            &PendingIndex::new(),
            &PendingIndex::new(),
        );
        assert!(deps.successors.is_empty());
        assert_eq!(deps.predecessors, vec![TxnId(9)]);
    }
}
