//! Smallbank under contention: a miniature version of the paper's Figure 11 experiment.
//!
//! Run with (release strongly recommended):
//! ```text
//! cargo run --release --example smallbank_contention
//! ```
//!
//! The example drives the discrete-event simulator with the modified Smallbank workload
//! (4 reads + 4 writes per transaction, 10,000 accounts, 1% hot) at two write-hot-ratio
//! settings and prints the raw vs effective throughput of all five systems, plus the abort
//! breakdown — the qualitative picture behind Figures 10–14: FabricSharp keeps the highest
//! effective throughput because it neither over-aborts (Focc-s) nor wastes validation capacity
//! on doomed transactions (Fabric, Fabric++, Focc-l).

use fabricsharp::prelude::*;

fn main() {
    for write_hot in [0.10f64, 0.40] {
        println!(
            "== modified Smallbank, write hot ratio {:.0}% ==",
            write_hot * 100.0
        );
        println!(
            "{:<10} {:>10} {:>12} {:>10} {:>12} {:>14}",
            "System", "raw tps", "effective", "aborted", "abort rate", "avg latency ms"
        );
        let mut base = SimulationConfig::new(SystemKind::Fabric, WorkloadKind::ModifiedSmallbank);
        base.duration_s = 8.0;
        base.params.write_hot_ratio = write_hot;
        base.params.read_hot_ratio = 0.10;

        for report in Simulator::run_all_systems(&base) {
            println!(
                "{:<10} {:>10.0} {:>12.0} {:>10} {:>11.1}% {:>14.0}",
                report.system.label(),
                report.raw_tps(),
                report.effective_tps(),
                report.aborted(),
                report.abort_rate() * 100.0,
                report.avg_latency_ms,
            );
        }
        println!();
    }

    println!("(Each run simulates 8 seconds of a 700 tps request stream; see crates/bench for");
    println!(" the full parameter sweeps that regenerate every figure of the paper.)");
}
