//! Simulation metrics: everything the paper's figures report.

use eov_baselines::api::SystemKind;
use eov_common::abort::AbortReason;
use eov_workload::conflict::ConflictMatrix;
use fabricsharp_core::scheduler::WaveStats;
use std::collections::HashMap;

/// Wall-clock statistics of the per-block formation step (`cut_block`), measured — not
/// modelled — on the driver thread. This is the end-to-end view of the dependency-graph
/// topological sort + ww restoration + persistence + pruning; the p99 is what bounds the
/// orderer's tail stall when a block is cut under contention.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FormationTiming {
    /// Number of blocks whose formation was measured.
    pub blocks: u64,
    /// Total formation wall-clock across the run, in milliseconds.
    pub total_ms: f64,
    /// Median per-block formation time, in microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-block formation time, in microseconds.
    pub p99_us: f64,
}

impl FormationTiming {
    /// Builds the summary from raw per-block samples in microseconds. The slice is sorted in
    /// place; an empty slice yields the zero summary.
    pub fn from_samples(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return FormationTiming::default();
        }
        samples.sort_unstable();
        let total_us: u128 = samples.iter().map(|&s| s as u128).sum();
        FormationTiming {
            blocks: samples.len() as u64,
            total_ms: total_us as f64 / 1_000.0,
            p50_us: percentile(samples, 0.50),
            p99_us: percentile(samples, 0.99),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice, `q` in `[0, 1]`.
fn percentile(sorted: &[u64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1] as f64
}

/// Per-stage occupancy of the orderer→validator pipeline over one run, in *simulated* time:
/// how long the formation stage and the validate/commit stage were busy, and for how long the
/// two overlapped. In phased mode the overlap only comes from blocks still validating when
/// the next cut fires; with `pipelined_formation` the formation windows of block `N+1` open
/// while block `N` is still in the validator, so the overlap (and the formation stage's
/// occupancy) is what the tentpole buys. The stall half (`arrival_stall_ms`, `forced_joins`)
/// is *wall-clock* back-pressure measured on the driver: time arrivals spent waiting for the
/// formation worker instead of queueing unboundedly.
///
/// Occupancy is diagnostic output only — it is deliberately excluded from the determinism
/// comparisons (stall wall-clock depends on the machine, never on the schedule).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineOccupancy {
    /// Simulated ms the formation stage (seal → delivery-ready) was busy.
    pub formation_busy_ms: f64,
    /// Simulated ms the validator/commit stage was busy.
    pub commit_busy_ms: f64,
    /// Simulated ms both stages were busy at once.
    pub overlap_ms: f64,
    /// Wall-clock ms the driver stalled on forced formation joins (back-pressure).
    pub arrival_stall_ms: f64,
    /// Number of forced joins: window events that could not proceed eagerly.
    pub forced_joins: u64,
}

impl PipelineOccupancy {
    /// Builds the occupancy summary from per-stage `(start, end)` busy windows in simulated
    /// microseconds (any order, overlaps allowed — both lists are union-merged first) plus
    /// the CC's `(forced_joins, wall-clock wait)` stall counters.
    pub fn from_windows(
        formation: &[(u64, u64)],
        commit: &[(u64, u64)],
        stalls: (u64, std::time::Duration),
    ) -> Self {
        let formation = merge_windows(formation);
        let commit = merge_windows(commit);
        PipelineOccupancy {
            formation_busy_ms: total_us(&formation) as f64 / 1_000.0,
            commit_busy_ms: total_us(&commit) as f64 / 1_000.0,
            overlap_ms: overlap_us(&formation, &commit) as f64 / 1_000.0,
            arrival_stall_ms: stalls.1.as_secs_f64() * 1_000.0,
            forced_joins: stalls.0,
        }
    }

    /// Fraction of the formation stage's busy time spent overlapping the commit stage, in
    /// `[0, 1]` — the pipelining win at a glance.
    pub fn overlap_fraction(&self) -> f64 {
        if self.formation_busy_ms <= 0.0 {
            0.0
        } else {
            self.overlap_ms / self.formation_busy_ms
        }
    }
}

/// Sorts and unions possibly-overlapping `(start, end)` windows.
fn merge_windows(windows: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut sorted: Vec<(u64, u64)> = windows.iter().copied().filter(|(s, e)| e > s).collect();
    sorted.sort_unstable();
    let mut merged: Vec<(u64, u64)> = Vec::with_capacity(sorted.len());
    for (start, end) in sorted {
        match merged.last_mut() {
            Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
            _ => merged.push((start, end)),
        }
    }
    merged
}

fn total_us(merged: &[(u64, u64)]) -> u64 {
    merged.iter().map(|(s, e)| e - s).sum()
}

/// Total overlap of two disjoint, ascending window lists (two-pointer sweep).
fn overlap_us(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// The result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Which system was simulated.
    pub system: SystemKind,
    /// Simulated run length in seconds.
    pub duration_s: f64,
    /// Requests issued by clients.
    pub offered: u64,
    /// Transactions that appeared in the ledger (committed or validation-aborted) — the
    /// numerator of *raw* throughput (Figure 1).
    pub in_ledger: u64,
    /// Transactions that committed — the numerator of *effective* throughput.
    pub committed: u64,
    /// Aborts by reason, combining early aborts (endorsement / ordering phase) and
    /// validation-phase aborts (Figure 14's breakdown).
    pub aborts: HashMap<AbortReason, u64>,
    /// Blocks appended to the ledger.
    pub blocks: u64,
    /// Mean end-to-end latency of committed transactions, in ms (Figure 10 right).
    pub avg_latency_ms: f64,
    /// Mean block span of committed transactions (Figure 13 right).
    pub avg_block_span: f64,
    /// Mean dependency-graph hops per arrival, FabricSharp only (Figure 13 right).
    pub avg_hops: f64,
    /// Measured (not modelled) orderer reordering CPU time per block, in ms (Figure 11 right).
    pub measured_reorder_ms_per_block: f64,
    /// Measured arrival-path CPU time per transaction, in µs (Figure 12 right).
    pub measured_arrival_us_per_txn: f64,
    /// Committed transactions whose commit required tolerating an anti-rw dependency (i.e.
    /// transactions a Strong-Serializability system would have aborted); highlighted in
    /// Figure 15 as "FastFabric#-antiRW".
    pub committed_with_anti_rw: u64,
    /// Measured per-block formation wall-clock (p50/p99/total) on this machine.
    pub formation: FormationTiming,
    /// Measured per-block validate/commit wall-clock (p50/p99/total) on this machine — the
    /// execution-stage companion of `formation`, covering MVCC validation plus write
    /// installation (serial at `execution_threads == 0`, wave-parallel otherwise).
    pub commit: FormationTiming,
    /// Wave statistics of the parallel commit scheduler: zeros at `execution_threads == 0`
    /// (the inline reference plans no waves); identical for every `E >= 1` because the wave
    /// decomposition is a pure function of the committed blocks.
    pub wave: WaveStats,
    /// Offered transactions the static conflict analyzer classified instance-Safe (tagged
    /// before the orderer saw them; independent of whether the fast path was switched on).
    pub safe_tagged: u64,
    /// Accepted transactions that actually rode the orderer's template fast path (zero when
    /// `CcConfig::template_fastpath` is off or the system lacks the knob).
    pub fastpath_accepted: u64,
    /// The static template×template conflict matrix of the workload's mix, for downstream
    /// consumers (the `conflict_matrix` bench bin; later the Block-STM-style scheduler).
    pub conflict_matrix: ConflictMatrix,
    /// Per-stage busy/overlap/stall accounting of the formation and commit stages. Excluded
    /// from determinism comparisons (the stall half is wall-clock).
    pub occupancy: PipelineOccupancy,
}

impl SimReport {
    /// Raw throughput in transactions per second.
    pub fn raw_tps(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.in_ledger as f64 / self.duration_s
        }
    }

    /// Effective throughput in transactions per second.
    pub fn effective_tps(&self) -> f64 {
        if self.duration_s <= 0.0 {
            0.0
        } else {
            self.committed as f64 / self.duration_s
        }
    }

    /// Total aborted transactions (early + validation).
    pub fn aborted(&self) -> u64 {
        // lint-determinism: allow (sum is commutative; iteration order cannot change it)
        self.aborts.values().sum()
    }

    /// Abort rate relative to the offered load, in `[0, 1]`.
    pub fn abort_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.aborted() as f64 / self.offered as f64
        }
    }

    /// The Figure 14 abort breakdown: fraction of all aborts falling into each of the paper's
    /// four buckets (`Concurrent-ww`, `2 consecutive rw`, `Simulation abort`, `Others`).
    pub fn abort_breakdown(&self) -> Vec<(&'static str, f64)> {
        let total = self.aborted().max(1) as f64;
        let mut buckets: HashMap<&'static str, u64> = HashMap::new();
        // lint-determinism: allow (commutative bucket accumulation; output sorted below)
        for (reason, count) in &self.aborts {
            *buckets.entry(reason.figure14_bucket()).or_insert(0) += count;
        }
        let mut out: Vec<(&'static str, f64)> = [
            "Concurrent-ww",
            "2 consecutive rw",
            "Simulation abort",
            "Others",
        ]
        .iter()
        .map(|name| {
            (
                *name,
                buckets.get(name).copied().unwrap_or(0) as f64 / total,
            )
        })
        .collect();
        // Keep deterministic order for table output.
        out.sort_by(|a, b| a.0.cmp(b.0));
        out
    }

    /// Aborts recorded for a specific reason.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        self.aborts.get(&reason).copied().unwrap_or(0)
    }

    /// Fraction of offered transactions the conflict analyzer proved instance-Safe, in
    /// `[0, 1]` — the mix's static fast-path eligibility.
    pub fn safe_rate(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            self.safe_tagged as f64 / self.offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        let mut aborts = HashMap::new();
        aborts.insert(AbortReason::StaleRead, 30);
        aborts.insert(AbortReason::ConcurrentWriteWrite, 10);
        aborts.insert(AbortReason::CrossBlockRead, 10);
        SimReport {
            system: SystemKind::Fabric,
            duration_s: 10.0,
            offered: 1_000,
            in_ledger: 900,
            committed: 850,
            aborts,
            blocks: 9,
            avg_latency_ms: 800.0,
            avg_block_span: 1.5,
            avg_hops: 0.0,
            measured_reorder_ms_per_block: 0.0,
            measured_arrival_us_per_txn: 0.0,
            committed_with_anti_rw: 0,
            formation: FormationTiming::default(),
            commit: FormationTiming::default(),
            wave: WaveStats::default(),
            safe_tagged: 250,
            fastpath_accepted: 0,
            conflict_matrix: ConflictMatrix::default(),
            occupancy: PipelineOccupancy::default(),
        }
    }

    #[test]
    fn throughput_and_abort_rates() {
        let r = report();
        assert_eq!(r.raw_tps(), 90.0);
        assert_eq!(r.effective_tps(), 85.0);
        assert!((r.safe_rate() - 0.25).abs() < 1e-12);
        assert_eq!(r.aborted(), 50);
        assert!((r.abort_rate() - 0.05).abs() < 1e-12);
        assert_eq!(r.aborts_for(AbortReason::StaleRead), 30);
        assert_eq!(r.aborts_for(AbortReason::UnreorderableCycle), 0);
    }

    #[test]
    fn abort_breakdown_sums_to_one_over_the_four_buckets() {
        let r = report();
        let breakdown = r.abort_breakdown();
        assert_eq!(breakdown.len(), 4);
        let total: f64 = breakdown.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let ww = breakdown
            .iter()
            .find(|(n, _)| *n == "Concurrent-ww")
            .unwrap()
            .1;
        assert!((ww - 0.2).abs() < 1e-9);
    }

    #[test]
    fn formation_timing_summarises_samples() {
        let mut samples: Vec<u64> = (1..=100).rev().collect(); // 100, 99, ..., 1 µs
        let timing = FormationTiming::from_samples(&mut samples);
        assert_eq!(timing.blocks, 100);
        assert_eq!(timing.p50_us, 50.0);
        assert_eq!(timing.p99_us, 99.0);
        assert!((timing.total_ms - 5.05).abs() < 1e-9); // 5050 µs
    }

    #[test]
    fn formation_timing_handles_empty_and_singleton() {
        assert_eq!(
            FormationTiming::from_samples(&mut []),
            FormationTiming::default()
        );
        let timing = FormationTiming::from_samples(&mut [7]);
        assert_eq!(timing.blocks, 1);
        assert_eq!(timing.p50_us, 7.0);
        assert_eq!(timing.p99_us, 7.0);
    }

    #[test]
    fn occupancy_merges_and_overlaps_windows() {
        // Formation busy [0,10]ms ∪ [5,20]ms → merged [0,20]ms; commit busy [15,30] ∪ [40,50].
        let occ = PipelineOccupancy::from_windows(
            &[(0, 10_000), (5_000, 20_000)],
            &[(15_000, 30_000), (40_000, 50_000)],
            (3, std::time::Duration::from_millis(2)),
        );
        assert!((occ.formation_busy_ms - 20.0).abs() < 1e-9);
        assert!((occ.commit_busy_ms - 25.0).abs() < 1e-9);
        assert!((occ.overlap_ms - 5.0).abs() < 1e-9);
        assert_eq!(occ.forced_joins, 3);
        assert!((occ.arrival_stall_ms - 2.0).abs() < 1e-9);
        assert!((occ.overlap_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn occupancy_handles_empty_windows() {
        let occ = PipelineOccupancy::from_windows(&[], &[(1, 1)], (0, std::time::Duration::ZERO));
        assert_eq!(occ, PipelineOccupancy::default());
        assert_eq!(occ.overlap_fraction(), 0.0);
    }

    #[test]
    fn zero_duration_and_zero_offered_are_safe() {
        let mut r = report();
        r.duration_s = 0.0;
        r.offered = 0;
        assert_eq!(r.raw_tps(), 0.0);
        assert_eq!(r.effective_tps(), 0.0);
        assert_eq!(r.abort_rate(), 0.0);
    }
}
