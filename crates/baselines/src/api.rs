//! The common interface every evaluated system implements, plus the shared peer-side MVCC
//! validation routine.
//!
//! The paper compares five systems that differ only in their concurrency control: vanilla
//! Fabric, Fabric++, FabricSharp, Focc-s and Focc-l. The simulator and the `SimpleChain`
//! facade drive all of them through this trait, so every experiment exercises exactly the same
//! pipeline with only the CC swapped out — mirroring how the paper implemented each variant
//! inside the same Fabric codebase.

use eov_common::abort::AbortReason;
use eov_common::config::CcConfig;
use eov_common::txn::{CommitDecision, Transaction, TxnStatus};
use std::time::Duration;

// The shared commit semantics moved to `fabricsharp_core::commit` (so the parallel commit
// scheduler and the serial reference live side by side); re-exported here because every
// baseline and the chain facades import them through this module.
pub use fabricsharp_core::commit::{
    apply_without_validation, commit_block, count_anti_rw_commits, mvcc_validate_and_apply,
};

/// Which of the paper's five systems a concurrency control implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Vanilla Hyperledger Fabric v1.3: no orderer-side logic, MVCC validation at the peers.
    Fabric,
    /// Fabric++ (Sharma et al.): early abort of cross-block reads plus within-block reordering.
    FabricPlusPlus,
    /// FabricSharp — the paper's contribution.
    FabricSharp,
    /// Focc-s: the standard serializable-OCC approach (Cahill et al.) — abort on concurrent
    /// write-write conflicts or dangerous rw structures at arrival.
    FoccS,
    /// Focc-l: Ding et al.'s sort-based greedy batch reordering at block formation.
    FoccL,
}

impl SystemKind {
    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::Fabric => "Fabric",
            SystemKind::FabricPlusPlus => "Fabric++",
            SystemKind::FabricSharp => "Fabric#",
            SystemKind::FoccS => "Focc-s",
            SystemKind::FoccL => "Focc-l",
        }
    }

    /// All five systems, in the order the paper's legends list them.
    pub fn all() -> [SystemKind; 5] {
        [
            SystemKind::Fabric,
            SystemKind::FabricPlusPlus,
            SystemKind::FabricSharp,
            SystemKind::FoccS,
            SystemKind::FoccL,
        ]
    }

    /// Builds a boxed concurrency-control instance for this system.
    pub fn build(self, cc_config: CcConfig) -> Box<dyn ConcurrencyControl> {
        match self {
            SystemKind::Fabric => Box::new(crate::fabric::FabricCC::new()),
            SystemKind::FabricPlusPlus => Box::new(crate::fabricpp::FabricPlusPlusCC::new()),
            SystemKind::FabricSharp => Box::new(fabricsharp_core::FabricSharpCC::new(cc_config)),
            SystemKind::FoccS => Box::new(crate::focc_s::FoccSerializableCC::new()),
            SystemKind::FoccL => Box::new(crate::focc_l::FoccLightCC::new()),
        }
    }
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The orderer/peer-side concurrency-control interface shared by all five systems.
pub trait ConcurrencyControl: Send {
    /// Which system this is.
    fn kind(&self) -> SystemKind;

    /// Peer-side early-abort decision taken when the endorsement result is about to be
    /// submitted. `latest_block` is the height of the last block committed at that moment;
    /// Fabric++ uses it to abort simulations that read across blocks.
    fn on_endorsement(&mut self, _txn: &Transaction, _latest_block: u64) -> CommitDecision {
        CommitDecision::Accept
    }

    /// Orderer-side decision when the transaction is delivered by consensus.
    fn on_arrival(&mut self, txn: Transaction) -> CommitDecision;

    /// Number of transactions accepted and waiting for the next block.
    fn pending_len(&self) -> usize;

    /// Forms the next block: returns the transactions in final commit order with `end_ts`
    /// assigned, advancing the internal block counter. An empty return means nothing was
    /// pending.
    fn cut_block(&mut self) -> Vec<Transaction>;

    /// Whether peers must still run MVCC validation on delivered blocks. FabricSharp returns
    /// `false` — its ordering guarantees serializability.
    fn needs_peer_validation(&self) -> bool {
        true
    }

    /// Notifies the CC of the validation outcome of a delivered block so it can track the
    /// latest committed versions (used by the baselines for staleness checks).
    fn on_block_committed(&mut self, _block_no: u64, _outcome: &[(Transaction, TxnStatus)]) {}

    /// Early aborts performed by this CC so far, grouped by reason.
    fn early_aborts(&self) -> Vec<(AbortReason, u64)> {
        Vec::new()
    }

    /// Cumulative time spent reordering at block formation (Figure 11 right).
    fn reorder_time(&self) -> Duration {
        Duration::ZERO
    }

    /// Cumulative time spent processing arrivals (Figure 12 right).
    fn arrival_time(&self) -> Duration {
        Duration::ZERO
    }

    /// Mean dependency-graph hops per arrival (Figure 13 right); zero for systems that do not
    /// maintain a graph.
    fn avg_hops(&self) -> f64 {
        0.0
    }

    /// How many accepted transactions rode the template fast path (skipping the dependency
    /// graph); zero for systems without the knob. The simulator exports this so the static
    /// conflict analyzer's predicted safe count can be checked against runtime behaviour.
    fn fastpath_accepted(&self) -> u64 {
        0
    }

    /// Whether this CC runs pipelined (seal/join) block formation: `cut_block` is replaced
    /// by a [`ConcurrencyControl::begin_cut`] that seals the pending set onto a formation
    /// worker and a [`ConcurrencyControl::finish_cut`] that claims the formed block, with
    /// arrivals continuing in between. Only FabricSharp with
    /// `CcConfig::pipelined_formation` reports `true`.
    fn pipelined_formation(&self) -> bool {
        false
    }

    /// Seals the pending set and starts forming the next block on the formation stage;
    /// returns the number of sealed transactions (0 = nothing pending, nothing sealed).
    /// Only meaningful when [`ConcurrencyControl::pipelined_formation`]; the default seals
    /// nothing.
    fn begin_cut(&mut self) -> usize {
        0
    }

    /// Joins the formation started by [`ConcurrencyControl::begin_cut`]: blocks until the
    /// block is formed and returns its transactions (commit order, `end_ts` assigned) plus
    /// the formation wall-clock measured on the worker, in microseconds.
    fn finish_cut(&mut self) -> (Vec<Transaction>, u64) {
        (Vec::new(), 0)
    }

    /// Pipelined-formation stall counters: (forced joins, cumulative wall-clock the driver
    /// spent waiting on them). Zero for phased systems.
    fn formation_stalls(&self) -> (u64, Duration) {
        (0, Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::rwset::{Key, Value};
    use eov_common::version::SeqNo;
    use eov_vstore::MultiVersionStore;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn seeded_store() -> MultiVersionStore {
        let mut store = MultiVersionStore::new();
        store.seed_genesis([(k("A"), Value::from_i64(1)), (k("B"), Value::from_i64(2))]);
        store
    }

    #[test]
    fn labels_and_enumeration() {
        assert_eq!(SystemKind::FabricSharp.label(), "Fabric#");
        assert_eq!(SystemKind::all().len(), 5);
        assert_eq!(SystemKind::FoccS.to_string(), "Focc-s");
    }

    #[test]
    fn every_system_can_be_built() {
        for kind in SystemKind::all() {
            let cc = kind.build(CcConfig::default());
            assert_eq!(cc.kind(), kind);
            assert_eq!(cc.pending_len(), 0);
            // FabricSharp is the only system that skips peer validation.
            assert_eq!(cc.needs_peer_validation(), kind != SystemKind::FabricSharp);
        }
    }

    #[test]
    fn mvcc_validation_rejects_stale_reads_and_applies_fresh_ones() {
        let mut store = seeded_store();
        // txn1 read A at its genesis version (0,1) — valid. txn2 read A at a wrong version.
        let fresh = Transaction::from_parts(
            1,
            0,
            [(k("A"), SeqNo::new(0, 1))],
            [(k("A"), Value::from_i64(10))],
        );
        let stale = Transaction::from_parts(
            2,
            0,
            [(k("A"), SeqNo::new(0, 1))], // now stale: txn1 just rewrote A in this block
            [(k("B"), Value::from_i64(20))],
        );
        let statuses = mvcc_validate_and_apply(&mut store, 1, &[fresh, stale]);
        assert_eq!(statuses[0], TxnStatus::Committed);
        assert_eq!(statuses[1], TxnStatus::Aborted(AbortReason::StaleRead));
        assert_eq!(store.latest_value(&k("A")).unwrap().as_i64(), Some(10));
        assert_eq!(store.latest_value(&k("B")).unwrap().as_i64(), Some(2));
        assert_eq!(store.last_block(), 1);
    }

    #[test]
    fn validation_of_missing_key_reads() {
        let mut store = seeded_store();
        // Reading a key that does not exist is recorded at version (0,0); it stays valid as
        // long as nobody creates the key first.
        let reader = Transaction::from_parts(
            1,
            0,
            [(k("new"), SeqNo::zero())],
            [(k("C"), Value::from_i64(1))],
        );
        let statuses = mvcc_validate_and_apply(&mut store, 1, &[reader]);
        assert_eq!(statuses[0], TxnStatus::Committed);
    }

    #[test]
    fn anti_rw_commits_count_stale_reads_and_in_block_overwrites() {
        let mut store = seeded_store();
        // fresh reads A at its current version; stale read A at a version that never existed;
        // in_block reads B which the first transaction overwrites within the block.
        let fresh = Transaction::from_parts(
            1,
            0,
            [(k("A"), SeqNo::new(0, 1))],
            [(k("B"), Value::from_i64(9))],
        );
        let stale = Transaction::from_parts(2, 0, [(k("A"), SeqNo::new(5, 5))], []);
        let in_block = Transaction::from_parts(3, 0, [(k("B"), SeqNo::new(0, 2))], []);
        assert_eq!(
            count_anti_rw_commits(&store, &[fresh.clone(), stale.clone(), in_block.clone()]),
            2
        );
        // commit_block without validation applies everything and reports the same count.
        let outcome = commit_block(&mut store, 1, &[fresh, stale, in_block], false);
        assert_eq!(outcome.anti_rw_commits, 2);
        assert_eq!(outcome.statuses, vec![TxnStatus::Committed; 3]);
        assert_eq!(store.last_block(), 1);
    }

    #[test]
    fn apply_without_validation_commits_everything() {
        let mut store = seeded_store();
        let t1 = Transaction::from_parts(
            1,
            0,
            [(k("A"), SeqNo::new(9, 9))],
            [(k("A"), Value::from_i64(5))],
        );
        let statuses = apply_without_validation(&mut store, 1, &[t1]);
        assert_eq!(statuses, vec![TxnStatus::Committed]);
        assert_eq!(store.latest_value(&k("A")).unwrap().as_i64(), Some(5));
    }
}
