//! The store surface shared by the unsharded and the sharded state backends.
//!
//! [`StateRead`] is the read surface the endorsement path depends on (snapshot reads, latest
//! reads, chain height) — object-safe, so [`crate::snapshot::SnapshotView`] can hold any
//! backend behind one `&dyn` without threading generics through every contract closure.
//! [`StateStore`] adds the commit-path mutations (versioned puts, height advancement, version
//! GC). [`crate::mvstore::MultiVersionStore`] implements both by delegating to its inherent
//! methods; [`crate::sharded::ShardedStore`] implements them by key fan-out; and the
//! [`crate::shared::StoreBackend`] enum dispatches between the two so the concurrent pipeline
//! keeps a single concrete shared-store type.

use crate::mvstore::{MultiVersionStore, VersionedValue};
use eov_common::error::Result;
use eov_common::rwset::{Key, Value};
use eov_common::txn::Transaction;
use eov_common::version::SeqNo;

/// Read surface of a multi-versioned state backend (object-safe).
pub trait StateRead {
    /// Reads `key` as of the snapshot after `block` (an error if that snapshot was pruned).
    fn read_at(&self, key: &Key, block: u64) -> Result<Option<&VersionedValue>>;

    /// The latest version of `key`, if any.
    fn latest(&self, key: &Key) -> Option<&VersionedValue>;

    /// Height of the last committed block.
    fn last_block(&self) -> u64;

    /// The latest value of `key`, if any.
    fn latest_value(&self, key: &Key) -> Option<&Value> {
        self.latest(key).map(|v| &v.value)
    }
}

/// Full store surface: reads plus the commit-path mutations.
pub trait StateStore: StateRead {
    /// Installs a single versioned value (versions per key must be non-decreasing).
    fn put(&mut self, key: Key, version: SeqNo, value: Value);

    /// Advances the height without writes (blocks whose transactions all aborted).
    fn commit_empty_block(&mut self, block_no: u64);

    /// Garbage-collects versions below the newest one visible at `block`.
    fn prune_versions_below(&mut self, block: u64);

    /// Number of distinct keys ever written.
    fn key_count(&self) -> usize;

    /// Total number of retained versions across all keys.
    fn version_count(&self) -> usize;

    /// Seeds the genesis state (block 0) exactly like
    /// [`MultiVersionStore::seed_genesis`]: entry `i` receives version `(0, i + 1)` in
    /// iteration order, regardless of which shard it lands on.
    fn seed_genesis(&mut self, entries: impl IntoIterator<Item = (Key, Value)>)
    where
        Self: Sized,
    {
        for (i, (key, value)) in entries.into_iter().enumerate() {
            self.put(key, SeqNo::new(0, i as u32 + 1), value);
        }
    }

    /// Applies the write sets of the committed transactions of `block_no`, in order, then
    /// advances the height (mirrors [`MultiVersionStore::apply_block`]).
    fn apply_block<'a>(
        &mut self,
        block_no: u64,
        committed: impl IntoIterator<Item = (&'a Transaction, u32)>,
    ) where
        Self: Sized,
    {
        for (txn, seq) in committed {
            let version = SeqNo::new(block_no, seq);
            for item in txn.write_set.iter() {
                self.put(item.key.clone(), version, item.value.clone());
            }
        }
        self.commit_empty_block(block_no);
    }
}

impl StateRead for MultiVersionStore {
    fn read_at(&self, key: &Key, block: u64) -> Result<Option<&VersionedValue>> {
        MultiVersionStore::read_at(self, key, block)
    }

    fn latest(&self, key: &Key) -> Option<&VersionedValue> {
        MultiVersionStore::latest(self, key)
    }

    fn last_block(&self) -> u64 {
        MultiVersionStore::last_block(self)
    }
}

impl StateStore for MultiVersionStore {
    fn put(&mut self, key: Key, version: SeqNo, value: Value) {
        MultiVersionStore::put(self, key, version, value);
    }

    fn commit_empty_block(&mut self, block_no: u64) {
        MultiVersionStore::commit_empty_block(self, block_no);
    }

    fn prune_versions_below(&mut self, block: u64) {
        MultiVersionStore::prune_versions_below(self, block);
    }

    fn key_count(&self) -> usize {
        MultiVersionStore::key_count(self)
    }

    fn version_count(&self) -> usize {
        MultiVersionStore::version_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The default trait implementations must reproduce the inherent genesis/apply semantics.
    #[test]
    fn trait_surface_matches_inherent_behaviour() {
        fn seed_via_trait<S: StateStore>(store: &mut S) {
            store.seed_genesis([
                (Key::new("a"), Value::from_i64(1)),
                (Key::new("b"), Value::from_i64(2)),
            ]);
        }

        let mut via_trait = MultiVersionStore::new();
        seed_via_trait(&mut via_trait);
        let mut inherent = MultiVersionStore::new();
        inherent.seed_genesis([
            (Key::new("a"), Value::from_i64(1)),
            (Key::new("b"), Value::from_i64(2)),
        ]);

        for key in ["a", "b"] {
            assert_eq!(
                inherent.latest(&Key::new(key)),
                MultiVersionStore::latest(&via_trait, &Key::new(key))
            );
        }
        let dyn_read: &dyn StateRead = &via_trait;
        assert_eq!(
            dyn_read.latest_value(&Key::new("b")).unwrap().as_i64(),
            Some(2)
        );
        assert_eq!(dyn_read.last_block(), 0);
    }
}
