//! The Section 3.5 security scenario: a malicious consensus leader front-runs a victim
//! transaction so that the (public, deterministic) reordering algorithm aborts it — and the
//! hash-commitment mitigation that blinds the leader.
//!
//! Run with:
//! ```text
//! cargo run --example adversarial_orderer
//! ```

use fabricsharp::consensus::adversary::{
    ClientSubmission, FrontRunningLeader, HonestLeader, LeaderPolicy,
};
use fabricsharp::prelude::*;

/// Builds the victim transaction: reads and writes the contended record against block N.
fn victim_txn(id: u64) -> Transaction {
    Transaction::from_parts(
        id,
        0,
        [(Key::new("asset"), SeqNo::new(0, 1))],
        [(Key::new("asset"), Value::from_i64(42))],
    )
}

/// Runs a batch of submissions through a leader policy and then through FabricSharp's
/// reorderability test, reporting which transactions survive.
fn run_scenario(label: &str, leader: &mut dyn LeaderPolicy, submissions: Vec<ClientSubmission>) {
    println!("== {label} ==");
    let proposed = leader.propose_order(submissions);
    let mut cc = FabricSharpCC::with_defaults();
    for submission in proposed {
        let txn = match submission.reveal() {
            Ok(txn) => txn,
            Err(_) => {
                println!("  a revealed transaction did not match its commitment — discarded");
                continue;
            }
        };
        let id = txn.id.0;
        let decision = cc.on_arrival(txn);
        println!(
            "  Txn{id}: {}",
            if decision.is_accept() {
                "accepted for the next block"
            } else {
                "ABORTED before ordering"
            }
        );
    }
    let block = cc.cut_block();
    let ids: Vec<u64> = block.iter().map(|t| t.id.0).collect();
    println!("  block contents: {ids:?}\n");
}

fn main() {
    println!("Victim Txn7 reads and writes the record `asset` against the snapshot of block 0.\n");

    // Baseline: an honest leader, plaintext submissions — the victim commits.
    run_scenario(
        "honest leader, plaintext submission",
        &mut HonestLeader,
        vec![ClientSubmission::Plain(victim_txn(7))],
    );

    // Attack: the leader can see the victim's read/write sets, fabricates a conflicting
    // transaction touching the same record against the same snapshot, and places it ahead.
    // The front-runner passes the reorderability test; the victim then closes an unreorderable
    // cycle (c-rw one way, anti-rw the other) and every honest orderer aborts it.
    let mut attacker = FrontRunningLeader::new(Key::new("asset"), |victim: &Transaction| {
        let mut attack = victim.clone();
        attack.id = TxnId(victim.id.0 + 1_000_000);
        attack
    });
    run_scenario(
        "malicious leader, plaintext submission (front-running succeeds)",
        &mut attacker,
        vec![ClientSubmission::Plain(victim_txn(7))],
    );
    println!(
        "  attacks launched by the leader: {}\n",
        attacker.attacks_launched
    );

    // Mitigation: the client submits only a hash commitment; the leader cannot inspect the
    // read/write sets before the order is fixed, so it has nothing to front-run. The contents
    // are revealed (and checked against the commitment) only after sequencing.
    let mut blinded_attacker =
        FrontRunningLeader::new(Key::new("asset"), |victim: &Transaction| victim.clone());
    run_scenario(
        "malicious leader, hash-commitment submission (mitigated)",
        &mut blinded_attacker,
        vec![ClientSubmission::committed(victim_txn(7))],
    );
    println!(
        "  attacks launched by the leader: {}",
        blinded_attacker.attacks_launched
    );
}
