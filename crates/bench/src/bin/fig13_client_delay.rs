//! Figure 13 — throughput of all systems and FabricSharp's internal statistics (reachability
//! hops, transaction block span) as the client delay sweeps 0 … 500 ms.
//!
//! ```text
//! cargo run --release -p eov-bench --bin fig13_client_delay
//! ```

use eov_baselines::api::SystemKind;
use eov_bench::{banner, print_scalar_rows, print_throughput_table, run_all_systems};
use eov_common::config::ExperimentGrid;
use eov_sim::SimulationConfig;
use eov_workload::generator::WorkloadKind;

fn main() {
    banner(
        "Figure 13",
        "throughput (left) and Fabric# statistics (right) under varying client delay",
    );
    let grid = ExperimentGrid::default();
    let mut rows = Vec::new();
    for &delay in &grid.client_delays_ms {
        let mut base = SimulationConfig::new(SystemKind::Fabric, WorkloadKind::ModifiedSmallbank);
        base.params.client_delay_ms = delay;
        rows.push((format!("{delay} ms"), run_all_systems(base)));
    }

    print_throughput_table(
        "client delay",
        &rows,
        |r| r.effective_tps(),
        "effective tps",
    );

    // FabricSharp is the third entry of SystemKind::all().
    let sharp_index = SystemKind::all()
        .iter()
        .position(|s| *s == SystemKind::FabricSharp)
        .expect("FabricSharp is one of the systems");
    let hops: Vec<(String, f64)> = rows
        .iter()
        .map(|(x, reports)| (x.clone(), reports[sharp_index].avg_hops))
        .collect();
    let spans: Vec<(String, f64)> = rows
        .iter()
        .map(|(x, reports)| (x.clone(), reports[sharp_index].avg_block_span))
        .collect();
    print_scalar_rows("Fabric# — average reachability hops per arrival", &hops);
    print_scalar_rows("Fabric# — average transaction block span", &spans);

    println!(
        "Paper's shape: longer client delays widen every transaction's block span, creating more\n\
         concurrency and more dependencies; throughput falls for everyone, Fabric# traverses more\n\
         of its dependency graph per arrival, yet remains the best-performing system."
    );
}
