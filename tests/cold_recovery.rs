//! The cold-recovery grid: simulator runs persisted to disk, killed mid-write, and recovered
//! to bit-identity with the uninterrupted reference.
//!
//! Contracts pinned here, with `template_fastpath` and `pipelined_formation` both on:
//!
//! 1. persisting a run (`durability_dir`) never perturbs it — the durable ledger is
//!    bit-identical to the in-memory reference for the same seed, across the full
//!    `S×W×E` grid (store shards × formation threads × execution threads);
//! 2. killing the log at a byte offset and cold-recovering (newest valid checkpoint + segment
//!    suffix replay) yields a ledger prefix and store bit-identical to the reference replayed
//!    to the same height, and the resumed log reaches full bit-identity;
//! 3. the controller rebuilt by `recover_from_disk` is equivalent to `recover_from_ledger`
//!    over the same in-memory prefix — same resume block, same verdicts, same next cut —
//!    including on an *instance-rescued* ledger (write-partitioned YCSB-B), where untracked
//!    fastpath commits interleave with graph-inserted ones inside every block.

use fabricsharp::baselines::{SimpleChain, SystemKind};
use fabricsharp::common::config::{CcConfig, WorkloadParams};
use fabricsharp::common::rwset::{Key, Value};
use fabricsharp::common::txn::{TemplateClass, Transaction};
use fabricsharp::common::version::SeqNo;
use fabricsharp::core::recovery::{recover_from_disk, recover_from_ledger, ColdRecovery};
use fabricsharp::core::FabricSharpCC;
use fabricsharp::ledger::durable::{DurableLedger, DurableOptions};
use fabricsharp::ledger::{write_checkpoint, Ledger};
use fabricsharp::sim::{SimulationConfig, Simulator};
use fabricsharp::vstore::{StateStore, StoreBackend};
use fabricsharp::workload::generator::{WorkloadGenerator, WorkloadKind};
use fabricsharp::workload::YcsbProfile;
use proptest::prelude::*;
use std::path::PathBuf;

const STORE_SHARDS: [usize; 3] = [0, 2, 4];
const FORMATION_THREADS: [usize; 2] = [0, 2];
const EXECUTION_THREADS: [usize; 2] = [0, 2];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eov-cold-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sim_config(shards: usize, formation: usize, execution: usize, seed: u64) -> SimulationConfig {
    let mut config = SimulationConfig::new(
        SystemKind::FabricSharp,
        WorkloadKind::MixedSmallbank { theta: 0.7 },
    );
    config.duration_s = 0.4;
    config.seed = seed;
    config.params.num_accounts = 64;
    config.params.request_rate_tps = 600;
    config.block.max_txns_per_block = 12;
    config.store_shards = shards;
    config.formation_threads = formation;
    config.execution_threads = execution;
    config.pipelined_formation = true;
    config.cc.template_fastpath = true;
    config.cc.checkpoint_interval = 3;
    config.cc.segment_rotate_kib = 1;
    config
}

/// The CcConfig a restarted orderer would bring to `recover_from_disk` for this grid point.
fn recovery_config(config: &SimulationConfig) -> CcConfig {
    CcConfig {
        store_shards: config.store_shards,
        formation_threads: config.formation_threads,
        execution_threads: config.execution_threads,
        pipelined_formation: true,
        ..config.cc
    }
}

/// Replays the reference ledger's first `up_to` blocks into a genesis-seeded backend.
fn replay_oracle(config: &SimulationConfig, ledger: &Ledger, up_to: u64) -> StoreBackend {
    let generator = WorkloadGenerator::new(config.workload.clone(), config.params, config.seed);
    let mut store = StoreBackend::for_shards(config.store_shards);
    store.seed_genesis(generator.genesis());
    for block in ledger.iter().take(up_to as usize) {
        let committed: Vec<_> = block.committed().collect();
        store.apply_block(block.number(), committed);
    }
    store
}

/// Chops `chopped` bytes (clamped to leave at least one byte) off the newest segment file.
fn tear_tail(dir: &PathBuf, chopped: u64) {
    let mut segments: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    let tail = segments.last().expect("at least one segment");
    let len = std::fs::metadata(tail).unwrap().len();
    let cut = chopped.min(len - 1).max(1);
    std::fs::OpenOptions::new()
        .write(true)
        .open(tail)
        .unwrap()
        .set_len(len - cut)
        .unwrap();
}

/// The in-memory prefix of `reference` up to `height`.
fn prefix_of(reference: &Ledger, height: u64) -> Ledger {
    let mut prefix = Ledger::new();
    for block in reference.iter().take(height as usize) {
        prefix.append(block.clone()).unwrap();
    }
    prefix
}

/// Asserts the disk-recovered controller is equivalent to the in-memory-replayed one: same
/// resume block, same verdicts on fresh arrivals, same next cut.
fn assert_controllers_equivalent(
    mut from_disk: FabricSharpCC,
    mut from_memory: FabricSharpCC,
    probes: impl IntoIterator<Item = Transaction>,
    context: &str,
) {
    assert_eq!(
        from_disk.next_block(),
        from_memory.next_block(),
        "{context}"
    );
    for (i, probe) in probes.into_iter().enumerate() {
        let d_disk = from_disk.on_arrival(probe.clone()).is_accept();
        let d_mem = from_memory.on_arrival(probe).is_accept();
        assert_eq!(d_disk, d_mem, "{context}: probe {i} diverged");
    }
    let cut_disk: Vec<_> = from_disk
        .cut_block()
        .iter()
        .map(|t| (t.id, t.end_ts))
        .collect();
    let cut_mem: Vec<_> = from_memory
        .cut_block()
        .iter()
        .map(|t| (t.id, t.end_ts))
        .collect();
    assert_eq!(cut_disk, cut_mem, "{context}: post-recovery cut diverged");
}

/// Smallbank probes against the recovered tip: a stale read-write pair and a fresh writer.
fn smallbank_probes(height: u64) -> Vec<Transaction> {
    (0..6u64)
        .map(|i| {
            if i % 2 == 0 {
                Transaction::from_parts(
                    900_000 + i,
                    height.saturating_sub(i % 3),
                    [(Key::new(format!("checking:{i}")), SeqNo::zero())],
                    [(Key::new(format!("checking:{i}")), Value::from_i64(1))],
                )
            } else {
                Transaction::from_parts(
                    900_000 + i,
                    height,
                    [],
                    [(Key::new(format!("checking:fresh{i}")), Value::from_i64(1))],
                )
            }
        })
        .collect()
}

/// One grid point end to end: persist, tear, recover, compare, resume.
fn crash_and_recover(shards: usize, formation: usize, execution: usize, seed: u64, chopped: u64) {
    let config = sim_config(shards, formation, execution, seed);
    let context = format!("S={shards} W={formation} E={execution} seed={seed} cut={chopped}");

    let (_, reference, reference_store) = Simulator::run_full(&config);
    assert!(reference.height() >= 4, "{context}: degenerate run");

    let dir = temp_dir(&format!("g{shards}{formation}{execution}-{seed}-{chopped}"));
    let mut persisted_config = config.clone();
    persisted_config.durability_dir = Some(dir.clone());
    let (_, persisted, _) = Simulator::run_full(&persisted_config);
    // (1) Durability never perturbs the run.
    assert_eq!(persisted.tip_hash(), reference.tip_hash(), "{context}");

    // (2) Kill mid-write, cold-recover, compare against the replayed reference prefix.
    tear_tail(&dir, chopped);
    let recovered: ColdRecovery =
        recover_from_disk(&dir, recovery_config(&config)).expect("cold recovery");
    let height = recovered.ledger.height();
    assert!(
        height < reference.height(),
        "{context}: tail must be dropped"
    );
    let prefix = prefix_of(&reference, height);
    assert_eq!(
        recovered.ledger.ledger().tip_hash(),
        prefix.tip_hash(),
        "{context}"
    );
    assert_eq!(
        recovered.ledger.ledger().statuses(),
        prefix.statuses(),
        "{context}"
    );
    assert_eq!(
        recovered.store,
        replay_oracle(&config, &reference, height),
        "{context}: recovered store != replayed oracle"
    );
    if height >= config.cc.checkpoint_interval {
        assert!(
            recovered.checkpoint_height > 0,
            "{context}: periodic checkpoint should have been used"
        );
    }

    // (3) Disk and in-memory recovery build equivalent controllers.
    let (from_memory, _) =
        recover_from_ledger(&prefix, recovery_config(&config)).expect("memory recovery");
    assert_controllers_equivalent(
        recovered.cc,
        from_memory,
        smallbank_probes(height),
        &context,
    );

    // (4) The log resumes: append the dropped blocks, reach full bit-identity on disk and in
    // the store.
    let mut durable = recovered.ledger;
    let mut store = recovered.store;
    for block in reference.iter().skip(height as usize) {
        let committed: Vec<_> = block.committed().collect();
        store.apply_block(block.number(), committed);
        durable.append(block.clone()).expect("resume append");
    }
    assert_eq!(
        durable.ledger().tip_hash(),
        reference.tip_hash(),
        "{context}"
    );
    assert_eq!(store, reference_store, "{context}: resumed store diverged");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The full grid at a fixed seed and torn offset — the blocking CI matrix.
#[test]
fn crash_recovery_is_bit_identical_across_the_grid() {
    for shards in STORE_SHARDS {
        for formation in FORMATION_THREADS {
            for execution in EXECUTION_THREADS {
                crash_and_recover(shards, formation, execution, 42, 9);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeds and random kill offsets on a mid-grid configuration.
    #[test]
    fn random_kill_offsets_recover_bit_identically(
        seed in any::<u64>(),
        chopped in 1u64..2_000,
    ) {
        crash_and_recover(2, 2, 2, seed, chopped);
    }
}

/// Satellite regression: an *instance-rescued* ledger (write-partitioned YCSB-B, fastpath on)
/// cold-recovered from disk produces the same post-recovery cuts as in-memory replay, at
/// every store sharding. This is the adversarial case for the splice-preserving rebuild:
/// untracked commits and graph-inserted ones interleave inside every block, and the disk
/// round-trip (encode → CRC → decode) must not disturb the replay order the rebuild sees.
#[test]
fn rescued_instance_ledger_recovers_identically_from_disk() {
    let seed = 23;
    let num_accounts = 64usize;
    let params = WorkloadParams {
        num_accounts,
        ..WorkloadParams::default()
    };
    let kind = WorkloadKind::Ycsb(YcsbProfile::b().with_write_partition(0.25));
    let mut generator = WorkloadGenerator::new(kind.clone(), params, seed);
    let analyzer = generator.analyzer();
    let mut chain = SimpleChain::with_template_fastpath(SystemKind::FabricSharp, 0, true);
    chain.seed(generator.genesis());

    let dir = temp_dir("rescued");
    let (mut durable, _) = DurableLedger::open(&dir, DurableOptions::default()).unwrap();
    let mut store = StoreBackend::for_shards(0);
    store.seed_genesis(WorkloadGenerator::new(kind, params, seed).genesis());
    write_checkpoint(&dir, &store, false).unwrap();

    for i in 0..40 {
        let template = generator.next_template();
        let class = analyzer.classify_instance(&template);
        let txn = chain
            .execute(|ctx| template.run(ctx))
            .with_template_class(class);
        let _ = chain.submit(txn);
        if (i + 1) % 5 == 0 {
            if let Some(height) = chain.seal_block().block_number {
                durable
                    .append(chain.ledger().block(height).unwrap().clone())
                    .unwrap();
            }
        }
    }
    if let Some(height) = chain.seal_block().block_number {
        durable
            .append(chain.ledger().block(height).unwrap().clone())
            .unwrap();
    }
    drop(durable);
    let reference = chain.ledger().clone();
    assert!(reference.height() >= 2);

    for shards in STORE_SHARDS {
        let config = CcConfig {
            store_shards: shards,
            template_fastpath: true,
            track_exact_reachability: true,
            ..CcConfig::default()
        };
        let recovered = recover_from_disk(&dir, config).expect("cold recovery");
        assert_eq!(recovered.ledger.height(), reference.height(), "S={shards}");
        assert_eq!(
            recovered.ledger.ledger().tip_hash(),
            reference.tip_hash(),
            "S={shards}"
        );
        let (from_memory, _) = recover_from_ledger(&reference, config).expect("memory recovery");
        // Rescued reads below the write partition interleaved with unknown tail writers.
        let snapshot = reference.height();
        let probes: Vec<Transaction> = (0..6u64)
            .map(|i| {
                if i % 2 == 0 {
                    Transaction::from_parts(
                        800_000 + i,
                        snapshot,
                        [(Key::new(format!("usertable:{}", i % 48)), SeqNo::zero())],
                        [],
                    )
                    .with_template_class(TemplateClass::Safe)
                } else {
                    Transaction::from_parts(
                        800_000 + i,
                        snapshot,
                        [],
                        [(
                            Key::new(format!("usertable:{}", 48 + i % 16)),
                            Value::from_i64(1),
                        )],
                    )
                }
            })
            .collect();
        assert_controllers_equivalent(
            recovered.cc,
            from_memory,
            probes,
            &format!("rescued S={shards}"),
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
