//! Provenance: joining a time-travel answer back to the committing transaction.
//!
//! [`TimeTravel::version_as_of`] yields the commit slot `(block, seq)` behind any historical
//! value; this module resolves that slot against the ledger to recover *who* wrote it — the
//! reenactment query of the audit literature ("which transaction, in which block, produced the
//! balance the auditor is looking at?"). Slot `(0, _)` denotes genesis state, which no
//! transaction produced. For any later slot the ledger entry is cross-checked against the
//! store: the slot must match, the entry must be committed, and its write set must contain the
//! queried key — a mismatch means the store and the ledger have diverged, which is reported as
//! an internal chain error rather than trusted.

use crate::chain::Ledger;
use crate::error::LedgerError;
use eov_common::error::CommonError;
use eov_common::rwset::{Key, Value};
use eov_common::txn::TxnId;
use eov_common::version::SeqNo;
use eov_vstore::TimeTravel;

/// The full answer to "where did the value of `key` at height `h` come from?".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// The commit slot that installed the visible version.
    pub slot: SeqNo,
    /// The committing transaction, or `None` for genesis state (slot block 0).
    pub txn: Option<TxnId>,
    /// The value that was installed.
    pub value: Value,
}

/// Resolves the provenance of `key` as of block `height`: the visible value, its commit slot,
/// and the transaction that wrote it (`None` for genesis seed values). Returns `Ok(None)` if
/// the key had no value at that height, and an error below the pruning horizon or if the store
/// and ledger disagree.
pub fn provenance(
    ledger: &Ledger,
    store: &impl TimeTravel,
    key: &Key,
    height: u64,
) -> Result<Option<Provenance>, LedgerError> {
    let Some(version) = store.value_as_of(key, height)? else {
        return Ok(None);
    };
    let slot = version.version;
    let value = version.value.clone();
    if slot.block == 0 {
        return Ok(Some(Provenance {
            slot,
            txn: None,
            value,
        }));
    }
    let block = ledger.block(slot.block)?;
    let entry = block
        .entries
        .get((slot.seq as usize).wrapping_sub(1))
        .ok_or_else(|| diverged(key, slot, "no entry at that slot"))?;
    if entry.slot != slot {
        return Err(diverged(key, slot, "entry slot mismatch"));
    }
    if !entry.status.is_committed() {
        return Err(diverged(key, slot, "entry is not committed"));
    }
    if !entry.txn.write_set.iter().any(|w| &w.key == key) {
        return Err(diverged(key, slot, "entry does not write the key"));
    }
    Ok(Some(Provenance {
        slot,
        txn: Some(entry.txn.id),
        value,
    }))
}

fn diverged(key: &Key, slot: SeqNo, detail: &str) -> LedgerError {
    LedgerError::Chain(CommonError::Internal(format!(
        "store/ledger divergence resolving {key} at slot ({}, {}): {detail}",
        slot.block, slot.seq
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use eov_common::abort::AbortReason;
    use eov_common::txn::{Transaction, TxnStatus};
    use eov_vstore::{StateStore, StoreBackend};

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    /// A ledger of 3 blocks over keys A/B, with the matching store; block 2's second entry
    /// aborts so committed slots are sparse.
    fn fixture() -> (Ledger, StoreBackend) {
        let mut ledger = Ledger::new();
        let mut store = StoreBackend::for_shards(0);
        store.seed_genesis([(k("A"), Value::from_i64(0)), (k("B"), Value::from_i64(0))]);
        for b in 1..=3u64 {
            let writer =
                Transaction::from_parts(b * 10, b - 1, [], [(k("A"), Value::from_i64(b as i64))]);
            let loser =
                Transaction::from_parts(b * 10 + 1, b - 1, [], [(k("B"), Value::from_i64(-1))]);
            let mut block = Block::build(b, ledger.tip_hash(), vec![writer, loser]);
            block.entries[0].status = TxnStatus::Committed;
            block.entries[1].status = if b == 2 {
                TxnStatus::Aborted(AbortReason::StaleRead)
            } else {
                TxnStatus::Committed
            };
            store.apply_block(b, block.committed());
            ledger.append(block).unwrap();
        }
        (ledger, store)
    }

    #[test]
    fn provenance_resolves_the_committing_transaction() {
        let (ledger, store) = fixture();
        let p = provenance(&ledger, &store, &k("A"), 2).unwrap().unwrap();
        assert_eq!(p.txn, Some(TxnId(20)));
        assert_eq!(p.slot, SeqNo::new(2, 1));
        assert_eq!(p.value, Value::from_i64(2));
        // B's block-2 write aborted, so as of height 2 its provenance is the block-1 writer.
        let p = provenance(&ledger, &store, &k("B"), 2).unwrap().unwrap();
        assert_eq!(p.txn, Some(TxnId(11)));
        assert_eq!(p.slot, SeqNo::new(1, 2));
    }

    #[test]
    fn genesis_values_have_no_committing_transaction() {
        let (ledger, store) = fixture();
        let p = provenance(&ledger, &store, &k("B"), 0).unwrap().unwrap();
        assert_eq!(p.txn, None);
        assert_eq!(p.slot.block, 0);
        assert_eq!(p.value, Value::from_i64(0));
    }

    #[test]
    fn missing_keys_resolve_to_none() {
        let (ledger, store) = fixture();
        assert_eq!(provenance(&ledger, &store, &k("missing"), 3).unwrap(), None);
    }

    #[test]
    fn store_ledger_divergence_is_an_error_not_a_panic() {
        let (ledger, mut store) = fixture();
        // Plant a version claiming a slot that holds an aborted entry.
        store.put(k("B"), SeqNo::new(3, 9), Value::from_i64(99));
        let err = provenance(&ledger, &store, &k("B"), 3).unwrap_err();
        assert!(matches!(err, LedgerError::Chain(CommonError::Internal(_))));
    }
}
