//! Abort reason taxonomy.
//!
//! Each concurrency control aborts transactions for different reasons, and the paper's
//! evaluation (Figure 14 in particular) breaks the abort rate down by cause. The variants of
//! [`AbortReason`] cover every cause that appears in any of the five systems implemented in
//! this repository.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a transaction was aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// Peer-side MVCC validation failure: the transaction read a key whose version is older
    /// than the latest committed version (vanilla Fabric's validation-phase abort).
    StaleRead,
    /// The simulation read across blocks (the state changed mid-simulation); Fabric++ aborts
    /// these during the execute phase ("simulation abort" in Figure 14).
    CrossBlockRead,
    /// The transaction's snapshot is older than `max_span` blocks (Section 4.6).
    SnapshotTooOld,
    /// Focc-s: the transaction writes a key also written by a concurrent transaction
    /// ("Concurrent-ww" in Figure 14).
    ConcurrentWriteWrite,
    /// Focc-s: the transaction forms the dangerous structure of two consecutive read-write
    /// conflicts with at least one anti-rw ("2 consecutive rw" in Figure 14).
    DangerousStructure,
    /// FabricSharp (Theorem 2): the transaction closes a dependency cycle with no c-ww edge
    /// between pending transactions, so no reordering can ever serialize it.
    UnreorderableCycle,
    /// FabricSharp: the bloom-filter reachability test reported a (possibly false-positive)
    /// cycle, so the transaction is preventively aborted (Section 4.4).
    BloomFalsePositive,
    /// Fabric++: the transaction was aborted by the in-block cycle-elimination step of the
    /// reordering algorithm.
    InBlockCycle,
    /// Focc-l: the sort-based greedy reorderer dropped the transaction to break conflicts.
    GreedyVictim,
    /// The endorsement policy was not satisfied (not enough endorsements).
    EndorsementPolicy,
    /// The client or ordering service dropped the transaction (queue overflow / timeout).
    Dropped,
    /// Any cause not covered above ("Others" in Figure 14).
    Other,
}

impl AbortReason {
    /// The bucket this reason falls into in the Figure 14 abort-rate breakdown.
    pub fn figure14_bucket(&self) -> &'static str {
        match self {
            AbortReason::ConcurrentWriteWrite => "Concurrent-ww",
            AbortReason::DangerousStructure => "2 consecutive rw",
            AbortReason::CrossBlockRead => "Simulation abort",
            _ => "Others",
        }
    }

    /// Whether the abort happened before the transaction was sequenced (early abort), as
    /// opposed to a validation-phase abort after the transaction already occupied a block slot.
    pub fn is_early(&self) -> bool {
        !matches!(self, AbortReason::StaleRead)
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::StaleRead => "stale read (MVCC validation failure)",
            AbortReason::CrossBlockRead => "read across blocks during simulation",
            AbortReason::SnapshotTooOld => "snapshot older than max_span",
            AbortReason::ConcurrentWriteWrite => "concurrent write-write conflict",
            AbortReason::DangerousStructure => "two consecutive rw conflicts (dangerous structure)",
            AbortReason::UnreorderableCycle => "unreorderable dependency cycle",
            AbortReason::BloomFalsePositive => {
                "bloom-filter reachability hit (possible false positive)"
            }
            AbortReason::InBlockCycle => "in-block dependency cycle (Fabric++ reordering)",
            AbortReason::GreedyVictim => "dropped by sort-based greedy reordering",
            AbortReason::EndorsementPolicy => "endorsement policy not satisfied",
            AbortReason::Dropped => "dropped by the pipeline",
            AbortReason::Other => "other",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure14_buckets() {
        assert_eq!(
            AbortReason::ConcurrentWriteWrite.figure14_bucket(),
            "Concurrent-ww"
        );
        assert_eq!(
            AbortReason::DangerousStructure.figure14_bucket(),
            "2 consecutive rw"
        );
        assert_eq!(
            AbortReason::CrossBlockRead.figure14_bucket(),
            "Simulation abort"
        );
        assert_eq!(AbortReason::StaleRead.figure14_bucket(), "Others");
        assert_eq!(AbortReason::UnreorderableCycle.figure14_bucket(), "Others");
    }

    #[test]
    fn stale_read_is_the_only_late_abort() {
        assert!(!AbortReason::StaleRead.is_early());
        assert!(AbortReason::UnreorderableCycle.is_early());
        assert!(AbortReason::CrossBlockRead.is_early());
        assert!(AbortReason::ConcurrentWriteWrite.is_early());
    }

    #[test]
    fn display_is_human_readable() {
        let s = AbortReason::UnreorderableCycle.to_string();
        assert!(s.contains("cycle"));
    }
}
