//! Workload generators.
//!
//! A [`WorkloadGenerator`] turns the experiment parameters (Table 2 and Section 5.4) into a
//! deterministic, seeded stream of transaction templates. The simulator materialises each
//! template by running the corresponding contract inside an endorsement simulation, which is
//! what produces the read/write sets the concurrency controls operate on.

use crate::contracts::{KvUpdateContract, SmartContract};
use crate::smallbank::{self, SmallbankContract, SmallbankOp};
use crate::ycsb::{self, YcsbProfile, YcsbTxn};
use crate::zipf::Zipfian;
use eov_common::config::WorkloadParams;
use eov_common::rwset::{Key, Value};
use fabricsharp_core::endorser::SimulationContext;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which workload to generate.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadKind {
    /// No-op transactions (Figure 1, left bar).
    NoOp,
    /// Single-key read-modify-write transactions with Zipfian key selection (Figure 1).
    KvUpdate {
        /// Zipfian skew over the key space (`params.num_accounts` keys).
        theta: f64,
    },
    /// The modified Smallbank of Section 5.2: 4 reads + 4 writes with hot-account ratios.
    ModifiedSmallbank,
    /// The original Smallbank mix of Section 5.4 (50% read-only / 30% one-account updates /
    /// 20% two-account updates) with Zipfian account selection.
    MixedSmallbank {
        /// Zipfian skew over the account space.
        theta: f64,
    },
    /// Uniform Create-Account transactions (write-only, contention-free; Section 5.4).
    CreateAccount,
    /// YCSB-style read/update/RMW mix with Zipfian skew and a cross-shard locality knob
    /// (see [`crate::ycsb`]); the key population is `params.num_accounts` records.
    Ycsb(YcsbProfile),
}

/// A transaction template: everything the endorser needs to materialise the transaction.
#[derive(Clone, Debug, PartialEq)]
pub enum TxnTemplate {
    /// A no-op invocation.
    NoOp,
    /// Read-modify-write of key `kv:<index>`.
    KvUpdate {
        /// Index of the key to update.
        key_index: usize,
    },
    /// A Smallbank operation.
    Smallbank(SmallbankOp),
    /// A YCSB transaction.
    Ycsb(YcsbTxn),
}

impl TxnTemplate {
    /// Number of snapshot reads this template performs (drives the read-interval timing model).
    pub fn read_count(&self) -> usize {
        match self {
            TxnTemplate::NoOp => 0,
            TxnTemplate::KvUpdate { .. } => 1,
            TxnTemplate::Smallbank(op) => op.read_count(),
            TxnTemplate::Ycsb(txn) => txn.read_count(),
        }
    }

    /// Executes the template's contract logic inside a simulation context.
    pub fn run(&self, ctx: &mut SimulationContext<'_>) {
        match self {
            TxnTemplate::NoOp => {}
            TxnTemplate::KvUpdate { key_index } => KvUpdateContract::for_index(*key_index).run(ctx),
            TxnTemplate::Smallbank(op) => SmallbankContract.run(ctx, op),
            TxnTemplate::Ycsb(txn) => txn.run(ctx),
        }
    }
}

/// A seeded stream of transaction templates.
#[derive(Clone, Debug)]
pub struct WorkloadGenerator {
    params: WorkloadParams,
    kind: WorkloadKind,
    rng: StdRng,
    zipf: Option<Zipfian>,
    next_new_account: usize,
}

impl WorkloadGenerator {
    /// Creates a generator for `kind` with the given parameters and RNG seed. Identical seeds
    /// produce identical template streams, which keeps experiments reproducible.
    pub fn new(kind: WorkloadKind, params: WorkloadParams, seed: u64) -> Self {
        let zipf = match &kind {
            WorkloadKind::KvUpdate { theta } | WorkloadKind::MixedSmallbank { theta } => {
                Some(Zipfian::new(params.num_accounts, *theta))
            }
            WorkloadKind::Ycsb(profile) => Some(Zipfian::new(params.num_accounts, profile.theta)),
            _ => None,
        };
        WorkloadGenerator {
            next_new_account: params.num_accounts,
            params,
            kind,
            rng: StdRng::seed_from_u64(seed),
            zipf,
        }
    }

    /// The workload kind.
    pub fn kind(&self) -> &WorkloadKind {
        &self.kind
    }

    /// The workload parameters.
    pub fn params(&self) -> &WorkloadParams {
        &self.params
    }

    /// The template-robustness classifier for this workload's mix (see [`crate::templates`]).
    pub fn classifier(&self) -> crate::templates::TemplateClassifier {
        crate::templates::TemplateClassifier::new(&self.kind)
    }

    /// The key-granular conflict analyzer for this workload's mix (see [`crate::conflict`]):
    /// refines [`WorkloadGenerator::classifier`] from template-level to instance-level safe
    /// classification, over domains derived from these exact generator parameters.
    pub fn analyzer(&self) -> crate::conflict::ConflictAnalyzer {
        crate::conflict::ConflictAnalyzer::new(&self.kind, &self.params)
    }

    /// The genesis state this workload expects.
    pub fn genesis(&self) -> Vec<(Key, Value)> {
        match &self.kind {
            WorkloadKind::NoOp => Vec::new(),
            WorkloadKind::KvUpdate { .. } => (0..self.params.num_accounts)
                .map(|i| (Key::new(format!("kv:{i}")), Value::from_i64(0)))
                .collect(),
            WorkloadKind::ModifiedSmallbank
            | WorkloadKind::MixedSmallbank { .. }
            | WorkloadKind::CreateAccount => smallbank::genesis_accounts(self.params.num_accounts),
            WorkloadKind::Ycsb(_) => ycsb::ycsb_genesis(self.params.num_accounts),
        }
    }

    /// Draws the next transaction template.
    pub fn next_template(&mut self) -> TxnTemplate {
        match self.kind.clone() {
            WorkloadKind::NoOp => TxnTemplate::NoOp,
            WorkloadKind::KvUpdate { .. } => {
                let zipf = self.zipf.as_ref().expect("zipf initialised for KvUpdate");
                TxnTemplate::KvUpdate {
                    key_index: zipf.sample(&mut self.rng),
                }
            }
            WorkloadKind::ModifiedSmallbank => {
                let reads =
                    self.pick_accounts(self.params.reads_per_txn, self.params.read_hot_ratio);
                let writes =
                    self.pick_accounts(self.params.writes_per_txn, self.params.write_hot_ratio);
                TxnTemplate::Smallbank(SmallbankOp::ModifiedRw { reads, writes })
            }
            WorkloadKind::MixedSmallbank { .. } => TxnTemplate::Smallbank(self.next_mixed_op()),
            WorkloadKind::CreateAccount => {
                let account = self.next_new_account;
                self.next_new_account += 1;
                TxnTemplate::Smallbank(SmallbankOp::CreateAccount {
                    account,
                    checking: 1_000,
                    savings: 1_000,
                })
            }
            WorkloadKind::Ycsb(profile) => {
                let zipf = self.zipf.as_ref().expect("zipf initialised for Ycsb");
                TxnTemplate::Ycsb(ycsb::next_ycsb_txn(
                    &profile,
                    zipf,
                    self.params.num_accounts,
                    &mut self.rng,
                ))
            }
        }
    }

    /// Picks `count` distinct accounts, each hot with probability `hot_ratio`.
    fn pick_accounts(&mut self, count: usize, hot_ratio: f64) -> Vec<usize> {
        let hot = self.params.num_hot_accounts().max(1);
        let total = self.params.num_accounts.max(hot + 1);
        let mut chosen: Vec<usize> = Vec::with_capacity(count);
        let mut attempts = 0;
        while chosen.len() < count && attempts < count * 50 {
            attempts += 1;
            let account = if self.rng.gen_bool(hot_ratio.clamp(0.0, 1.0)) {
                self.rng.gen_range(0..hot)
            } else {
                self.rng.gen_range(hot..total)
            };
            if !chosen.contains(&account) {
                chosen.push(account);
            }
        }
        chosen
    }

    /// The Section 5.4 operation mix.
    fn next_mixed_op(&mut self) -> SmallbankOp {
        let zipf = self
            .zipf
            .as_ref()
            .expect("zipf initialised for MixedSmallbank");
        let account = zipf.sample(&mut self.rng);
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        if roll < 0.50 {
            SmallbankOp::QueryAccount { account }
        } else if roll < 0.80 {
            let amount = self.rng.gen_range(1..100);
            match self.rng.gen_range(0..3) {
                0 => SmallbankOp::DepositChecking { account, amount },
                1 => SmallbankOp::WriteCheck { account, amount },
                _ => SmallbankOp::TransactSavings { account, amount },
            }
        } else {
            let mut other = zipf.sample(&mut self.rng);
            if other == account {
                other = (other + 1) % self.params.num_accounts;
            }
            if self.rng.gen_bool(0.5) {
                SmallbankOp::SendPayment {
                    from: account,
                    to: other,
                    amount: self.rng.gen_range(1..100),
                }
            } else {
                SmallbankOp::Amalgamate {
                    from: account,
                    to: other,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(accounts: usize) -> WorkloadParams {
        WorkloadParams {
            num_accounts: accounts,
            ..WorkloadParams::default()
        }
    }

    #[test]
    fn generators_are_deterministic_for_a_seed() {
        let mut a =
            WorkloadGenerator::new(WorkloadKind::MixedSmallbank { theta: 0.8 }, params(100), 42);
        let mut b =
            WorkloadGenerator::new(WorkloadKind::MixedSmallbank { theta: 0.8 }, params(100), 42);
        for _ in 0..50 {
            assert_eq!(a.next_template(), b.next_template());
        }
        assert_eq!(a.kind(), &WorkloadKind::MixedSmallbank { theta: 0.8 });
    }

    #[test]
    fn modified_smallbank_respects_read_write_counts_and_distinctness() {
        let mut gen = WorkloadGenerator::new(WorkloadKind::ModifiedSmallbank, params(1_000), 7);
        for _ in 0..100 {
            match gen.next_template() {
                TxnTemplate::Smallbank(SmallbankOp::ModifiedRw { reads, writes }) => {
                    assert_eq!(reads.len(), 4);
                    assert_eq!(writes.len(), 4);
                    let unique: std::collections::HashSet<_> = reads.iter().collect();
                    assert_eq!(unique.len(), 4, "read accounts must be distinct");
                }
                other => panic!("unexpected template {other:?}"),
            }
        }
    }

    #[test]
    fn hot_ratio_one_always_picks_hot_accounts() {
        let mut p = params(1_000);
        p.read_hot_ratio = 1.0;
        p.write_hot_ratio = 1.0;
        let hot = p.num_hot_accounts();
        let mut gen = WorkloadGenerator::new(WorkloadKind::ModifiedSmallbank, p, 3);
        for _ in 0..20 {
            if let TxnTemplate::Smallbank(SmallbankOp::ModifiedRw { reads, writes }) =
                gen.next_template()
            {
                assert!(reads.iter().all(|a| *a < hot));
                assert!(writes.iter().all(|a| *a < hot));
            }
        }
    }

    #[test]
    fn create_account_produces_fresh_write_only_accounts() {
        let mut gen = WorkloadGenerator::new(WorkloadKind::CreateAccount, params(50), 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            match gen.next_template() {
                TxnTemplate::Smallbank(SmallbankOp::CreateAccount { account, .. }) => {
                    assert!(
                        account >= 50,
                        "new accounts must not collide with genesis accounts"
                    );
                    assert!(seen.insert(account), "accounts must be unique");
                }
                other => panic!("unexpected template {other:?}"),
            }
        }
    }

    #[test]
    fn mixed_workload_matches_the_target_mix_roughly() {
        let mut gen = WorkloadGenerator::new(
            WorkloadKind::MixedSmallbank { theta: 0.0 },
            params(1_000),
            11,
        );
        let (mut reads, mut singles, mut doubles) = (0usize, 0usize, 0usize);
        for _ in 0..2_000 {
            match gen.next_template() {
                TxnTemplate::Smallbank(SmallbankOp::QueryAccount { .. }) => reads += 1,
                TxnTemplate::Smallbank(
                    SmallbankOp::DepositChecking { .. }
                    | SmallbankOp::WriteCheck { .. }
                    | SmallbankOp::TransactSavings { .. },
                ) => singles += 1,
                TxnTemplate::Smallbank(
                    SmallbankOp::SendPayment { .. } | SmallbankOp::Amalgamate { .. },
                ) => doubles += 1,
                other => panic!("unexpected template {other:?}"),
            }
        }
        let frac = |x: usize| x as f64 / 2_000.0;
        assert!(
            (frac(reads) - 0.50).abs() < 0.05,
            "read-only fraction {}",
            frac(reads)
        );
        assert!((frac(singles) - 0.30).abs() < 0.05);
        assert!((frac(doubles) - 0.20).abs() < 0.05);
    }

    #[test]
    fn genesis_matches_the_workload() {
        let gen_noop = WorkloadGenerator::new(WorkloadKind::NoOp, params(10), 0);
        assert!(gen_noop.genesis().is_empty());
        let gen_kv = WorkloadGenerator::new(WorkloadKind::KvUpdate { theta: 0.5 }, params(10), 0);
        assert_eq!(gen_kv.genesis().len(), 10);
        let gen_sb = WorkloadGenerator::new(WorkloadKind::ModifiedSmallbank, params(10), 0);
        assert_eq!(gen_sb.genesis().len(), 20);
        assert_eq!(gen_sb.params().num_accounts, 10);
    }

    #[test]
    fn template_read_counts() {
        assert_eq!(TxnTemplate::NoOp.read_count(), 0);
        assert_eq!(TxnTemplate::KvUpdate { key_index: 1 }.read_count(), 1);
        assert_eq!(
            TxnTemplate::Smallbank(SmallbankOp::SendPayment {
                from: 0,
                to: 1,
                amount: 1
            })
            .read_count(),
            2
        );
    }
}
