//! Cold-replay recovery under the template fast path.
//!
//! With `CcConfig::template_fastpath` on, statically safe transactions commit without ever
//! being graph-inserted — but they still land in the ledger, and an orderer that restarts
//! must rebuild a correct controller from that ledger alone. This battery pins the recovery
//! contract three ways:
//!
//! 1. a ledger produced with the fast path **on** is bit-identical to the fastpath-off ledger
//!    (the knob never leaks into the persisted artefact);
//! 2. recovering from that ledger with the fast path on and off — at `S = 0 / 2 / 4` store
//!    shards — yields controllers that resume at the same block and make identical decisions
//!    on fresh in-contract arrivals, cut for cut;
//! 3. replaying the ledger's committed writes into the unsharded and sharded store backends
//!    answers every read identically (the "identical stores" half of a cold replay).

use fabricsharp::baselines::{SimpleChain, SystemKind};
use fabricsharp::common::config::{CcConfig, WorkloadParams};
use fabricsharp::common::rwset::{Key, Value};
use fabricsharp::common::txn::{TemplateClass, Transaction};
use fabricsharp::core::recovery::recover_from_ledger;
use fabricsharp::core::FabricSharpCC;
use fabricsharp::ledger::Ledger;
use fabricsharp::vstore::{StateRead, StateStore, StoreBackend};
use fabricsharp::workload::generator::{WorkloadGenerator, WorkloadKind};
use fabricsharp::workload::YcsbProfile;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [0, 2, 4];

/// Drives a live FabricSharp chain over a classified workload stream — tagging every
/// transaction exactly like the simulator does — and returns its ledger.
fn build_ledger(
    kind: WorkloadKind,
    num_accounts: usize,
    num_txns: usize,
    block_size: usize,
    seed: u64,
    fastpath: bool,
) -> Ledger {
    let params = WorkloadParams {
        num_accounts,
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(kind, params, seed);
    let analyzer = generator.analyzer();
    let mut chain = SimpleChain::with_template_fastpath(SystemKind::FabricSharp, 0, fastpath);
    chain.seed(generator.genesis());
    for i in 0..num_txns {
        let template = generator.next_template();
        let class = analyzer.classify_instance(&template);
        let txn = chain
            .execute(|ctx| template.run(ctx))
            .with_template_class(class);
        let _ = chain.submit(txn);
        if (i + 1) % block_size == 0 {
            chain.seal_block();
        }
    }
    chain.seal_block();
    chain.ledger().clone()
}

fn recovered(ledger: &Ledger, store_shards: usize, fastpath: bool) -> FabricSharpCC {
    let (cc, report) = recover_from_ledger(
        ledger,
        CcConfig {
            store_shards,
            template_fastpath: fastpath,
            track_exact_reachability: true,
            ..CcConfig::default()
        },
    )
    .expect("ledger verifies");
    assert_eq!(report.ledger_height, ledger.height());
    cc
}

/// An in-contract probe for the CreateAccount mix: a fresh write-only account nobody else
/// touches, i.e. exactly the traffic the classifier marked safe.
fn fresh_probe(id: u64, snapshot: u64) -> Transaction {
    Transaction::from_parts(
        id,
        snapshot,
        [],
        [
            (Key::new(format!("checking:{id}")), Value::from_i64(1_000)),
            (Key::new(format!("savings:{id}")), Value::from_i64(1_000)),
        ],
    )
    .with_template_class(TemplateClass::Safe)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A cold replay of a fastpath-on ledger must rebuild equivalent controllers whether the
    /// recovering orderer has the fast path on or off, at every store sharding — same resume
    /// block, same verdicts on fresh in-contract arrivals, same post-recovery blocks.
    #[test]
    fn cold_replay_rebuilds_identical_controllers(
        seed in any::<u64>(),
        num_txns in 20usize..48,
        block_size in 3usize..7,
    ) {
        let num_accounts = 16usize;
        // The safe-writer mix: every transaction is classified safe, so with the fast path on
        // *nothing* in the ledger suffix was ever graph-inserted — the adversarial case for
        // recovery.
        let ledger_on = build_ledger(
            WorkloadKind::CreateAccount, num_accounts, num_txns, block_size, seed, true,
        );
        let ledger_off = build_ledger(
            WorkloadKind::CreateAccount, num_accounts, num_txns, block_size, seed, false,
        );
        // (1) The knob never leaks into the persisted artefact.
        prop_assert_eq!(ledger_on.tip_hash(), ledger_off.tip_hash());
        prop_assert!(ledger_on.height() >= 2, "degenerate run: height {}", ledger_on.height());

        for shards in SHARD_COUNTS {
            let mut with_fastpath = recovered(&ledger_on, shards, true);
            let mut without = recovered(&ledger_on, shards, false);

            // (2) Same resume point. The fastpath recoverer logged the safe suffix as
            // untracked commits instead of graph nodes; the reference recoverer inserted
            // committed nodes — both must know every replayed transaction.
            prop_assert_eq!(with_fastpath.next_block(), without.next_block());
            prop_assert!(with_fastpath.graph().len() <= without.graph().len());
            // Only the replayed suffix matters: recovery (and the untracked-commit log's
            // pruning schedule) both cut off `max_span` blocks below the tip.
            let replay_from = ledger_on
                .height()
                .saturating_sub(CcConfig::default().max_span)
                .max(1);
            for block in ledger_on.iter().filter(|b| b.number() >= replay_from) {
                for entry in &block.entries {
                    if entry.status.is_committed() {
                        prop_assert!(
                            with_fastpath.graph().knows(entry.txn.id),
                            "fastpath recoverer must know replayed txn {:?} (S={})",
                            entry.txn.id, shards
                        );
                    }
                }
            }

            // Identical decisions on fresh in-contract arrivals...
            let base = 100_000u64;
            let snapshot = ledger_on.height();
            for i in 0..6u64 {
                let probe = fresh_probe(base + i, snapshot.saturating_sub(i % 3));
                let d_on = with_fastpath.on_arrival(probe.clone()).is_accept();
                let d_off = without.on_arrival(probe).is_accept();
                prop_assert_eq!(d_on, d_off, "probe {} diverged (S={})", i, shards);
            }

            // ...and identical blocks when the recovered controllers keep running.
            let cut_on = with_fastpath.cut_block();
            let cut_off = without.cut_block();
            let ids_on: Vec<_> = cut_on.iter().map(|t| (t.id, t.end_ts)).collect();
            let ids_off: Vec<_> = cut_off.iter().map(|t| (t.id, t.end_ts)).collect();
            prop_assert_eq!(ids_on, ids_off, "post-recovery block diverged (S={})", shards);
        }
    }

    /// Same contract on an *instance-rescued* ledger: write-partitioned YCSB-B interleaves
    /// untracked commits (reads the analyzer proved miss the write tail) with graph-inserted
    /// ones (writers and tail reads) inside every block — the adversarial case for the
    /// splice-preserving recovery rebuild. The ledger must not depend on the knob, and
    /// recovered controllers must agree on resume point, replayed-suffix knowledge, verdicts
    /// on fresh rescued/unknown arrivals, and the next cut.
    #[test]
    fn cold_replay_of_an_instance_rescued_ledger_is_equivalent(
        seed in any::<u64>(),
        num_txns in 24usize..44,
        block_size in 4usize..8,
    ) {
        use fabricsharp::common::version::SeqNo;

        let num_accounts = 64usize;
        // Partition the top quarter: reads below index 48 are provably safe instances.
        let kind = WorkloadKind::Ycsb(YcsbProfile::b().with_write_partition(0.25));
        let ledger_on =
            build_ledger(kind.clone(), num_accounts, num_txns, block_size, seed, true);
        let ledger_off = build_ledger(kind, num_accounts, num_txns, block_size, seed, false);
        prop_assert_eq!(ledger_on.tip_hash(), ledger_off.tip_hash());
        prop_assert!(ledger_on.height() >= 2, "degenerate run: height {}", ledger_on.height());

        for shards in SHARD_COUNTS {
            let mut with_fastpath = recovered(&ledger_on, shards, true);
            let mut without = recovered(&ledger_on, shards, false);
            prop_assert_eq!(with_fastpath.next_block(), without.next_block());
            prop_assert!(with_fastpath.graph().len() <= without.graph().len());
            let replay_from = ledger_on
                .height()
                .saturating_sub(CcConfig::default().max_span)
                .max(1);
            for block in ledger_on.iter().filter(|b| b.number() >= replay_from) {
                for entry in &block.entries {
                    if entry.status.is_committed() {
                        prop_assert!(
                            with_fastpath.graph().knows(entry.txn.id),
                            "fastpath recoverer must know replayed txn {:?} (S={})",
                            entry.txn.id, shards
                        );
                    }
                }
            }

            // Fresh in-contract arrivals: rescued reads (below the partition, tagged Safe by
            // the instance rule) interleaved with unknown writers into the tail.
            let base = 200_000u64;
            let snapshot = ledger_on.height();
            for i in 0..6u64 {
                let probe = if i % 2 == 0 {
                    Transaction::from_parts(
                        base + i,
                        snapshot,
                        [(Key::new(format!("usertable:{}", i % 48)), SeqNo::zero())],
                        [],
                    )
                    .with_template_class(TemplateClass::Safe)
                } else {
                    Transaction::from_parts(
                        base + i,
                        snapshot,
                        [],
                        [(Key::new(format!("usertable:{}", 48 + i % 16)), Value::from_i64(1))],
                    )
                };
                let d_on = with_fastpath.on_arrival(probe.clone()).is_accept();
                let d_off = without.on_arrival(probe).is_accept();
                prop_assert_eq!(d_on, d_off, "probe {} diverged (S={})", i, shards);
            }
            let cut_on = with_fastpath.cut_block();
            let cut_off = without.cut_block();
            let ids_on: Vec<_> = cut_on.iter().map(|t| (t.id, t.end_ts)).collect();
            let ids_off: Vec<_> = cut_off.iter().map(|t| (t.id, t.end_ts)).collect();
            prop_assert_eq!(ids_on, ids_off, "post-recovery block diverged (S={})", shards);
        }
    }

    /// The state-store half of the cold replay: the committed writes of a fastpath-on ledger
    /// replayed into the unsharded and sharded backends answer every read identically.
    #[test]
    fn store_replay_of_a_fastpath_ledger_is_identical_across_shardings(
        seed in any::<u64>(),
        num_txns in 20usize..40,
        block_size in 3usize..7,
    ) {
        let num_accounts = 12usize;
        let ledger = build_ledger(
            WorkloadKind::CreateAccount, num_accounts, num_txns, block_size, seed, true,
        );
        prop_assert!(ledger.height() >= 2);

        let mut backends: Vec<StoreBackend> = SHARD_COUNTS
            .iter()
            .map(|shards| StoreBackend::for_shards(*shards))
            .collect();
        for backend in &mut backends {
            let params = WorkloadParams { num_accounts, ..WorkloadParams::default() };
            let generator =
                WorkloadGenerator::new(WorkloadKind::CreateAccount, params, seed);
            backend.seed_genesis(generator.genesis());
            for block in ledger.iter() {
                let committed: Vec<_> = block.committed().collect();
                backend.apply_block(block.number(), committed);
            }
        }

        let (reference, sharded) = backends.split_first().unwrap();
        prop_assert_eq!(reference.last_block(), ledger.height());
        // Every key the run created (the genesis population plus one fresh account pair per
        // committed create) must read identically at every height.
        let created = num_accounts + num_txns;
        for candidate in sharded {
            prop_assert_eq!(reference.last_block(), candidate.last_block());
            prop_assert_eq!(reference.key_count(), candidate.key_count());
            prop_assert_eq!(reference.version_count(), candidate.version_count());
            for account in 0..created {
                for key in [
                    Key::new(format!("checking:{account}")),
                    Key::new(format!("savings:{account}")),
                ] {
                    prop_assert_eq!(reference.latest(&key), candidate.latest(&key));
                    for block in 0..=ledger.height() {
                        prop_assert_eq!(
                            reference.read_at(&key, block).unwrap(),
                            candidate.read_at(&key, block).unwrap(),
                            "{} @ {}", key, block
                        );
                    }
                }
            }
        }
    }
}
