//! Discrete-event machinery: simulated time, events and the event queue.
//!
//! Simulated time is measured in integer microseconds so event ordering is exact and
//! deterministic (floating-point timestamps would make tie-breaking platform-dependent, which
//! would violate the replication requirement the paper's Section 3.5 puts on the ordering
//! service).

use eov_common::txn::Transaction;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Simulated time in microseconds since the start of the run.
pub type SimTime = u64;

/// Converts milliseconds (possibly fractional) to simulated microseconds.
pub fn ms(value: f64) -> SimTime {
    (value * 1_000.0).round().max(0.0) as SimTime
}

/// One simulation event.
#[derive(Debug)]
pub enum Event {
    /// A client issues the next request; the payload is the request's ordinal number.
    ClientSubmit {
        /// Sequence number of the request (doubles as the transaction id).
        request_no: u64,
    },
    /// An endorsement finishes simulating at this simulated time; the driver collects the
    /// result from the endorsement stage (which may have computed it on a sharded worker) and
    /// broadcasts it.
    EndorseDone {
        /// The request whose endorsement completes (doubles as the transaction id).
        request_no: u64,
        /// When the client originally submitted the request.
        submitted_at: SimTime,
    },
    /// The transaction reaches the ordering service (after client delay + consensus latency).
    OrdererReceive {
        /// The endorsed transaction.
        txn: Transaction,
        /// When the client originally submitted the request.
        submitted_at: SimTime,
    },
    /// The block-formation timeout fires for the window opened when `blocks_formed` blocks had
    /// been cut (stale timeouts are ignored by comparing against the current count).
    BlockTimeout {
        /// Number of blocks that had been formed when this timeout was armed.
        blocks_formed_at_arming: u64,
    },
    /// A cut block has been delivered to the validating peer.
    BlockDelivered {
        /// The block's transactions in final commit order (with `end_ts` assigned by the CC).
        /// Shared because the commit stage's scheduler workers hold the block concurrently
        /// with the driver; the runner unwraps (or clones) it when building the ledger block.
        txns: Arc<Vec<Transaction>>,
        /// Submission times of those transactions (for latency accounting), same order.
        submitted_at: Vec<SimTime>,
        /// When the orderer cut the block.
        formed_at: SimTime,
    },
    /// Pipelined formation only: the modelled reordering delay of a sealed block elapses.
    /// The driver joins the formation worker (or claims the force-joined result) and runs
    /// block delivery inline — scheduled at seal time with exactly the timestamp the phased
    /// mode gives its `BlockDelivered`, so the queue's FIFO tie-breaking sees the same
    /// insertion sequence and event order stays bit-identical across the two modes.
    PipelinedBlockReady {
        /// Seal-order number of the formation to claim (back-pressure can force-join a
        /// block before its ready event fires, so readiness is matched by number).
        formation_no: u64,
        /// When the orderer sealed the block.
        formed_at: SimTime,
    },
    /// The validator finished processing a delivered block; its effects are applied.
    BlockValidated {
        /// Ledger height this block commits at (assigned in delivery order).
        block_no: u64,
        /// The block's transactions in final commit order (shared with the commit stage).
        txns: Arc<Vec<Transaction>>,
        /// Submission times of those transactions, same order.
        submitted_at: Vec<SimTime>,
    },
}

/// A deterministic priority queue of timestamped events. Ties are broken by insertion order.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    payloads: std::collections::HashMap<u64, Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at absolute simulated time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq)));
        self.payloads.insert(seq, event);
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let Reverse((at, seq)) = self.heap.pop()?;
        let event = self
            .payloads
            .remove(&seq)
            .expect("payload exists for scheduled event");
        Some((at, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_conversion_rounds_to_microseconds() {
        assert_eq!(ms(1.0), 1_000);
        assert_eq!(ms(0.5), 500);
        assert_eq!(ms(0.0004), 0);
        assert_eq!(ms(-3.0), 0);
    }

    #[test]
    fn events_pop_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.schedule(50, Event::ClientSubmit { request_no: 2 });
        q.schedule(10, Event::ClientSubmit { request_no: 1 });
        q.schedule(50, Event::ClientSubmit { request_no: 3 });
        assert_eq!(q.len(), 3);

        let order: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::ClientSubmit { request_no } => (t, request_no),
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(order, vec![(10, 1), (50, 2), (50, 3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_scheduling_keeps_determinism() {
        let mut q = EventQueue::new();
        q.schedule(5, Event::ClientSubmit { request_no: 1 });
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, 5);
        q.schedule(4, Event::ClientSubmit { request_no: 2 });
        q.schedule(
            4,
            Event::BlockTimeout {
                blocks_formed_at_arming: 0,
            },
        );
        let (_, first) = q.pop().unwrap();
        assert!(matches!(first, Event::ClientSubmit { request_no: 2 }));
        let (_, second) = q.pop().unwrap();
        assert!(matches!(second, Event::BlockTimeout { .. }));
    }
}
