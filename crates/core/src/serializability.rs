//! Offline serializability oracle.
//!
//! Given a committed history — transactions with their read sets (keys + observed versions),
//! write sets and commit slots — this module decides whether the history is (one-copy)
//! serializable by building the multi-version serialization graph and testing it for cycles:
//!
//! * **wr**: the transaction that installed the version a reader observed precedes the reader.
//! * **ww**: writers of the same key are ordered by their commit slots.
//! * **rw**: a reader of version `v` of a key precedes every transaction that installed a
//!   later version of that key (it logically read "before" the overwrite) — this captures
//!   anti-dependencies regardless of commit order.
//!
//! The history is serializable iff this graph is acyclic. The oracle is deliberately
//! independent of the dependency-graph machinery in `eov-depgraph`, so the property tests that
//! assert "everything FabricSharp commits is serializable" are not circular.

use eov_common::txn::{Transaction, TxnId};
use eov_common::version::SeqNo;
use std::collections::{HashMap, HashSet};

/// Whether the committed history is serializable. Transactions must have their `end_ts` set;
/// entries without a commit slot are ignored (they never became part of the history).
pub fn is_serializable(history: &[Transaction]) -> bool {
    serialization_order(history).is_some()
}

/// Computes a serial order witnessing serializability (a topological order of the
/// serialization graph), or `None` if the history is not serializable.
pub fn serialization_order(history: &[Transaction]) -> Option<Vec<TxnId>> {
    let committed: Vec<&Transaction> = history.iter().filter(|t| t.end_ts.is_some()).collect();
    let ids: Vec<TxnId> = committed.iter().map(|t| t.id).collect();
    let id_set: HashSet<TxnId> = ids.iter().copied().collect();
    if ids.len() != id_set.len() {
        // Duplicate transaction ids make the history ill-formed.
        return None;
    }

    // Index writers per key, ordered by commit slot, so ww and rw edges are cheap to derive.
    let mut writers_by_key: HashMap<&str, Vec<(SeqNo, TxnId)>> = HashMap::new();
    let mut version_installer: HashMap<(&str, SeqNo), TxnId> = HashMap::new();
    for txn in &committed {
        let end = txn.end_ts.expect("filtered to committed");
        for w in txn.write_set.iter() {
            writers_by_key
                .entry(w.key.as_str())
                .or_default()
                .push((end, txn.id));
            version_installer.insert((w.key.as_str(), end), txn.id);
        }
    }
    // lint-determinism: allow (each value is sorted independently; visit order is irrelevant)
    for writers in writers_by_key.values_mut() {
        writers.sort();
    }

    let mut edges: HashMap<TxnId, HashSet<TxnId>> =
        ids.iter().map(|id| (*id, HashSet::new())).collect();
    let add_edge = |from: TxnId, to: TxnId, edges: &mut HashMap<TxnId, HashSet<TxnId>>| {
        if from != to {
            edges.get_mut(&from).expect("known id").insert(to);
        }
    };

    // ww edges: consecutive writers of the same key in commit order.
    // lint-determinism: allow (edges are a set; insertion order cannot change its contents)
    for writers in writers_by_key.values() {
        for pair in writers.windows(2) {
            add_edge(pair[0].1, pair[1].1, &mut edges);
        }
    }

    // wr and rw edges from each read.
    for txn in &committed {
        for read in txn.read_set.iter() {
            let key = read.key.as_str();
            // wr: whoever installed the observed version precedes the reader. Genesis versions
            // (block 0) have no installer in the history.
            if let Some(&installer) = version_installer.get(&(key, read.version)) {
                add_edge(installer, txn.id, &mut edges);
            }
            // rw: the reader precedes every writer that installed a *later* version.
            if let Some(writers) = writers_by_key.get(key) {
                for &(slot, writer) in writers {
                    if slot > read.version {
                        add_edge(txn.id, writer, &mut edges);
                    }
                }
            }
        }
    }

    topological_order(&ids, &edges)
}

/// Kahn's algorithm; returns `None` when the graph has a cycle. Ties are broken by the order
/// ids appear in `ids` (commit order), so the witness is stable.
fn topological_order(ids: &[TxnId], edges: &HashMap<TxnId, HashSet<TxnId>>) -> Option<Vec<TxnId>> {
    let mut indegree: HashMap<TxnId, usize> = ids.iter().map(|id| (*id, 0)).collect();
    // lint-determinism: allow (indegree increments are commutative)
    for targets in edges.values() {
        for t in targets {
            *indegree.get_mut(t).expect("known id") += 1;
        }
    }
    let mut ready: Vec<TxnId> = ids.iter().filter(|id| indegree[id] == 0).copied().collect();
    let mut order = Vec::with_capacity(ids.len());
    while let Some(next) = ready.first().copied() {
        ready.remove(0);
        order.push(next);
        if let Some(targets) = edges.get(&next) {
            // Deterministic release order: follow the original id order.
            for id in ids {
                if targets.contains(id) {
                    let d = indegree.get_mut(id).expect("known id");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(*id);
                    }
                }
            }
        }
    }
    if order.len() == ids.len() {
        Some(order)
    } else {
        None
    }
}

/// Whether the committed history is *strongly* serializable (Definition 6): serializable with
/// the commit order itself as the witness. This is what Fabric and Fabric++ enforce; the gap
/// between this predicate and [`is_serializable`] is exactly the set of schedules FabricSharp
/// can additionally accept.
pub fn is_strongly_serializable(history: &[Transaction]) -> bool {
    let mut committed: Vec<&Transaction> = history.iter().filter(|t| t.end_ts.is_some()).collect();
    committed.sort_by_key(|t| t.end_ts.expect("committed"));

    // Replay in commit order: every read must observe the latest version installed so far (or
    // its own snapshot version if the key was never touched), i.e. no anti-rw edge exists.
    let mut latest: HashMap<&str, SeqNo> = HashMap::new();
    for txn in &committed {
        for read in txn.read_set.iter() {
            if let Some(&installed) = latest.get(read.key.as_str()) {
                if installed > read.version {
                    return false;
                }
            }
        }
        let end = txn.end_ts.expect("committed");
        for w in txn.write_set.iter() {
            latest.insert(w.key.as_str(), end);
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::rwset::{Key, Value};

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn committed(
        id: u64,
        end: (u64, u32),
        reads: Vec<(&str, (u64, u32))>,
        writes: Vec<&str>,
    ) -> Transaction {
        let mut txn = Transaction::from_parts(
            id,
            end.0.saturating_sub(1),
            reads
                .into_iter()
                .map(|(key, v)| (k(key), SeqNo::new(v.0, v.1))),
            writes
                .into_iter()
                .map(|key| (k(key), Value::from_i64(id as i64))),
        );
        txn.end_ts = Some(SeqNo::new(end.0, end.1));
        txn
    }

    #[test]
    fn empty_and_singleton_histories_are_serializable() {
        assert!(is_serializable(&[]));
        let t = committed(1, (1, 1), vec![("A", (0, 1))], vec!["B"]);
        assert!(is_serializable(std::slice::from_ref(&t)));
        assert!(is_strongly_serializable(&[t]));
    }

    #[test]
    fn lost_update_style_cycle_is_rejected() {
        // Both transactions read A at the genesis version and overwrite it: each reads the
        // value the other overwrites → rw cycles with ww, not serializable.
        let t1 = committed(1, (1, 1), vec![("A", (0, 1))], vec!["A"]);
        let t2 = committed(2, (1, 2), vec![("A", (0, 1))], vec!["A"]);
        assert!(!is_serializable(&[t1, t2]));
    }

    #[test]
    fn write_skew_is_rejected() {
        // Classic write skew: t1 reads A writes B, t2 reads B writes A, both from the same
        // snapshot. rw edges both ways → cycle.
        let t1 = committed(1, (1, 1), vec![("A", (0, 1))], vec!["B"]);
        let t2 = committed(2, (1, 2), vec![("B", (0, 2))], vec!["A"]);
        assert!(!is_serializable(&[t1, t2]));
    }

    #[test]
    fn anti_rw_alone_is_serializable_but_not_strongly() {
        // t1 (committed first) reads A at the genesis version; t2 (committed second) wrote A
        // before t1's read was sequenced... i.e. t2 overwrites what t1 read, and t1 reads the
        // OLD version even though it commits AFTER t2. Serializable (t1 before t2 in the
        // serial order) but not strongly serializable.
        let t2 = committed(2, (1, 1), vec![], vec!["A"]);
        let t1 = committed(1, (1, 2), vec![("A", (0, 1))], vec!["B"]);
        let history = [t1, t2];
        assert!(is_serializable(&history));
        assert!(!is_strongly_serializable(&history));
        let order = serialization_order(&history).unwrap();
        let pos = |id: u64| order.iter().position(|t| t.0 == id).unwrap();
        assert!(
            pos(1) < pos(2),
            "reader must be serialized before the overwriting writer"
        );
    }

    #[test]
    fn wr_dependencies_are_respected() {
        // t1 installs A at (1,1); t2 reads that exact version: t1 must precede t2.
        let t1 = committed(1, (1, 1), vec![], vec!["A"]);
        let t2 = committed(2, (2, 1), vec![("A", (1, 1))], vec!["B"]);
        let order = serialization_order(&[t2.clone(), t1.clone()]).unwrap();
        let pos = |id: u64| order.iter().position(|t| t.0 == id).unwrap();
        assert!(pos(1) < pos(2));
        assert!(is_strongly_serializable(&[t1, t2]));
    }

    #[test]
    fn three_txn_unreorderable_cycle_is_rejected() {
        // Figure 7a shape: a cycle made only of rw conflicts across three transactions.
        // t1 reads X (old) which t2 overwrites; t2 reads Y (old) which t3 overwrites; t3 reads
        // Z (old) which t1 overwrites.
        let t1 = committed(1, (2, 1), vec![("X", (0, 1))], vec!["Z"]);
        let t2 = committed(2, (2, 2), vec![("Y", (0, 2))], vec!["X"]);
        let t3 = committed(3, (2, 3), vec![("Z", (0, 3))], vec!["Y"]);
        assert!(!is_serializable(&[t1, t2, t3]));
    }

    #[test]
    fn pending_transactions_are_ignored() {
        let committed_txn = committed(1, (1, 1), vec![], vec!["A"]);
        let mut pending = committed(2, (9, 9), vec![("A", (0, 1))], vec!["A"]);
        pending.end_ts = None;
        assert!(is_serializable(&[committed_txn, pending]));
    }

    #[test]
    fn table1_fabric_plus_plus_outcome_is_serializable() {
        // Fabric++ commits Txn4 and Txn5 from the paper's Table 1 (after reordering them ahead
        // of Txn3, which is aborted). Verify that outcome is indeed serializable.
        // State: B=(1,2), C=(2,1) after block 2. Txn4 reads C(2,1) writes B; Txn5 reads C(2,1)
        // writes A.
        let txn4 = committed(4, (3, 1), vec![("C", (2, 1))], vec!["B"]);
        let txn5 = committed(5, (3, 2), vec![("C", (2, 1))], vec!["A"]);
        assert!(is_serializable(&[txn4, txn5]));
    }
}
