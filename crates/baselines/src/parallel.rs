//! `ParallelChain`: a single-process EOV blockchain whose execute and validate phases run on
//! the concurrent stage executor of `fabricsharp_core::pipeline`.
//!
//! [`crate::chain::SimpleChain`] drives the execute-order-validate workflow synchronously on
//! one thread; `ParallelChain` keeps the same workflow and the same deterministic outcomes but
//! fans endorsement out over `N` sharded [`EndorserPool`] workers and runs validation/commit
//! on the dedicated [`CommitWorker`] thread. Determinism comes from the two ordered merge
//! points: endorsement results are collected *in submission order* (not completion order)
//! before they enter the concurrency control, and commit jobs are consumed strictly in block
//! order. For identical inputs, `ParallelChain` therefore produces block-for-block the same
//! ledger as `SimpleChain` — which the cross-facade determinism tests assert.

use crate::api::{ConcurrencyControl, SystemKind};
use crate::chain::BlockReport;
use eov_common::abort::AbortReason;
use eov_common::config::CcConfig;
use eov_common::rwset::{Key, Value};
use eov_common::txn::{CommitDecision, Transaction, TxnId, TxnStatus};
use eov_ledger::{Block, Ledger};
use eov_vstore::{
    into_shared_backend, SharedStore, SnapshotManager, StateRead, StateStore, StoreBackend,
};
use fabricsharp_core::endorser::SnapshotEndorser;
use fabricsharp_core::pipeline::{CommitWorker, EndorseJob, EndorseLogic, EndorserPool};
use fabricsharp_core::scheduler::{CommitScheduler, WaveStats};
use std::sync::{Arc, Mutex};

/// A single-node EOV blockchain whose endorsement and commit stages run on worker threads.
pub struct ParallelChain {
    kind: SystemKind,
    store: SharedStore,
    ledger: Ledger,
    cc: Box<dyn ConcurrencyControl>,
    endorsers: EndorserPool,
    committer: CommitWorker,
    /// The wave-execution commit scheduler, shared with the committer thread's block jobs
    /// (only ever locked by one job at a time — the committer is a single-lane stage).
    scheduler: Arc<Mutex<CommitScheduler>>,
    next_txn_id: u64,
    committed_history: Vec<Transaction>,
    early_aborted: Vec<(TxnId, AbortReason)>,
    snapshots: SnapshotManager,
    /// A block sealed by [`ParallelChain::begin_seal`] and not yet committed by
    /// [`ParallelChain::finish_seal`].
    sealing: Option<SealInFlight>,
}

/// State of a split seal: either the phased cut already produced the ordered block, or the
/// pipelined formation worker still owns it and `finish_cut` will claim it.
enum SealInFlight {
    Phased(Vec<Transaction>),
    Pipelined,
}

impl ParallelChain {
    /// Creates a chain running `kind` with default concurrency-control settings and
    /// `endorser_shards` endorsement workers (clamped to at least one).
    pub fn new(kind: SystemKind, endorser_shards: usize) -> Self {
        Self::with_cc_config(kind, CcConfig::default(), endorser_shards)
    }

    /// Creates a chain whose state store, indices and dependency graph are partitioned across
    /// `store_shards` key-space shards (`0` = the unsharded reference), on top of the
    /// `endorser_shards` worker threads. Ledger outcomes are bit-identical for every
    /// combination of the two shard knobs.
    pub fn with_store_shards(
        kind: SystemKind,
        endorser_shards: usize,
        store_shards: usize,
    ) -> Self {
        Self::with_cc_config(
            kind,
            CcConfig {
                store_shards,
                ..CcConfig::default()
            },
            endorser_shards,
        )
    }

    /// Creates a chain that stacks all three concurrency knobs: `endorser_shards` endorsement
    /// workers, `store_shards` key-space store/graph shards, and `formation_threads` graph
    /// workers fanning out the per-shard formation and arrival work. Ledger outcomes are
    /// bit-identical for every combination.
    pub fn with_sharded_formation(
        kind: SystemKind,
        endorser_shards: usize,
        store_shards: usize,
        formation_threads: usize,
    ) -> Self {
        Self::with_cc_config(
            kind,
            CcConfig {
                store_shards,
                formation_threads,
                ..CcConfig::default()
            },
            endorser_shards,
        )
    }

    /// Creates a chain with pipelined block formation toggled, on top of `endorser_shards`
    /// endorsement workers and `store_shards` key-space shards. With the knob on,
    /// [`ParallelChain::begin_seal`] hands the pending set to the formation worker and
    /// returns immediately, so endorsement and submission of the next generation of
    /// transactions overlap block formation.
    pub fn with_pipelined_formation(
        kind: SystemKind,
        endorser_shards: usize,
        store_shards: usize,
        enabled: bool,
    ) -> Self {
        Self::with_cc_config(
            kind,
            CcConfig {
                store_shards,
                pipelined_formation: enabled,
                ..CcConfig::default()
            },
            endorser_shards,
        )
    }

    /// Creates a chain committing delivered blocks through the parallel wave scheduler with
    /// `execution_threads` workers (`0` = the inline serial reference), on top of
    /// `endorser_shards` endorsement workers and `store_shards` key-space shards. Ledger
    /// outcomes are bit-identical at every `(endorser_shards, store_shards,
    /// execution_threads)` combination.
    pub fn with_execution_threads(
        kind: SystemKind,
        endorser_shards: usize,
        store_shards: usize,
        execution_threads: usize,
    ) -> Self {
        Self::with_cc_config(
            kind,
            CcConfig {
                store_shards,
                execution_threads,
                ..CcConfig::default()
            },
            endorser_shards,
        )
    }

    /// Creates a chain with an explicit concurrency-control configuration
    /// (`cc_config.store_shards` also selects the state-store backend;
    /// `cc_config.execution_threads` sizes the parallel commit scheduler).
    pub fn with_cc_config(kind: SystemKind, cc_config: CcConfig, endorser_shards: usize) -> Self {
        let store = into_shared_backend(StoreBackend::for_shards(cc_config.store_shards));
        let snapshots = SnapshotManager::new();
        let endorser = SnapshotEndorser::new(snapshots.clone());
        let scheduler = Arc::new(Mutex::new(CommitScheduler::new(
            cc_config.execution_threads,
        )));
        ParallelChain {
            scheduler,
            kind,
            endorsers: EndorserPool::spawn(endorser_shards, SharedStore::clone(&store), endorser),
            committer: CommitWorker::spawn(SharedStore::clone(&store)),
            store,
            ledger: Ledger::new(),
            cc: kind.build(cc_config),
            next_txn_id: 1,
            committed_history: Vec::new(),
            early_aborted: Vec::new(),
            snapshots,
            sealing: None,
        }
    }

    /// Which system this chain runs.
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// Number of endorser shards.
    pub fn endorser_shards(&self) -> usize {
        self.endorsers.shard_count()
    }

    /// Seeds the genesis state (block 0).
    pub fn seed(&mut self, entries: impl IntoIterator<Item = (Key, Value)>) {
        self.store.write().seed_genesis(entries);
        self.snapshots.register_block(0);
    }

    /// Execute + order for a whole batch: endorses every contract invocation concurrently on
    /// the sharded pool (all against the current latest snapshot), then submits the results to
    /// the concurrency control *in batch order* — the deterministic merge that makes the
    /// concurrent facade equivalent to driving [`crate::chain::SimpleChain`] sequentially.
    /// Returns each transaction's id and its early (endorsement/arrival) decision.
    pub fn submit_batch(
        &mut self,
        batch: impl IntoIterator<Item = EndorseLogic>,
    ) -> Vec<(TxnId, CommitDecision)> {
        let snapshot_block = self.store.read().last_block();
        let mut request_nos = Vec::new();
        for logic in batch {
            let request_no = self.next_txn_id;
            self.next_txn_id += 1;
            request_nos.push(request_no);
            self.endorsers.dispatch(EndorseJob {
                request_no,
                snapshot_block,
                logic,
            });
        }

        let mut decisions = Vec::with_capacity(request_nos.len());
        for request_no in request_nos {
            let txn = self.endorsers.collect(request_no);
            let id = txn.id;
            let decision = self.submit(txn);
            decisions.push((id, decision));
        }
        decisions
    }

    /// Order phase for an already-endorsed transaction (mirrors `SimpleChain::submit`).
    pub fn submit(&mut self, txn: Transaction) -> CommitDecision {
        let id = txn.id;
        let latest = self.store.read().last_block();
        let endorse = self.cc.on_endorsement(&txn, latest);
        if let CommitDecision::Reject(reason) = endorse {
            self.early_aborted.push((id, reason));
            return endorse;
        }
        let arrival = self.cc.on_arrival(txn);
        if let CommitDecision::Reject(reason) = arrival {
            self.early_aborted.push((id, reason));
        }
        arrival
    }

    /// Validate phase: cuts a block from everything pending, ships it to the committer thread
    /// (which validates if the system requires it and applies the committed writes under the
    /// store's write lock), and appends the block to the hash-chained ledger.
    pub fn seal_block(&mut self) -> BlockReport {
        self.begin_seal();
        self.finish_seal()
    }

    /// First half of a split seal: snapshots the pending set into a block. With pipelined
    /// formation on, the heavy reordering work is handed to the background formation worker
    /// and this returns immediately — endorsement and submission of the next generation of
    /// transactions then proceed against the last *committed* store state (formation has not
    /// committed anything yet), and arrivals that conflict with the in-formation block are
    /// transparently held until [`ParallelChain::finish_seal`] joins the worker. The resulting
    /// commit order is therefore intentionally not compared against a seal-then-submit
    /// schedule; the serializability oracle and reproducibility tests guard it instead.
    /// Returns the number of transactions sealed (`0` = nothing pending, no seal in flight).
    pub fn begin_seal(&mut self) -> usize {
        assert!(
            self.sealing.is_none(),
            "begin_seal called while a sealed block is still awaiting finish_seal"
        );
        if self.cc.pipelined_formation() {
            let sealed = self.cc.begin_cut();
            if sealed > 0 {
                self.sealing = Some(SealInFlight::Pipelined);
            }
            sealed
        } else {
            let ordered = self.cc.cut_block();
            let sealed = ordered.len();
            if sealed > 0 {
                self.sealing = Some(SealInFlight::Phased(ordered));
            }
            sealed
        }
    }

    /// Second half of a split seal: joins the formation worker if necessary, then validates,
    /// commits and appends the block exactly as [`ParallelChain::seal_block`] would. A no-op
    /// returning an empty report when [`ParallelChain::begin_seal`] sealed nothing.
    pub fn finish_seal(&mut self) -> BlockReport {
        let ordered = match self.sealing.take() {
            None => return BlockReport::default(),
            Some(SealInFlight::Phased(ordered)) => ordered,
            Some(SealInFlight::Pipelined) => self.cc.finish_cut().0,
        };
        let block_no = self.ledger.height() + 1;
        let needs_validation = self.cc.needs_peer_validation();
        let job_txns = Arc::new(ordered.clone());
        let scheduler = Arc::clone(&self.scheduler);
        self.committer.begin(
            block_no,
            Box::new(move |store| {
                scheduler
                    .lock()
                    .expect("commit scheduler poisoned")
                    .commit_block(store, block_no, &job_txns, needs_validation)
            }),
        );
        let outcome = self.committer.finish(block_no);

        let mut block = Block::build(block_no, self.ledger.tip_hash(), ordered);
        let mut report = BlockReport {
            block_number: Some(block_no),
            ..BlockReport::default()
        };
        let mut committed: Vec<(Transaction, TxnStatus)> = Vec::with_capacity(block.entries.len());
        for (entry, status) in block.entries.iter_mut().zip(outcome.statuses) {
            entry.status = status;
            match status {
                TxnStatus::Committed => {
                    report.committed.push(entry.txn.id);
                    self.committed_history.push(entry.txn.clone());
                }
                TxnStatus::Aborted(reason) => report.aborted.push((entry.txn.id, reason)),
                TxnStatus::Pending => unreachable!("validation assigns a final status"),
            }
            committed.push((entry.txn.clone(), status));
        }
        self.ledger
            .append(block)
            .expect("locally built blocks always chain correctly");
        self.snapshots.register_block(block_no);
        self.cc.on_block_committed(block_no, &committed);
        report
    }

    /// The latest committed value of `key`, if any.
    pub fn latest(&self, key: &Key) -> Option<Value> {
        self.store.read().latest_value(key).cloned()
    }

    /// The underlying hash-chained ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The concurrency control driving this chain (for stats inspection).
    pub fn cc(&self) -> &dyn ConcurrencyControl {
        self.cc.as_ref()
    }

    /// Every committed transaction so far, in commit order.
    pub fn committed_history(&self) -> &[Transaction] {
        &self.committed_history
    }

    /// Early aborts recorded at submission time (endorsement or arrival).
    pub fn early_aborted(&self) -> &[(TxnId, AbortReason)] {
        &self.early_aborted
    }

    /// Cumulative wave statistics of the parallel commit scheduler (all zero when
    /// `execution_threads == 0` — the inline reference schedules no waves).
    pub fn wave_stats(&self) -> WaveStats {
        self.scheduler
            .lock()
            .expect("commit scheduler poisoned")
            .stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabricsharp_core::serializability::is_serializable;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn transfer_logic(from: Key, to: Key, amount: i64) -> EndorseLogic {
        Box::new(move |ctx| {
            let f = ctx.read_balance(&from);
            let t = ctx.read_balance(&to);
            ctx.write(from.clone(), Value::from_i64(f - amount));
            ctx.write(to.clone(), Value::from_i64(t + amount));
        })
    }

    #[test]
    fn batch_transfer_commits_on_every_system_and_shard_count() {
        for kind in SystemKind::all() {
            for shards in [1usize, 3] {
                let mut chain = ParallelChain::new(kind, shards);
                chain.seed([
                    (k("alice"), Value::from_i64(100)),
                    (k("bob"), Value::from_i64(50)),
                ]);
                let decisions = chain.submit_batch([transfer_logic(k("alice"), k("bob"), 10)]);
                assert!(decisions[0].1.is_accept(), "{kind}/{shards}");
                let report = chain.seal_block();
                assert_eq!(report.committed.len(), 1, "{kind}/{shards}");
                assert_eq!(
                    chain.latest(&k("bob")).unwrap().as_i64(),
                    Some(60),
                    "{kind}/{shards}"
                );
                assert!(chain.ledger().verify_integrity().is_ok(), "{kind}/{shards}");
            }
        }
    }

    #[test]
    fn pipelined_seal_matches_the_phased_ledger_without_window_submissions() {
        // Driven through the blocking `seal_block` (begin + finish back to back, nothing
        // submitted during the window) the pipelined chain must produce the exact phased
        // ledger, across both store engines.
        for store_shards in [0usize, 2] {
            let mut chains: Vec<ParallelChain> = [false, true]
                .into_iter()
                .map(|pipelined| {
                    let mut chain = ParallelChain::with_pipelined_formation(
                        SystemKind::FabricSharp,
                        2,
                        store_shards,
                        pipelined,
                    );
                    chain.seed((0..6).map(|i| (k(&format!("acct{i}")), Value::from_i64(100))));
                    chain
                })
                .collect();
            for round in 0..5u64 {
                for chain in &mut chains {
                    let batch: Vec<EndorseLogic> = (0..4usize)
                        .map(|i| {
                            transfer_logic(
                                k(&format!("acct{i}")),
                                k(&format!("acct{}", (i + round as usize + 1) % 6)),
                                1,
                            )
                        })
                        .collect();
                    chain.submit_batch(batch);
                    chain.seal_block();
                }
            }
            let phased = &chains[0];
            let pipelined = &chains[1];
            assert_eq!(
                phased.ledger().tip_hash(),
                pipelined.ledger().tip_hash(),
                "S={store_shards}: pipelined seal_block must reproduce the phased ledger"
            );
            assert_eq!(phased.ledger().height(), pipelined.ledger().height());
        }
    }

    fn overlapped_run(store_shards: usize) -> ParallelChain {
        let mut chain =
            ParallelChain::with_pipelined_formation(SystemKind::FabricSharp, 2, store_shards, true);
        chain.seed((0..6).map(|i| (k(&format!("acct{i}")), Value::from_i64(100))));
        for round in 0..5u64 {
            let batch: Vec<EndorseLogic> = (0..4usize)
                .map(|i| {
                    transfer_logic(
                        k(&format!("acct{i}")),
                        k(&format!("acct{}", (i + round as usize + 1) % 6)),
                        1,
                    )
                })
                .collect();
            chain.submit_batch(batch);
            let sealed = chain.begin_seal();
            assert!(sealed > 0, "round {round} sealed nothing");
            // Endorse and submit the *next* generation while the sealed block is still in
            // formation — endorsement reads the last committed store state.
            let next: Vec<EndorseLogic> = (0..2usize)
                .map(|i| {
                    transfer_logic(
                        k(&format!("acct{}", 5 - i)),
                        k(&format!("acct{}", round as usize % 4)),
                        1,
                    )
                })
                .collect();
            chain.submit_batch(next);
            let report = chain.finish_seal();
            assert!(report.block_number.is_some(), "round {round}");
        }
        chain.seal_block();
        chain
    }

    #[test]
    fn overlapped_seal_stays_serializable_and_reproducible() {
        for store_shards in [0usize, 2] {
            let first = overlapped_run(store_shards);
            assert!(
                is_serializable(first.committed_history()),
                "S={store_shards}"
            );
            assert!(
                first.ledger().verify_integrity().is_ok(),
                "S={store_shards}"
            );
            assert!(first.ledger().committed_txn_count() > 0, "S={store_shards}");

            // The overlapped schedule itself must be deterministic run to run.
            let second = overlapped_run(store_shards);
            assert_eq!(
                first.ledger().tip_hash(),
                second.ledger().tip_hash(),
                "S={store_shards}: overlapped seal must be reproducible"
            );
        }
    }

    #[test]
    fn begin_seal_with_nothing_pending_leaves_no_seal_in_flight() {
        let mut chain =
            ParallelChain::with_pipelined_formation(SystemKind::FabricSharp, 1, 0, true);
        chain.seed([(k("alice"), Value::from_i64(100))]);
        assert_eq!(chain.begin_seal(), 0);
        let report = chain.finish_seal();
        assert_eq!(report.block_number, None);
        assert_eq!(chain.ledger().height(), 0);
    }

    #[test]
    fn fabricsharp_batches_stay_serializable_across_blocks() {
        let mut chain = ParallelChain::new(SystemKind::FabricSharp, 4);
        let keys: Vec<Key> = (0..6).map(|i| k(&format!("acct{i}"))).collect();
        chain.seed(keys.iter().map(|key| (key.clone(), Value::from_i64(100))));

        for round in 0..5u64 {
            let batch: Vec<EndorseLogic> = (0..4usize)
                .map(|i| {
                    let from = keys[i].clone();
                    let to = keys[(i + round as usize + 1) % keys.len()].clone();
                    transfer_logic(from, to, 1)
                })
                .collect();
            chain.submit_batch(batch);
            chain.seal_block();
        }
        assert!(is_serializable(chain.committed_history()));
        assert!(chain.ledger().verify_integrity().is_ok());
        assert!(chain.ledger().committed_txn_count() > 0);
    }
}
