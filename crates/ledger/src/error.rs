//! Typed errors for the durable ledger substrate.
//!
//! Everything that can go wrong reading or writing the on-disk chain of record is a
//! [`LedgerError`], never a panic: a restarted orderer must be able to *report* a corrupt
//! segment or checkpoint and fall back (older checkpoint, shorter replay, operator
//! intervention) instead of crash-looping. Chain-rule violations surface the existing
//! [`CommonError::ChainIntegrity`] machinery unchanged via [`LedgerError::Chain`].

use eov_common::error::CommonError;
use std::fmt;
use std::path::PathBuf;

/// Errors from the durable ledger: segment files, checkpoints, and the chain rules.
#[derive(Debug)]
pub enum LedgerError {
    /// A chain-rule violation (no-skipping, broken hash link, body/data-hash mismatch) or any
    /// other error from the in-memory reference machinery.
    Chain(CommonError),
    /// An I/O failure on a ledger file or directory.
    Io {
        /// Path of the file or directory the operation touched.
        path: PathBuf,
        /// The underlying I/O error, stringified.
        detail: String,
    },
    /// A record that fails CRC or structural decoding *before* the tail of the last segment —
    /// i.e. corruption that cannot be explained as a torn trailing write and is therefore
    /// never silently truncated.
    CorruptRecord {
        /// The segment file holding the bad record.
        segment: PathBuf,
        /// Byte offset of the record inside the segment file.
        offset: u64,
        /// What failed (CRC mismatch, impossible length, undecodable payload, bad header).
        detail: String,
    },
    /// A checkpoint file that fails its magic, CRC or structural decoding. Recovery treats
    /// individual corrupt checkpoints as skippable (it falls back to an older one); this error
    /// is returned only when a checkpoint is loaded *directly*.
    CorruptCheckpoint {
        /// The checkpoint file.
        path: PathBuf,
        /// What failed.
        detail: String,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Chain(e) => write!(f, "chain error: {e}"),
            LedgerError::Io { path, detail } => {
                write!(f, "ledger i/o error on {}: {detail}", path.display())
            }
            LedgerError::CorruptRecord {
                segment,
                offset,
                detail,
            } => write!(
                f,
                "corrupt record in {} at byte {offset}: {detail}",
                segment.display()
            ),
            LedgerError::CorruptCheckpoint { path, detail } => {
                write!(f, "corrupt checkpoint {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for LedgerError {}

impl From<CommonError> for LedgerError {
    fn from(e: CommonError) -> Self {
        LedgerError::Chain(e)
    }
}

impl LedgerError {
    /// Wraps an I/O error with the path it occurred on.
    pub(crate) fn io(path: impl Into<PathBuf>, e: std::io::Error) -> Self {
        LedgerError::Io {
            path: path.into(),
            detail: e.to_string(),
        }
    }
}
