//! Key-space sharding: the partitioner that assigns every state key to a shard.
//!
//! The paper keeps one global multi-version store and one global dependency graph, which caps
//! throughput at a single commit/formation path. The sharding layer partitions the key space
//! across `S` independent store and graph shards; this module provides the one component every
//! layer must agree on — the key → shard assignment. Determinism is a replication requirement
//! (Section 3.5 extended to shards): every orderer replica must route a key to the same shard,
//! so the hash partitioner uses a fixed FNV-1a, never `std`'s randomized `DefaultHasher`.

use crate::rwset::Key;
use serde::{Deserialize, Serialize};

/// How keys are mapped onto shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partitioning {
    /// FNV-1a hash of the key bytes, modulo the shard count. Spreads any key population
    /// uniformly; the default.
    Hash,
    /// Lexicographic range partitioning: shard `i` owns the keys whose first byte falls into
    /// the `i`-th of `S` equal byte ranges. Useful when key prefixes encode locality (e.g. an
    /// account-id prefix) and a bench wants contiguous shards.
    Range,
}

/// Assigns every key to one of `S` shards, deterministically across replicas.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardRouter {
    shards: usize,
    partitioning: Partitioning,
}

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string: stable across platforms, processes and replicas.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl ShardRouter {
    /// A hash router over `shards` shards (clamped to at least 1).
    pub fn hash(shards: usize) -> Self {
        ShardRouter {
            shards: shards.max(1),
            partitioning: Partitioning::Hash,
        }
    }

    /// A range router over `shards` shards (clamped to at least 1).
    pub fn range(shards: usize) -> Self {
        ShardRouter {
            shards: shards.max(1),
            partitioning: Partitioning::Range,
        }
    }

    /// The trivial single-shard router (everything maps to shard 0).
    pub fn unsharded() -> Self {
        Self::hash(1)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The partitioning scheme in use.
    pub fn partitioning(&self) -> Partitioning {
        self.partitioning
    }

    /// The shard that owns `key`. Always in `0..shard_count()`.
    pub fn shard_of(&self, key: &Key) -> usize {
        if self.shards == 1 {
            return 0;
        }
        match self.partitioning {
            Partitioning::Hash => (fnv1a(key.as_str().as_bytes()) % self.shards as u64) as usize,
            Partitioning::Range => {
                let first = key.as_str().as_bytes().first().copied().unwrap_or(0) as usize;
                (first * self.shards / 256).min(self.shards - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_routing_is_deterministic_and_in_range() {
        let router = ShardRouter::hash(4);
        assert_eq!(router.shard_count(), 4);
        for i in 0..500 {
            let key = Key::new(format!("acct:{i}"));
            let shard = router.shard_of(&key);
            assert!(shard < 4);
            assert_eq!(shard, router.shard_of(&key), "routing must be stable");
        }
    }

    #[test]
    fn hash_routing_spreads_keys_across_all_shards() {
        let router = ShardRouter::hash(4);
        let mut counts = [0usize; 4];
        for i in 0..1_000 {
            counts[router.shard_of(&Key::new(format!("checking:{i}")))] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!(*count > 100, "shard {shard} only got {count} of 1000 keys");
        }
    }

    #[test]
    fn range_routing_is_monotone_in_the_first_byte() {
        let router = ShardRouter::range(2);
        assert_eq!(router.partitioning(), Partitioning::Range);
        // ASCII letters < 0x80 land in shard 0; bytes >= 0x80 in shard 1.
        assert_eq!(router.shard_of(&Key::new("alice")), 0);
        let hi = Key::new("é"); // first UTF-8 byte 0xC3 >= 0x80
        assert_eq!(router.shard_of(&hi), 1);
    }

    #[test]
    fn single_shard_router_maps_everything_to_zero() {
        let router = ShardRouter::unsharded();
        assert_eq!(router.shard_count(), 1);
        assert_eq!(router.shard_of(&Key::new("anything")), 0);
        assert_eq!(ShardRouter::hash(0).shard_count(), 1, "clamped to 1");
    }

    #[test]
    fn fnv1a_matches_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
