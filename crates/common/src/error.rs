//! Error types shared across the workspace.
//!
//! Errors are hand-rolled enums (no `thiserror`) to stay within the approved dependency list.

use std::fmt;

/// Result alias used by the substrate crates.
pub type Result<T> = std::result::Result<T, CommonError>;

/// Errors that can arise in the substrate layers (state store, ledger, consensus).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommonError {
    /// A requested key does not exist in the state database.
    KeyNotFound(String),
    /// A requested block number does not exist in the ledger or snapshot manager.
    BlockNotFound(u64),
    /// A snapshot that has already been pruned was requested.
    SnapshotPruned(u64),
    /// The hash chain failed an integrity check at the given block.
    ChainIntegrity { block: u64, detail: String },
    /// A transaction was submitted twice.
    DuplicateTransaction(u64),
    /// The consensus log rejected an operation (e.g. reading past the end).
    Consensus(String),
    /// A configuration value is out of its valid range.
    InvalidConfig(String),
    /// Internal invariant violation; indicates a bug rather than a user error.
    Internal(String),
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::KeyNotFound(k) => write!(f, "key not found: {k}"),
            CommonError::BlockNotFound(b) => write!(f, "block not found: {b}"),
            CommonError::SnapshotPruned(b) => write!(f, "snapshot for block {b} has been pruned"),
            CommonError::ChainIntegrity { block, detail } => {
                write!(
                    f,
                    "hash chain integrity violation at block {block}: {detail}"
                )
            }
            CommonError::DuplicateTransaction(id) => write!(f, "duplicate transaction Txn{id}"),
            CommonError::Consensus(msg) => write!(f, "consensus error: {msg}"),
            CommonError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CommonError::Internal(msg) => write!(f, "internal invariant violation: {msg}"),
        }
    }
}

impl std::error::Error for CommonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_the_offending_entity() {
        assert!(CommonError::KeyNotFound("acct:1".into())
            .to_string()
            .contains("acct:1"));
        assert!(CommonError::BlockNotFound(7).to_string().contains('7'));
        assert!(CommonError::SnapshotPruned(3).to_string().contains('3'));
        let e = CommonError::ChainIntegrity {
            block: 9,
            detail: "hash mismatch".into(),
        };
        assert!(e.to_string().contains("block 9"));
    }

    #[test]
    fn error_trait_object_compatible() {
        let e: Box<dyn std::error::Error> = Box::new(CommonError::Consensus("closed".into()));
        assert!(e.to_string().contains("closed"));
    }
}
