//! End-to-end integration tests over the synchronous `SimpleChain` pipeline: every system is
//! driven through execute → order → validate on contended workloads, and the committed
//! histories are checked against the independent serializability oracle.

use fabricsharp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a chain seeded with `n` accounts of 1,000 coins each.
fn seeded_chain(kind: SystemKind, n: usize) -> (SimpleChain, Vec<Key>) {
    let mut chain = SimpleChain::new(kind);
    let keys: Vec<Key> = (0..n).map(|i| Key::new(format!("acct:{i}"))).collect();
    chain.seed(keys.iter().map(|k| (k.clone(), Value::from_i64(1_000))));
    (chain, keys)
}

/// Runs `rounds` blocks of `per_block` random transfers over a small, hot account set.
fn run_contended_workload(
    kind: SystemKind,
    seed: u64,
    rounds: usize,
    per_block: usize,
) -> SimpleChain {
    let (mut chain, keys) = seeded_chain(kind, 8);
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..rounds {
        for _ in 0..per_block {
            let from = keys[rng.gen_range(0..keys.len())].clone();
            let to = keys[rng.gen_range(0..keys.len())].clone();
            let amount = rng.gen_range(1..10i64);
            let txn = chain.execute(|ctx| {
                let f = ctx.read_balance(&from);
                let t = ctx.read_balance(&to);
                ctx.write(from.clone(), Value::from_i64(f - amount));
                if from != to {
                    ctx.write(to.clone(), Value::from_i64(t + amount));
                }
            });
            let _ = chain.submit(txn);
        }
        chain.seal_block();
    }
    chain
}

#[test]
fn every_system_produces_a_serializable_history_under_contention() {
    for kind in SystemKind::all() {
        for seed in [1u64, 7, 42] {
            let chain = run_contended_workload(kind, seed, 6, 10);
            assert!(
                is_serializable(chain.committed_history()),
                "{kind} produced a non-serializable history (seed {seed})"
            );
            assert!(
                chain.ledger().verify_integrity().is_ok(),
                "{kind}: broken ledger"
            );
        }
    }
}

#[test]
fn fabric_and_fabricpp_histories_are_strongly_serializable() {
    // Theorem 1: systems that forbid anti-rw commit strongly serializable schedules.
    for kind in [
        SystemKind::Fabric,
        SystemKind::FabricPlusPlus,
        SystemKind::FoccL,
    ] {
        let chain = run_contended_workload(kind, 3, 5, 10);
        assert!(
            is_strongly_serializable(chain.committed_history()),
            "{kind}: validation-gated systems must be strongly serializable"
        );
    }
}

#[test]
fn fabricsharp_commits_at_least_as_much_as_fabric_under_contention() {
    for seed in [11u64, 23, 59] {
        let fabric = run_contended_workload(SystemKind::Fabric, seed, 8, 12);
        let sharp = run_contended_workload(SystemKind::FabricSharp, seed, 8, 12);
        let fabric_commits = fabric.ledger().committed_txn_count();
        let sharp_commits = sharp.ledger().committed_txn_count();
        assert!(
            sharp_commits >= fabric_commits,
            "seed {seed}: Fabric# committed {sharp_commits} < Fabric {fabric_commits}"
        );
    }
}

#[test]
fn balances_are_conserved_when_every_transfer_is_balanced() {
    // Transfers move money between accounts without creating or destroying it, so the total
    // balance is invariant no matter which transactions commit — for every system.
    for kind in SystemKind::all() {
        let (mut chain, keys) = seeded_chain(kind, 6);
        let total_before: i64 = keys
            .iter()
            .map(|k| chain.latest(k).unwrap().as_i64().unwrap())
            .sum();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..4 {
            for _ in 0..8 {
                let from = keys[rng.gen_range(0..keys.len())].clone();
                let to = keys[rng.gen_range(0..keys.len())].clone();
                if from == to {
                    continue;
                }
                let txn = chain.execute(|ctx| {
                    let f = ctx.read_balance(&from);
                    let t = ctx.read_balance(&to);
                    ctx.write(from.clone(), Value::from_i64(f - 5));
                    ctx.write(to.clone(), Value::from_i64(t + 5));
                });
                let _ = chain.submit(txn);
            }
            chain.seal_block();
        }
        let total_after: i64 = keys
            .iter()
            .map(|k| chain.latest(k).unwrap().as_i64().unwrap())
            .sum();
        assert_eq!(
            total_before, total_after,
            "{kind}: money was created or destroyed"
        );
    }
}

#[test]
fn raw_count_exceeds_committed_count_only_for_validating_systems() {
    // FabricSharp never places doomed transactions into blocks, so its raw ledger count equals
    // its committed count; Fabric's raw count includes validation aborts.
    let fabric = run_contended_workload(SystemKind::Fabric, 5, 6, 12);
    let sharp = run_contended_workload(SystemKind::FabricSharp, 5, 6, 12);
    assert!(fabric.ledger().raw_txn_count() >= fabric.ledger().committed_txn_count());
    assert_eq!(
        sharp.ledger().raw_txn_count(),
        sharp.ledger().committed_txn_count()
    );
}

#[test]
fn read_only_transactions_commit_under_every_system() {
    for kind in SystemKind::all() {
        let (mut chain, keys) = seeded_chain(kind, 4);
        for key in &keys {
            let txn = chain.execute(|ctx| {
                let _ = ctx.read_balance(key);
            });
            assert!(
                chain.submit(txn).is_accept(),
                "{kind}: read-only submission rejected"
            );
        }
        let report = chain.seal_block();
        assert_eq!(
            report.committed.len(),
            keys.len(),
            "{kind}: read-only txns must commit"
        );
    }
}
