//! Figure 1 — the motivation experiment: vanilla Fabric's raw throughput is flat (≈677 tps on
//! the paper's testbed) while its effective throughput collapses as the update workload gets
//! more skewed.
//!
//! ```text
//! cargo run --release -p eov-bench --bin fig01_motivation
//! ```

use eov_baselines::api::SystemKind;
use eov_bench::{banner, run_one};
use eov_sim::SimulationConfig;
use eov_workload::generator::WorkloadKind;

fn main() {
    banner(
        "Figure 1",
        "Fabric raw vs effective throughput: no-op and single-modification txns under Zipfian skew",
    );
    println!(
        "{:<18} {:>10} {:>12} {:>10} {:>12}",
        "workload", "raw tps", "effective", "aborted", "abort rate"
    );

    // No-op transactions: nothing conflicts, effective == raw.
    let noop = run_one(SimulationConfig::new(
        SystemKind::Fabric,
        WorkloadKind::NoOp,
    ));
    println!(
        "{:<18} {:>10.0} {:>12.0} {:>10} {:>11.1}%",
        "No-op",
        noop.raw_tps(),
        noop.effective_tps(),
        noop.aborted(),
        noop.abort_rate() * 100.0
    );

    // Single-modification transactions with increasing Zipfian skew (paper: θ = 0.2 .. 1.2).
    for theta in [0.2, 0.4, 0.6, 0.8, 1.0, 1.2] {
        let config = SimulationConfig::new(SystemKind::Fabric, WorkloadKind::KvUpdate { theta });
        let report = run_one(config);
        println!(
            "{:<18} {:>10.0} {:>12.0} {:>10} {:>11.1}%",
            format!("update, θ={theta}"),
            report.raw_tps(),
            report.effective_tps(),
            report.aborted(),
            report.abort_rate() * 100.0
        );
    }
    println!(
        "\nPaper's shape: raw throughput stays ≈677 tps regardless of skew, while the effective\n\
         throughput falls as an increasing fraction of in-ledger transactions is aborted for\n\
         serializability."
    );
}
