//! Repo tooling. Subcommands:
//!
//! * `lint-determinism` — static lint over the ledger-order-affecting modules (see
//!   [`SCAN_ROOTS`]: the dependency graph, the orderer's arrival/formation paths, the shard
//!   coordinator, the wave-commit scheduler, the simulator's event loop / pipeline
//!   stages, and — since the ledger is persisted byte-for-byte — the durable ledger codec,
//!   checkpoint writer and the versioned store they serialise). Fails on iteration over
//!   `HashMap`/`HashSet` bindings (`.iter()`, `.keys()`, `.values()`, `.drain()`,
//!   `for … in &map`, …) outside an explicit allowlist. Hash iteration order is seeded per
//!   process, so any such loop whose effects reach the commit order reintroduces exactly the
//!   bug class behind Fabric++'s hash-seeded cycle-victim nondeterminism (fixed in PR 2).
//!   Sites that are genuinely order-insensitive carry an inline
//!   `lint-determinism: allow (reason)` comment on the same or preceding line; everything
//!   else must iterate a sorted or insertion-ordered structure instead.
//!
//! The lint is a two-pass text heuristic, deliberately conservative: pass 1 collects every
//! binding or field declared with a `HashMap`/`HashSet` type (or initialised from one) in a
//! file; pass 2 flags iteration-shaped uses of those names in the same file's non-test code
//! (scanning stops at the first `#[cfg(test)]` — test-only iteration cannot affect ledger
//! order; fields are private in this workspace, so hash collections are always iterated in
//! their declaring file). False positives are possible (name collisions within a file) and
//! are handled with the same allowlist comment.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories whose modules can affect the ledger's commit order. Adding a crate here is
/// the whole change: the scan, the report and the doc comment above all key off this list.
const SCAN_ROOTS: &[&str] = &[
    "crates/depgraph/src",
    "crates/core/src",
    "crates/sim/src",
    "crates/ledger/src",
    "crates/vstore/src",
];

/// The allowlist marker: `lint-determinism: allow (reason)` on the flagged line or the line
/// directly above it.
const ALLOW_MARKER: &str = "lint-determinism: allow";

/// Iteration-shaped method calls on a hash collection.
const ITER_METHODS: &[&str] = &[
    ".iter()",
    ".iter_mut()",
    ".into_iter()",
    ".keys()",
    ".values()",
    ".values_mut()",
    ".drain()",
    ".retain(",
];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint-determinism") => lint_determinism(),
        other => {
            eprintln!(
                "usage: cargo run -p xtask -- lint-determinism\n(unknown subcommand {other:?})"
            );
            ExitCode::FAILURE
        }
    }
}

fn lint_determinism() -> ExitCode {
    let root = repo_root();
    let mut files: Vec<PathBuf> = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files);
    }
    files.sort();

    let sources: Vec<(PathBuf, String)> = files
        .into_iter()
        .map(|path| {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            (path, text)
        })
        .collect();

    let mut tracked_total = 0usize;
    let mut violations: Vec<String> = Vec::new();
    for (path, text) in &sources {
        // Pass 1 (per file): every binding/field name declared as (or initialised from) a
        // hash collection. Per-file scoping avoids cross-file name collisions; hash fields
        // are private in this workspace, so they are only iterated where declared.
        let mut tracked: BTreeSet<String> = BTreeSet::new();
        for line in non_test_lines(text) {
            collect_hash_bindings(line, &mut tracked);
        }
        tracked_total += tracked.len();

        // Pass 2: flag iteration-shaped uses of tracked names outside the allowlist.
        let lines: Vec<&str> = non_test_lines(text).collect();
        for (i, line) in lines.iter().enumerate() {
            let Some(what) = iteration_violation(line, &tracked) else {
                continue;
            };
            let allowed =
                line.contains(ALLOW_MARKER) || (i > 0 && lines[i - 1].contains(ALLOW_MARKER));
            if !allowed {
                let rel = path.strip_prefix(&root).unwrap_or(path);
                violations.push(format!(
                    "{}:{}: {what}: {}",
                    rel.display(),
                    i + 1,
                    line.trim()
                ));
            }
        }
    }

    if violations.is_empty() {
        println!(
            "lint-determinism: OK ({} tracked hash bindings, {} files scanned)",
            tracked_total,
            sources.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("lint-determinism: hash-order iteration in ledger-order-affecting code:\n");
        for v in &violations {
            eprintln!("  {v}");
        }
        eprintln!(
            "\n{} violation(s). Iterate a sorted/insertion-ordered structure instead, or mark\n\
             genuinely order-insensitive sites with `// {ALLOW_MARKER} (reason)`.",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Walks up from the current directory to the workspace root (identified by `Cargo.toml` +
/// `crates/`), so the lint runs from any subdirectory.
fn repo_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("current dir");
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return dir;
        }
        if !dir.pop() {
            panic!("workspace root (Cargo.toml + crates/) not found above current dir");
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("scan root {} unreadable: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
}

/// Lines of a file up to (excluding) the first `#[cfg(test)]` — test modules sit at the end
/// of every file in this repo, and test-only iteration cannot affect ledger order.
fn non_test_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines().take_while(|l| !l.contains("#[cfg(test)]"))
}

/// Pass-1 extraction: records `name` for declarations like `let mut name: HashMap<…>`,
/// `let name = HashSet::new()`, and struct fields / params `name: &mut HashMap<…>`.
fn collect_hash_bindings(line: &str, tracked: &mut BTreeSet<String>) {
    for marker in ["HashMap<", "HashSet<", "HashMap::", "HashSet::"] {
        let Some(pos) = line.find(marker) else {
            continue;
        };
        let before = &line[..pos];
        // `let [mut] name …` binding on the same line.
        if let Some(let_pos) = before.rfind("let ") {
            let after_let = before[let_pos + 4..].trim_start();
            let after_mut = after_let.strip_prefix("mut ").unwrap_or(after_let);
            if let Some(name) = leading_ident(after_mut) {
                tracked.insert(name.to_string());
                continue;
            }
        }
        // `name: [&][mut] Hash…` — field, param or annotated binding: the identifier
        // directly before the last `:` preceding the marker.
        if let Some(colon) = before.rfind(':') {
            if let Some(name) = trailing_ident(before[..colon].trim_end()) {
                tracked.insert(name.to_string());
            }
        }
    }
}

/// Pass-2 check: returns a description when `line` iterates a tracked hash binding.
fn iteration_violation(line: &str, tracked: &BTreeSet<String>) -> Option<String> {
    for name in tracked {
        // `name.iter()` / `self.name.keys()` / `map.retain(…)` …
        let mut search = 0;
        while let Some(found) = line[search..].find(name.as_str()) {
            let start = search + found;
            let end = start + name.len();
            search = end;
            if !boundary_before(line, start) {
                continue;
            }
            let rest = &line[end..];
            if let Some(method) = ITER_METHODS.iter().find(|m| rest.starts_with(**m)) {
                return Some(format!("`{name}{method}` iterates hash order"));
            }
        }
        // `for … in [&][mut] [self.]name` (with optional trailing `{`).
        if let Some(in_pos) = find_for_in(line) {
            let mut tail = line[in_pos..].trim_start();
            tail = tail.strip_prefix('&').unwrap_or(tail);
            tail = tail.strip_prefix("mut ").unwrap_or(tail).trim_start();
            tail = tail.strip_prefix("self.").unwrap_or(tail);
            if let Some(ident) = leading_ident(tail) {
                if ident == name {
                    let after = &tail[ident.len()..];
                    if after.trim_start().is_empty() || after.trim_start().starts_with('{') {
                        return Some(format!("`for … in {name}` iterates hash order"));
                    }
                }
            }
        }
    }
    None
}

/// Byte offset just after `" in "` of a `for … in …` loop header, if the line has one.
fn find_for_in(line: &str) -> Option<usize> {
    let for_pos = line.find("for ")?;
    let in_pos = line[for_pos..].find(" in ")?;
    Some(for_pos + in_pos + 4)
}

/// Whether `line[pos]` starts at an identifier boundary (preceded by a non-ident,
/// non-`.`/`:` character — rejects `foo.name.iter()` matching plain `name` is fine, but
/// rejects `other_name` matching `name`).
fn boundary_before(line: &str, pos: usize) -> bool {
    match line[..pos].chars().next_back() {
        None => true,
        Some(c) => !(c.is_alphanumeric() || c == '_'),
    }
}

/// The identifier at the start of `s`, if any.
fn leading_ident(s: &str) -> Option<&str> {
    let end = s
        .char_indices()
        .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    (end > 0 && !s.as_bytes()[0].is_ascii_digit()).then(|| &s[..end])
}

/// The identifier at the end of `s`, if any.
fn trailing_ident(s: &str) -> Option<&str> {
    let start = s
        .char_indices()
        .rev()
        .find(|(_, c)| !(c.is_alphanumeric() || *c == '_'))
        .map(|(i, c)| i + c.len_utf8())
        .unwrap_or(0);
    (start < s.len() && !s.as_bytes()[start].is_ascii_digit()).then(|| &s[start..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracked_from(lines: &[&str]) -> BTreeSet<String> {
        let mut t = BTreeSet::new();
        for l in lines {
            collect_hash_bindings(l, &mut t);
        }
        t
    }

    #[test]
    fn collects_lets_fields_and_params() {
        let t = tracked_from(&[
            "let mut removed: HashSet<u64> = HashSet::new();",
            "let edges = HashMap::new();",
            "    pending_txns: HashMap<u64, Transaction>,",
            "fn topo(ids: &[TxnId], graph: &HashMap<TxnId, HashSet<TxnId>>) {",
        ]);
        for name in ["removed", "edges", "pending_txns", "graph"] {
            assert!(t.contains(name), "missing {name}: {t:?}");
        }
    }

    #[test]
    fn flags_iteration_shapes_and_respects_boundaries() {
        let t = tracked_from(&["let mut map: HashMap<u64, u64> = HashMap::new();"]);
        assert!(iteration_violation("for v in map.values() {", &t).is_some());
        assert!(iteration_violation("self.map.keys().count();", &t).is_some());
        assert!(iteration_violation("for (k, v) in &map {", &t).is_some());
        assert!(iteration_violation("for id in &mut self.map {", &t).is_some());
        // Word boundaries: `bitmap` is not `map`; `map.len()` is not iteration.
        assert!(iteration_violation("bitmap.iter().sum()", &t).is_none());
        assert!(iteration_violation("let n = map.len();", &t).is_none());
        // `for x in map_order` (different ident) is clean.
        assert!(iteration_violation("for x in &map_order {", &t).is_none());
    }

    #[test]
    fn test_modules_are_excluded() {
        let text = "fn a() {}\n#[cfg(test)]\nmod tests { for v in map.values() {} }\n";
        assert_eq!(non_test_lines(text).count(), 1);
    }
}
