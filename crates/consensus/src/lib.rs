//! # eov-consensus
//!
//! The ordering substrate of the EOV pipeline (the paper's Kafka + orderer layer):
//!
//! * [`log`] — a totally-ordered, replicated in-process log with multi-producer submission and
//!   independent per-orderer read cursors (the Kafka substitution documented in `DESIGN.md`).
//! * [`orderer`] — the replicated block-formation state machine of Figure 2b: enqueue
//!   transactions from consensus, cut a block on size or timeout.
//! * [`adversary`] — the Section 3.5 security model: leader policies (honest / front-running)
//!   and the hash-commitment mitigation that hides transaction contents until the order is
//!   fixed.

#![forbid(unsafe_code)]

pub mod adversary;
pub mod log;
pub mod orderer;
pub mod replica;

pub use adversary::{
    audit_fork, ClientSubmission, EquivocatingLeader, ForkVerdict, FrontRunningLeader,
    HonestLeader, LeaderPolicy,
};
pub use log::{ConsensusLog, LogCursor, LogProducer, Submission};
pub use orderer::{BlockCutter, CutBatch, CutReason};
pub use replica::{OrdererReplica, ReplicaSet};
