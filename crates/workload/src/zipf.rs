//! Zipfian index sampler.
//!
//! The Figure 1 motivation experiment and the Figure 15 mixed workload control access skew
//! with a Zipfian coefficient θ: item `i` (1-based rank) is drawn with probability
//! proportional to `1 / i^θ`. θ = 0 degenerates to the uniform distribution; the paper sweeps
//! θ up to 1.2, so the sampler must handle θ ≥ 1 as well — which rules out the closed-form
//! YCSB generator (undefined at θ = 1). Instead the sampler precomputes the cumulative weight
//! table once (10,000 accounts → 80 KB) and draws by binary search, giving exact probabilities
//! for any θ ≥ 0 at O(log n) per sample.

use rand::Rng;

/// A Zipfian sampler over the index range `0..n`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    cumulative: Vec<f64>,
    theta: f64,
}

impl Zipfian {
    /// Creates a sampler over `n` items with skew `theta`. Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipfian requires at least one item");
        assert!(theta >= 0.0, "Zipfian skew must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for i in 1..=n {
            total += 1.0 / (i as f64).powf(theta);
            cumulative.push(total);
        }
        // Normalise so the last entry is exactly 1.0 and floating-point drift cannot push a
        // sample past the end.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Zipfian { cumulative, theta }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the range is empty (never true — construction requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The skew coefficient.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws one index in `0..n`: index 0 is the most popular item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point returns the count of entries < u, i.e. the first index whose
        // cumulative weight reaches u.
        self.cumulative.partition_point(|&c| c < u)
    }

    /// The probability mass assigned to index `i`.
    pub fn probability(&self, i: usize) -> f64 {
        if i >= self.cumulative.len() {
            return 0.0;
        }
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipfian::new(4, 0.0);
        for i in 0..4 {
            assert!((z.probability(i) - 0.25).abs() < 1e-12);
        }
        assert_eq!(z.len(), 4);
        assert!(!z.is_empty());
    }

    #[test]
    fn samples_stay_in_range_and_cover_popular_items() {
        let z = Zipfian::new(100, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            let i = z.sample(&mut rng);
            assert!(i < 100);
            counts[i] += 1;
        }
        // Rank 0 must be sampled far more often than rank 99 under heavy skew.
        assert!(counts[0] > 10 * counts[99].max(1));
    }

    #[test]
    fn higher_theta_concentrates_more_mass_on_the_head() {
        let mild = Zipfian::new(1000, 0.4);
        let heavy = Zipfian::new(1000, 1.2);
        let head_mass = |z: &Zipfian| (0..10).map(|i| z.probability(i)).sum::<f64>();
        assert!(head_mass(&heavy) > head_mass(&mild));
        assert!(heavy.theta() > mild.theta());
    }

    #[test]
    fn probabilities_sum_to_one() {
        for theta in [0.0, 0.5, 1.0, 1.2] {
            let z = Zipfian::new(321, theta);
            let total: f64 = (0..321).map(|i| z.probability(i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "theta={theta}: total={total}");
            assert_eq!(z.probability(321), 0.0);
        }
    }

    #[test]
    fn single_item_always_returns_zero() {
        let z = Zipfian::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipfian::new(0, 1.0);
    }

    /// Audit regression: the empirical CDF must track the closed-form normalised harmonic
    /// CDF `H_{i,θ} / H_{n,θ}` at every rank, for a uniform, the YCSB default and a θ > 1
    /// skew (the paper sweeps up to 1.2). A Kolmogorov–Smirnov-style max deviation well
    /// above the ~0.007 expected at this sample size would expose sampler bias.
    #[test]
    fn empirical_cdf_matches_closed_form_at_three_thetas() {
        for theta in [0.0, 0.99, 1.2] {
            let n = 50usize;
            let draws = 40_000usize;
            let z = Zipfian::new(n, theta);
            let mut rng = StdRng::seed_from_u64(123);
            let mut counts = vec![0usize; n];
            for _ in 0..draws {
                counts[z.sample(&mut rng)] += 1;
            }
            let weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
            let total: f64 = weights.iter().sum();
            let (mut cdf_closed, mut cdf_empirical, mut max_deviation) = (0.0f64, 0.0f64, 0.0f64);
            for i in 0..n {
                cdf_closed += weights[i] / total;
                cdf_empirical += counts[i] as f64 / draws as f64;
                max_deviation = max_deviation.max((cdf_closed - cdf_empirical).abs());
            }
            assert!(
                max_deviation < 0.015,
                "theta={theta}: empirical CDF deviates from closed form by {max_deviation}"
            );
        }
    }

    /// Audit regression: the degenerate corners of the parameter space are exact — a single
    /// item is a point mass at any θ, θ = 0 is exactly uniform, and θ ≥ 1 keeps the
    /// closed-form head ratio `p(0)/p(1) = 2^θ`.
    #[test]
    fn degenerate_parameters_are_exact() {
        for theta in [0.0, 1.0, 3.0] {
            let z = Zipfian::new(1, theta);
            assert_eq!(z.probability(0), 1.0, "theta={theta}");
            assert_eq!(z.len(), 1);
        }
        let uniform = Zipfian::new(1_000, 0.0);
        for i in [0, 499, 999] {
            assert!((uniform.probability(i) - 1e-3).abs() < 1e-12);
        }
        for theta in [1.0, 1.2] {
            let z = Zipfian::new(10, theta);
            let ratio = z.probability(0) / z.probability(1);
            assert!(
                (ratio - 2f64.powf(theta)).abs() < 1e-9,
                "theta={theta}: head ratio {ratio}"
            );
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Samples are always in range and the empirical head frequency is monotone in θ.
        #[test]
        fn samples_in_range(n in 1usize..500, theta in 0.0f64..1.5, seed in any::<u64>()) {
            let z = Zipfian::new(n, theta);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..200 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }

        /// Probability masses are non-increasing with rank (Zipf's defining property).
        #[test]
        fn probabilities_are_monotone(n in 2usize..200, theta in 0.0f64..1.5) {
            let z = Zipfian::new(n, theta);
            for i in 1..n {
                prop_assert!(z.probability(i - 1) + 1e-12 >= z.probability(i));
            }
        }
    }
}
