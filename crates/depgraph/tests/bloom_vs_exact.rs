//! Property tests pitting the bloom-filter reachability representation against the exact
//! `HashSet` shadow enabled by `CcConfig::track_exact_reachability`.
//!
//! The contract under test (Section 4.4 of the paper): the bloom filter is a conservative
//! over-approximation of true reachability. Cycle verdicts derived from it may therefore
//! differ from the exact answer only in one direction — a bloom *false positive* turns a
//! genuinely acyclic insertion into a preventive abort — and never report `Acyclic` for a
//! real cycle (a false negative would let a non-serializable schedule through).

use eov_common::config::CcConfig;
use eov_common::txn::TxnId;
use eov_common::version::SeqNo;
use eov_depgraph::graph::{CycleCheck, DependencyGraph, PendingTxnSpec};
use proptest::prelude::*;
use proptest::sample::Index;

fn spec(id: u64) -> PendingTxnSpec {
    PendingTxnSpec {
        id: TxnId(id),
        start_ts: SeqNo::snapshot_after(0),
        read_keys: vec![],
        write_keys: vec![],
    }
}

/// One randomly generated insertion: which existing nodes become predecessors / successors.
type InsertOp = (Vec<Index>, Vec<Index>);

fn insert_ops() -> impl Strategy<Value = Vec<InsertOp>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<Index>(), 0..4),
            proptest::collection::vec(any::<Index>(), 0..3),
        ),
        1..40,
    )
}

/// The verdict recorded for one replayed op, together with the ground truth ("would this
/// insertion really close a cycle?") computed by DFS *at verdict time*.
struct ObservedOp {
    verdict: CycleCheck,
    truly_cyclic: bool,
}

/// Replays `ops` into a graph with the given config, mimicking the orderer: each candidate is
/// inserted only if `would_close_cycle` (on that graph's own bloom filter) says `Acyclic`, so
/// the successor-edge relation stays a DAG by construction. Returns the graph and, per op,
/// the verdict observed alongside the exact DFS answer at that moment.
fn replay(config: CcConfig, ops: &[InsertOp]) -> (DependencyGraph, Vec<ObservedOp>) {
    let mut graph = DependencyGraph::new(config);
    let mut inserted: Vec<TxnId> = Vec::new();
    let mut observed = Vec::new();
    for (i, (pred_picks, succ_picks)) in ops.iter().enumerate() {
        let pick = |picks: &[Index]| -> Vec<TxnId> {
            if inserted.is_empty() {
                return vec![];
            }
            let mut seen = std::collections::HashSet::new();
            picks
                .iter()
                .map(|p| inserted[p.index(inserted.len())])
                .filter(|id| seen.insert(*id))
                .collect()
        };
        let preds = pick(pred_picks);
        let succs = pick(succ_picks);
        let verdict = graph.would_close_cycle(&preds, &succs);
        // Ground truth must be evaluated now — later insertions may add paths that did not
        // exist when the verdict was taken.
        let truly_cyclic = preds.iter().any(|&p| {
            succs.iter().any(|&s| {
                p == s || (graph.contains(p) && graph.contains(s) && graph.reaches_exact(s, p))
            })
        });
        if verdict.is_acyclic() {
            let id = TxnId(i as u64 + 1);
            graph.insert_pending(spec(id.0), &preds, &succs, 1);
            inserted.push(id);
        }
        observed.push(ObservedOp {
            verdict,
            truly_cyclic,
        });
    }
    (graph, observed)
}

fn exact_config() -> CcConfig {
    CcConfig {
        track_exact_reachability: true,
        ..CcConfig::default()
    }
}

/// A deliberately starved bloom geometry (the minimum `validate()` accepts) so that false
/// positives actually occur at these graph sizes.
fn tiny_bloom_config() -> CcConfig {
    CcConfig {
        bloom_bits: 64,
        bloom_hashes: 3,
        track_exact_reachability: true,
        ..CcConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The exact shadow agrees with a from-scratch DFS over successor edges, and the bloom
    /// filter is a superset of it: whenever the DFS finds a path `a → … → b`, both the shadow
    /// and the bloom report `a` reachable-to `b`. A missing bloom bit would be a false
    /// negative, which the representation must never produce.
    #[test]
    fn bloom_is_a_superset_of_exact_reachability(ops in insert_ops()) {
        let (graph, _) = replay(exact_config(), &ops);
        let ids: Vec<TxnId> = graph.nodes().map(|n| n.id).collect();
        for &a in &ids {
            for &b in &ids {
                if a == b {
                    continue;
                }
                let node_b = graph.node(b).unwrap();
                let shadow = node_b.anti_reachable.contains_exact(a).expect("exact tracking on");
                prop_assert_eq!(
                    shadow,
                    graph.reaches_exact(a, b),
                    "exact shadow of {:?} disagrees with DFS for predecessor {:?}", b, a
                );
                if shadow {
                    prop_assert!(
                        node_b.anti_reachable.contains(a),
                        "bloom false negative: {:?} reaches {:?} but the filter misses it", a, b
                    );
                }
            }
        }
    }

    /// Cycle verdicts are sound in both directions: `Acyclic` implies no successor truly
    /// reaches any predecessor (no false negatives), and every `Cycle` verdict is correctly
    /// classified by the exact shadow — `Some(true)` iff a real path (or `p == s`) exists,
    /// `Some(false)` iff it was a bloom false positive.
    #[test]
    fn cycle_verdicts_misfire_only_as_false_positives(ops in insert_ops()) {
        let (graph, observed) = replay(exact_config(), &ops);
        for op in observed {
            match op.verdict {
                CycleCheck::Acyclic => {
                    // No false negatives: Acyclic must never be reported for a real cycle.
                    prop_assert!(!op.truly_cyclic, "bloom reported Acyclic for a real cycle");
                }
                CycleCheck::Cycle { confirmed_exact } => {
                    let confirmed = confirmed_exact.expect("exact tracking on");
                    // A confirmed cycle must really exist. The converse does not hold:
                    // `Some(false)` only classifies the first pair the filter fired on, and a
                    // different pair may still form a real cycle — either way the transaction
                    // is aborted, so serializability is preserved.
                    if confirmed {
                        prop_assert!(op.truly_cyclic, "verdict confirmed a cycle DFS cannot find");
                    }
                }
            }
        }
        // DAG invariant: accepting only Acyclic verdicts must keep the graph truly acyclic.
        let ids: Vec<TxnId> = graph.nodes().map(|n| n.id).collect();
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    prop_assert!(
                        !(graph.reaches_exact(a, b) && graph.reaches_exact(b, a)),
                        "cycle {:?} <-> {:?} slipped past the bloom-filter gate", a, b
                    );
                }
            }
        }
    }

    /// Differential run: a starved 64-bit bloom filter produces (many) false-positive aborts,
    /// but still never a false negative — every verdict it reports as a *confirmed* cycle is
    /// confirmed by the generously-sized filter's exact shadow too, and its graph stays a DAG.
    #[test]
    fn starved_bloom_errs_only_toward_aborting(ops in insert_ops()) {
        let (tiny_graph, tiny_observed) = replay(tiny_bloom_config(), &ops);
        for op in &tiny_observed {
            match op.verdict {
                // Even a saturated filter must never miss a real cycle.
                CycleCheck::Acyclic => prop_assert!(!op.truly_cyclic, "starved bloom missed a real cycle"),
                CycleCheck::Cycle { confirmed_exact } => {
                    let confirmed = confirmed_exact.expect("exact tracking on");
                    if confirmed {
                        prop_assert!(op.truly_cyclic, "starved bloom confirmed a phantom cycle");
                    }
                }
            }
        }
        let ids: Vec<TxnId> = tiny_graph.nodes().map(|n| n.id).collect();
        for &a in &ids {
            for &b in &ids {
                if a != b {
                    prop_assert!(!(tiny_graph.reaches_exact(a, b) && tiny_graph.reaches_exact(b, a)));
                }
            }
        }
    }
}

/// Deterministic (non-property) check that the starved geometry really does produce at least
/// one bloom false positive somewhere in a dense insertion pattern — otherwise the
/// differential property above would be testing nothing.
#[test]
fn starved_bloom_produces_observable_false_positives() {
    let mut graph = DependencyGraph::new(tiny_bloom_config());
    let mut fp_seen = false;
    // Dense chains: each new node depends on all of the previous few, saturating 64 bits.
    let mut recent: Vec<TxnId> = Vec::new();
    for next_id in 1u64..=200 {
        let id = TxnId(next_id);
        let preds: Vec<TxnId> = recent.iter().rev().take(4).copied().collect();
        let verdict = graph.would_close_cycle(&preds, &[]);
        assert!(
            verdict.is_acyclic(),
            "pred-only insertions never close a cycle"
        );
        graph.insert_pending(spec(id.0), &preds, &[], 1);
        recent.push(id);
        // Now probe reachability pairs that are truly unreachable and count bloom hits.
        for &old in recent.iter().take(8) {
            if graph.reaches_exact(id, old) {
                continue;
            }
            let old_node = graph.node(old).unwrap();
            if old_node.anti_reachable.contains(id)
                && old_node.anti_reachable.contains_exact(id) == Some(false)
            {
                fp_seen = true;
            }
        }
        if fp_seen {
            break;
        }
    }
    assert!(
        fp_seen,
        "64-bit bloom filter never produced a false positive across 200 dense insertions"
    );
}
