//! A small, dependency-free SHA-256 implementation (FIPS 180-4).
//!
//! The ledger only needs a collision-resistant hash to chain block headers; pulling in a full
//! crypto crate is unnecessary for the reproduction and is not on the approved dependency
//! list, so the compression function is implemented here directly. The implementation is the
//! straightforward textbook one — correctness is what matters (it is checked against the NIST
//! test vectors below), not throughput, since hashing is a negligible fraction of simulated
//! block-formation cost.

/// A 32-byte SHA-256 digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the previous-hash of the genesis block.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for byte in self.0 {
            s.push_str(&format!("{byte:02x}"));
        }
        s
    }

    /// Raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({}…)", &self.to_hex()[..8])
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// SHA-256 round constants (first 32 bits of the fractional parts of the cube roots of the
/// first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (first 32 bits of the fractional parts of the square roots of the first
/// 8 primes).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Computes the SHA-256 digest of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = H0;

    // Pre-processing: pad to a multiple of 64 bytes with 0x80, zeros, and the 64-bit
    // message length in bits.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut padded = Vec::with_capacity(data.len() + 72);
    padded.extend_from_slice(data);
    padded.push(0x80);
    while padded.len() % 64 != 56 {
        padded.push(0);
    }
    padded.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for chunk in padded.chunks_exact(64) {
        for (i, word) in chunk.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = hh
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
        h[5] = h[5].wrapping_add(f);
        h[6] = h[6].wrapping_add(g);
        h[7] = h[7].wrapping_add(hh);
    }

    let mut out = [0u8; 32];
    for (i, word) in h.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

/// Convenience: hash the concatenation of several byte slices (avoids intermediate buffers at
/// call sites that assemble block headers).
pub fn sha256_concat<'a>(parts: impl IntoIterator<Item = &'a [u8]>) -> Digest {
    let mut buf = Vec::new();
    for p in parts {
        buf.extend_from_slice(p);
    }
    sha256(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// NIST / RFC 6234 test vectors.
    #[test]
    fn known_test_vectors() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 55/56/64-byte padding boundaries exercise the two-block path.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120] {
            let data = vec![0x61u8; len];
            let d1 = sha256(&data);
            let d2 = sha256(&data);
            assert_eq!(d1, d2, "deterministic at length {len}");
        }
        // 64 bytes of 'a' — cross-checked with an external implementation.
        assert_eq!(
            sha256(&[b'a'; 64]).to_hex(),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn concat_matches_single_buffer() {
        let whole = sha256(b"hello world");
        let parts = sha256_concat([b"hello".as_slice(), b" ".as_slice(), b"world".as_slice()]);
        assert_eq!(whole, parts);
    }

    #[test]
    fn digest_formatting() {
        let d = sha256(b"abc");
        assert_eq!(d.to_hex().len(), 64);
        assert!(format!("{d:?}").starts_with("Digest(ba7816bf"));
        assert_eq!(format!("{d}").len(), 64);
        assert_eq!(Digest::ZERO.as_bytes(), &[0u8; 32]);
    }

    #[test]
    fn single_bit_difference_changes_digest() {
        let a = sha256(b"transaction-1");
        let b = sha256(b"transaction-2");
        assert_ne!(a, b);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Hashing is deterministic and any single-byte tamper changes the digest.
        #[test]
        fn deterministic_and_tamper_evident(mut data in proptest::collection::vec(any::<u8>(), 1..512), idx in any::<prop::sample::Index>()) {
            let original = sha256(&data);
            prop_assert_eq!(original, sha256(&data));

            let i = idx.index(data.len());
            data[i] ^= 0xff;
            prop_assert_ne!(original, sha256(&data));
        }
    }
}
