//! # eov-sim
//!
//! A deterministic discrete-event simulator of the execute-order-validate pipeline, standing
//! in for the paper's Fabric / FastFabric testbed (see `DESIGN.md` for the substitution
//! argument). The five concurrency-control systems are the *real* implementations from
//! `fabricsharp-core` and `eov-baselines`; the simulator only supplies time: request rates,
//! endorsement latency (including the read-interval model), client delay, consensus latency,
//! block formation, the modelled reordering cost, and the validation bottleneck.
//!
//! * [`profiles`] — calibrated per-phase costs (Fabric ≈677 raw tps, FastFabric ≈3100 raw tps).
//! * [`events`] — simulated time, events, deterministic event queue.
//! * [`runner`] — the event loop ([`runner::Simulator`]) and [`runner::SimulationConfig`].
//! * [`metrics`] — [`metrics::SimReport`]: raw/effective throughput, latency, abort breakdown,
//!   block span, reachability hops, measured CC overheads.

#![forbid(unsafe_code)]

pub mod events;
pub mod metrics;
mod pipeline;
pub mod profiles;
pub mod runner;

pub use metrics::{FormationTiming, PipelineOccupancy, SimReport};
pub use profiles::PipelineProfile;
pub use runner::{SimulationConfig, Simulator};
