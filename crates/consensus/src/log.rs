//! The totally-ordered, replicated transaction log (the Kafka substitution).
//!
//! Fabric outsources ordering to a consensus service (Kafka in the paper's deployment): every
//! orderer submits the transactions it receives from clients, the service merges them into a
//! single total order, and every orderer reads back the *same* stream. The only properties the
//! rest of the system relies on are (1) a single total order and (2) every orderer observing
//! that order in full — both of which this in-process log provides. Submissions go through a
//! multi-producer channel (orderers live on different threads in the simulator) and are folded
//! into the ordered log by `ingest`, after which any number of [`LogCursor`]s can replay the
//! stream independently.

use crossbeam::channel::{unbounded, Receiver, Sender};
use eov_common::error::{CommonError, Result};
use eov_common::txn::Transaction;
use parking_lot::RwLock;
use std::sync::Arc;

/// A submission handed to the consensus service: the endorsed transaction plus the id of the
/// orderer that forwarded it (used only for diagnostics — the total order is what matters).
#[derive(Clone, Debug)]
pub struct Submission {
    /// The endorsed transaction.
    pub txn: Transaction,
    /// The orderer (or client) that submitted it.
    pub submitter: u32,
}

/// The shared totally-ordered log.
#[derive(Debug)]
pub struct ConsensusLog {
    entries: Arc<RwLock<Vec<Submission>>>,
    sender: Sender<Submission>,
    receiver: Receiver<Submission>,
}

impl Default for ConsensusLog {
    fn default() -> Self {
        Self::new()
    }
}

impl ConsensusLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        let (sender, receiver) = unbounded();
        ConsensusLog {
            entries: Arc::new(RwLock::new(Vec::new())),
            sender,
            receiver,
        }
    }

    /// A handle that producers (orderer front-ends, clients) use to submit transactions.
    pub fn producer(&self) -> LogProducer {
        LogProducer {
            sender: self.sender.clone(),
        }
    }

    /// Pulls every submission queued since the last call into the total order, in channel
    /// arrival order, and returns how many were appended. In the simulator this is called by
    /// the "consensus" step of the event loop; calling it from multiple places is safe but the
    /// resulting interleaving is whatever the channel delivered.
    pub fn ingest(&self) -> usize {
        let mut appended = 0;
        let mut entries = self.entries.write();
        while let Ok(sub) = self.receiver.try_recv() {
            entries.push(sub);
            appended += 1;
        }
        appended
    }

    /// Appends a submission directly, bypassing the channel (used by single-threaded drivers
    /// where channel indirection adds nothing). Returns its offset in the total order.
    pub fn append(&self, sub: Submission) -> u64 {
        let mut entries = self.entries.write();
        entries.push(sub);
        (entries.len() - 1) as u64
    }

    /// Current length of the total order.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads the entry at `offset`.
    pub fn get(&self, offset: u64) -> Result<Submission> {
        self.entries
            .read()
            .get(offset as usize)
            .cloned()
            .ok_or_else(|| CommonError::Consensus(format!("offset {offset} past end of log")))
    }

    /// Creates a cursor positioned at the beginning of the log. Each orderer replica owns one
    /// cursor and replays the identical stream.
    pub fn cursor(&self) -> LogCursor {
        LogCursor {
            entries: Arc::clone(&self.entries),
            next: 0,
        }
    }
}

/// A cloneable producer handle for submitting transactions to the consensus service.
#[derive(Clone, Debug)]
pub struct LogProducer {
    sender: Sender<Submission>,
}

impl LogProducer {
    /// Submits a transaction on behalf of `submitter`.
    pub fn submit(&self, txn: Transaction, submitter: u32) {
        // The log outlives every producer in the supported topologies; if it does not, the
        // submission is simply dropped, which models a crashed ordering service.
        let _ = self.sender.send(Submission { txn, submitter });
    }
}

/// An independent read cursor over the total order. Cursors never skip and never reorder —
/// they deliver exactly the log sequence, which is what makes the per-orderer block formation
/// deterministic.
#[derive(Clone, Debug)]
pub struct LogCursor {
    entries: Arc<RwLock<Vec<Submission>>>,
    next: usize,
}

impl LogCursor {
    /// Returns the next submission, if any, and advances the cursor.
    pub fn poll(&mut self) -> Option<Submission> {
        let entries = self.entries.read();
        let item = entries.get(self.next).cloned();
        if item.is_some() {
            self.next += 1;
        }
        item
    }

    /// Offset of the next entry this cursor will deliver.
    pub fn position(&self) -> u64 {
        self.next as u64
    }

    /// How many entries are currently available beyond this cursor's position.
    pub fn lag(&self) -> usize {
        self.entries.read().len().saturating_sub(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::txn::TxnId;

    fn txn(id: u64) -> Transaction {
        Transaction::from_parts(id, 0, [], [])
    }

    #[test]
    fn append_and_cursor_replay_the_same_order() {
        let log = ConsensusLog::new();
        for id in 1..=5u64 {
            log.append(Submission {
                txn: txn(id),
                submitter: 0,
            });
        }
        let mut a = log.cursor();
        let mut b = log.cursor();
        let seq_a: Vec<u64> = std::iter::from_fn(|| a.poll())
            .map(|s| s.txn.id.0)
            .collect();
        let seq_b: Vec<u64> = std::iter::from_fn(|| b.poll())
            .map(|s| s.txn.id.0)
            .collect();
        assert_eq!(seq_a, vec![1, 2, 3, 4, 5]);
        assert_eq!(seq_a, seq_b);
        assert_eq!(a.position(), 5);
        assert_eq!(a.lag(), 0);
    }

    #[test]
    fn ingest_folds_channel_submissions_into_the_order() {
        let log = ConsensusLog::new();
        let p1 = log.producer();
        let p2 = log.producer();
        p1.submit(txn(10), 1);
        p2.submit(txn(20), 2);
        p1.submit(txn(30), 1);
        assert_eq!(log.len(), 0);
        assert_eq!(log.ingest(), 3);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());

        // Ordering is the channel arrival order and both cursors agree on it.
        let ids: Vec<u64> = {
            let mut c = log.cursor();
            std::iter::from_fn(|| c.poll())
                .map(|s| s.txn.id.0)
                .collect()
        };
        assert_eq!(ids.len(), 3);
        assert!(ids.contains(&10) && ids.contains(&20) && ids.contains(&30));
    }

    #[test]
    fn get_past_end_is_an_error() {
        let log = ConsensusLog::new();
        log.append(Submission {
            txn: txn(1),
            submitter: 0,
        });
        assert!(log.get(0).is_ok());
        assert!(matches!(log.get(5), Err(CommonError::Consensus(_))));
    }

    #[test]
    fn cursor_waits_for_new_entries() {
        let log = ConsensusLog::new();
        let mut cursor = log.cursor();
        assert!(cursor.poll().is_none());
        log.append(Submission {
            txn: txn(7),
            submitter: 0,
        });
        assert_eq!(cursor.poll().unwrap().txn.id, TxnId(7));
        assert!(cursor.poll().is_none());
    }

    #[test]
    fn concurrent_producers_are_all_ingested() {
        let log = Arc::new(ConsensusLog::new());
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let producer = log.producer();
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    producer.submit(txn(t as u64 * 1000 + i), t);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        log.ingest();
        assert_eq!(log.len(), 200);
    }
}
