//! Multi-version-store checkpoints: the base state cold recovery replays from.
//!
//! A checkpoint file `ckpt-<height:020>.bin` captures a [`StoreBackend`] exactly as it stood
//! after applying blocks `1..=height`: backend shape (unsharded, or `S` shards with their
//! router), heights, pruning horizons, and every per-key version chain in `BTreeMap` key
//! order — a deterministic byte image, CRC-framed like a segment record. Writes go through a
//! temp file plus rename, so a crash mid-checkpoint leaves either the old file set or the new
//! one, never a half-written checkpoint under the final name.
//!
//! Recovery loads the *newest valid* checkpoint at or below the ledger height whose shape
//! matches the configured sharding: individually corrupt, too-new, or mis-shaped candidates
//! are skipped (older checkpoints or the genesis replay cover for them), so one bad file can
//! never wedge a restart.

use crate::codec::{crc32, ByteReader, ByteWriter};
use crate::error::LedgerError;
use eov_common::shard::{Partitioning, ShardRouter};
use eov_vstore::{MultiVersionStore, ShardedStore, StateRead, StoreBackend};
use std::fs;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file (format version 1).
const CHECKPOINT_MAGIC: &[u8; 8] = b"EOVCKP01";

/// File name of the checkpoint at `height`.
pub fn checkpoint_file_name(height: u64) -> String {
    format!("ckpt-{height:020}.bin")
}

fn put_shard(w: &mut ByteWriter, shard: &MultiVersionStore) {
    w.put_u64(shard.last_block());
    w.put_u64(shard.pruned_below());
    w.put_u64(shard.key_count() as u64);
    for (key, chain) in shard.iter_history() {
        w.put_bytes(key.as_str().as_bytes());
        w.put_u32(chain.len() as u32);
        for version in chain {
            w.put_seqno(version.version);
            w.put_bytes(version.value.as_bytes());
        }
    }
}

fn get_shard(r: &mut ByteReader<'_>) -> Result<MultiVersionStore, String> {
    let last_block = r.get_u64("shard last_block")?;
    let pruned_below = r.get_u64("shard pruned_below")?;
    let key_count = r.get_u64("shard key count")?;
    let mut shard = MultiVersionStore::new();
    for _ in 0..key_count {
        let key = r.get_key("chain key")?;
        let versions = r.get_u32("chain length")?;
        for _ in 0..versions {
            let version = r.get_seqno("chain version")?;
            let value = eov_common::rwset::Value::from_bytes(r.get_bytes("chain value")?.to_vec());
            shard.put(key.clone(), version, value);
        }
    }
    shard.restore_heights(last_block, pruned_below);
    Ok(shard)
}

fn encode_store(height: u64, store: &StoreBackend) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(height);
    match store {
        StoreBackend::Unsharded(s) => {
            w.put_u8(0);
            put_shard(&mut w, s);
        }
        StoreBackend::Sharded(s) => {
            w.put_u8(1);
            w.put_u32(s.shard_count() as u32);
            w.put_u8(match s.router().partitioning() {
                Partitioning::Hash => 0,
                Partitioning::Range => 1,
            });
            w.put_u64(StateRead::last_block(s));
            for i in 0..s.shard_count() {
                put_shard(&mut w, s.shard(i));
            }
        }
    }
    w.into_bytes()
}

fn decode_store(payload: &[u8]) -> Result<(u64, StoreBackend), String> {
    let mut r = ByteReader::new(payload);
    let height = r.get_u64("checkpoint height")?;
    let backend = match r.get_u8("backend tag")? {
        0 => StoreBackend::Unsharded(get_shard(&mut r)?),
        1 => {
            let shard_count = r.get_u32("shard count")?;
            if shard_count == 0 {
                return Err("sharded checkpoint with zero shards".into());
            }
            let router = match r.get_u8("partitioning")? {
                0 => ShardRouter::hash(shard_count as usize),
                1 => ShardRouter::range(shard_count as usize),
                other => return Err(format!("unknown partitioning tag {other}")),
            };
            let global_last_block = r.get_u64("global last_block")?;
            let mut sharded = ShardedStore::new(router);
            for i in 0..shard_count as usize {
                *sharded.shard_mut(i) = get_shard(&mut r)?;
            }
            sharded.restore_height(global_last_block);
            StoreBackend::Sharded(sharded)
        }
        other => return Err(format!("unknown backend tag {other}")),
    };
    if !r.is_exhausted() {
        return Err("trailing bytes after checkpoint payload".into());
    }
    Ok((height, backend))
}

/// Writes a checkpoint of `store` at its current height into `dir` (atomically: temp file +
/// rename). Returns the height and the final path.
pub fn write_checkpoint(
    dir: impl AsRef<Path>,
    store: &StoreBackend,
    fsync: bool,
) -> Result<(u64, PathBuf), LedgerError> {
    let dir = dir.as_ref();
    let height = store.last_block();
    let payload = encode_store(height, store);
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(CHECKPOINT_MAGIC);
    bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_be_bytes());
    bytes.extend_from_slice(&payload);

    let path = dir.join(checkpoint_file_name(height));
    let tmp = dir.join(format!("{}.tmp", checkpoint_file_name(height)));
    fs::write(&tmp, &bytes).map_err(|e| LedgerError::io(&tmp, e))?;
    if fsync {
        let file = fs::File::open(&tmp).map_err(|e| LedgerError::io(&tmp, e))?;
        file.sync_data().map_err(|e| LedgerError::io(&tmp, e))?;
    }
    fs::rename(&tmp, &path).map_err(|e| LedgerError::io(&path, e))?;
    Ok((height, path))
}

/// Loads one checkpoint file, validating magic, CRC and structure.
pub fn load_checkpoint(path: impl AsRef<Path>) -> Result<(u64, StoreBackend), LedgerError> {
    let path = path.as_ref();
    let bytes = fs::read(path).map_err(|e| LedgerError::io(path, e))?;
    let corrupt = |detail: &str| LedgerError::CorruptCheckpoint {
        path: path.to_path_buf(),
        detail: detail.into(),
    };
    if bytes.len() < 16 || &bytes[..8] != CHECKPOINT_MAGIC {
        return Err(corrupt("missing or invalid checkpoint header"));
    }
    let len = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let stored_crc = u32::from_be_bytes(bytes[12..16].try_into().unwrap());
    if bytes.len() != 16 + len {
        return Err(corrupt("checkpoint length does not match its frame"));
    }
    let payload = &bytes[16..];
    if crc32(payload) != stored_crc {
        return Err(corrupt("CRC mismatch"));
    }
    decode_store(payload).map_err(|detail| LedgerError::CorruptCheckpoint {
        path: path.to_path_buf(),
        detail,
    })
}

/// The heights of every checkpoint file in `dir`, ascending (parsed from file names; files
/// whose names do not parse are ignored).
pub fn checkpoint_heights(dir: impl AsRef<Path>) -> Result<Vec<(u64, PathBuf)>, LedgerError> {
    let dir = dir.as_ref();
    let entries = fs::read_dir(dir).map_err(|e| LedgerError::io(dir, e))?;
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| LedgerError::io(dir, e))?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if let Some(height) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".bin"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            found.push((height, path));
        }
    }
    found.sort();
    Ok(found)
}

/// Loads the newest *valid* checkpoint at or below `max_height` whose shape matches
/// `expected_shards` (the `CcConfig::store_shards` knob: `0` = unsharded). Corrupt,
/// mis-shaped or too-new candidates are skipped — recovery falls back to an older checkpoint
/// or, with none left, to a genesis replay (`Ok(None)`).
pub fn latest_checkpoint_at_most(
    dir: impl AsRef<Path>,
    max_height: u64,
    expected_shards: usize,
) -> Result<Option<(u64, StoreBackend)>, LedgerError> {
    let mut candidates = checkpoint_heights(dir.as_ref())?;
    candidates.retain(|(height, _)| *height <= max_height);
    for (height, path) in candidates.into_iter().rev() {
        let Ok((decoded_height, store)) = load_checkpoint(&path) else {
            continue;
        };
        let shape_matches = match (&store, expected_shards) {
            (StoreBackend::Unsharded(_), 0) => true,
            (StoreBackend::Sharded(s), n) => s.shard_count() == n,
            _ => false,
        };
        if decoded_height == height && shape_matches {
            return Ok(Some((height, store)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::rwset::{Key, Value};
    use eov_common::txn::Transaction;
    use eov_vstore::StateStore;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eov-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn populated(shards: usize, blocks: u64) -> StoreBackend {
        let mut store = StoreBackend::for_shards(shards);
        store.seed_genesis((0..6).map(|i| (Key::new(format!("k{i}")), Value::from_i64(i))));
        for b in 1..=blocks {
            let txn = Transaction::from_parts(
                b,
                b - 1,
                [],
                (0..3).map(|i| {
                    (
                        Key::new(format!("k{}", (b as usize + i) % 6)),
                        Value::from_i64(b as i64 * 10 + i as i64),
                    )
                }),
            );
            store.apply_block(b, [(&txn, 1)]);
        }
        store
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_identical_for_every_backend() {
        for shards in [0usize, 2, 4] {
            let dir = temp_dir(&format!("rt{shards}"));
            let store = populated(shards, 7);
            let (height, path) = write_checkpoint(&dir, &store, false).unwrap();
            assert_eq!(height, 7);
            let (loaded_height, loaded) = load_checkpoint(&path).unwrap();
            assert_eq!(loaded_height, 7);
            assert_eq!(loaded, store, "S={shards}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn latest_checkpoint_respects_height_bound_and_shape() {
        let dir = temp_dir("latest");
        for blocks in [2u64, 5, 9] {
            write_checkpoint(&dir, &populated(2, blocks), false).unwrap();
        }
        // Newest at or below the bound wins.
        let (height, _) = latest_checkpoint_at_most(&dir, 7, 2).unwrap().unwrap();
        assert_eq!(height, 5);
        let (height, _) = latest_checkpoint_at_most(&dir, 100, 2).unwrap().unwrap();
        assert_eq!(height, 9);
        // Shape mismatch (recovering unsharded, checkpoints are 2-sharded): genesis replay.
        assert!(latest_checkpoint_at_most(&dir, 100, 0).unwrap().is_none());
        assert!(latest_checkpoint_at_most(&dir, 1, 2).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_corrupt_newest_checkpoint_falls_back_to_an_older_one() {
        let dir = temp_dir("fallback");
        write_checkpoint(&dir, &populated(0, 3), false).unwrap();
        let (_, newest) = write_checkpoint(&dir, &populated(0, 6), false).unwrap();
        // Flip one payload byte of the newest checkpoint.
        let mut bytes = std::fs::read(&newest).unwrap();
        let target = bytes.len() - 5;
        bytes[target] ^= 0x40;
        std::fs::write(&newest, &bytes).unwrap();
        assert!(matches!(
            load_checkpoint(&newest),
            Err(LedgerError::CorruptCheckpoint { .. })
        ));
        let (height, store) = latest_checkpoint_at_most(&dir, 10, 0).unwrap().unwrap();
        assert_eq!(height, 3);
        assert_eq!(store, populated(0, 3));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruned_stores_checkpoint_their_horizon() {
        let dir = temp_dir("pruned");
        let mut store = populated(0, 6);
        store.prune_versions_below(4);
        let (_, path) = write_checkpoint(&dir, &store, false).unwrap();
        let (_, loaded) = load_checkpoint(&path).unwrap();
        assert_eq!(loaded, store);
        assert_eq!(loaded.pruned_below(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
