//! The transaction dependency graph (Sections 4.3–4.5).
//!
//! Every transaction accepted by the FabricSharp orderer becomes a node. Node storage is a
//! slab indexed by dense interned slots ([`crate::interner::Interner`]): edges follow the
//! *dependency order* (`from` must be serialized before `to`) and are stored as immediate
//! successor lists (`succ`) of `u32` slots mirrored by predecessor lists (`pred`), so removals
//! touch only a node's neighbourhood and traversals index a `Vec` instead of hashing. Each
//! node carries `anti_reachable`: a set — a bloom filter, optionally shadowed by an exact set
//! for the ablation experiments — of every transaction that can reach it. Cycle detection for
//! a new transaction then reduces to membership tests between its prospective predecessors and
//! successors (Section 4.4), and Algorithm 4's reachability maintenance reduces to bit-vector
//! unions. Exact reachability queries run on a reusable [`crate::visited::EpochVisited`]
//! scratch set, so the per-transaction path allocates nothing once the slab is warm.

use crate::bloom::BloomFilter;
use crate::interner::Interner;
use crate::visited::EpochVisited;
use eov_common::config::CcConfig;
use eov_common::rwset::Key;
use eov_common::txn::TxnId;
use eov_common::version::SeqNo;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// The set of transactions that can reach a node.
///
/// Always backed by a bloom filter (the production representation); when
/// [`CcConfig::track_exact_reachability`] is enabled an exact `HashSet` is maintained
/// alongside, which lets tests and the ablation benchmarks distinguish genuine cycles from
/// bloom false positives.
#[derive(Clone, Debug)]
pub struct ReachSet {
    bloom: BloomFilter,
    exact: Option<HashSet<u64>>,
}

impl ReachSet {
    /// Creates an empty reach set with the given bloom geometry.
    pub fn new(config: &CcConfig) -> Self {
        ReachSet {
            bloom: BloomFilter::new(config.bloom_bits, config.bloom_hashes),
            exact: config.track_exact_reachability.then(HashSet::new),
        }
    }

    /// A minimal throwaway set used to temporarily displace a stored set while it is borrowed
    /// as a union source (see [`DependencyGraph::insert_pending`]); never unioned or queried.
    pub(crate) fn placeholder() -> Self {
        ReachSet {
            bloom: BloomFilter::new(64, 1),
            exact: None,
        }
    }

    /// Inserts a transaction id.
    pub fn insert(&mut self, id: TxnId) {
        self.bloom.insert(id.0);
        if let Some(exact) = &mut self.exact {
            exact.insert(id.0);
        }
    }

    /// Membership test against the bloom filter (may be a false positive).
    pub fn contains(&self, id: TxnId) -> bool {
        self.bloom.contains(id.0)
    }

    /// Membership test with the double-hashing pair precomputed by
    /// [`BloomFilter::hash_pair`]. Equivalent to [`ReachSet::contains`]; lets the cycle test
    /// hash each candidate successor once instead of once per (pred, succ) pair.
    #[inline]
    pub(crate) fn contains_prehashed(&self, hashes: (u64, u64)) -> bool {
        self.bloom.contains_prehashed(hashes)
    }

    /// Exact membership, if exact tracking is enabled.
    pub fn contains_exact(&self, id: TxnId) -> Option<bool> {
        self.exact.as_ref().map(|s| s.contains(&id.0))
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &ReachSet) {
        self.bloom.union_with(&other.bloom);
        if let (Some(mine), Some(theirs)) = (&mut self.exact, &other.exact) {
            mine.extend(theirs.iter().copied());
        }
    }

    /// Number of set bits in the bloom filter (saturation diagnostics).
    pub fn bloom_popcount(&self) -> u32 {
        self.bloom.popcount()
    }
}

/// A node of the dependency graph.
#[derive(Clone, Debug)]
pub struct TxnNode {
    /// The transaction this node represents.
    pub id: TxnId,
    /// Start timestamp (Definition 3): the snapshot the transaction was simulated against.
    pub start_ts: SeqNo,
    /// End timestamp (Definition 4) once the transaction has been placed in a block; `None`
    /// while it is still pending.
    pub end_ts: Option<SeqNo>,
    /// Immediate successors in dependency order, as interned slots. External callers read
    /// transaction ids through [`DependencyGraph::successors`].
    pub(crate) succ: Vec<u32>,
    /// Immediate predecessors — the mirror of `succ`, maintained so removing a node only has
    /// to visit its neighbours instead of scanning every successor list in the graph.
    pub(crate) pred: Vec<u32>,
    /// Every transaction that can reach this node (bloom-filter representation).
    pub anti_reachable: ReachSet,
    /// Age (Section 4.6): the highest block number such that a transaction destined for that
    /// block can reach this node. Nodes whose age falls behind the pruning threshold can never
    /// join a future cycle and are removed.
    pub age: u64,
    /// Keys read by the transaction (kept for ww restoration and diagnostics).
    pub read_keys: Vec<Key>,
    /// Keys written by the transaction.
    pub write_keys: Vec<Key>,
}

impl TxnNode {
    /// Whether the node is still pending (not yet assigned a block slot).
    pub fn is_pending(&self) -> bool {
        self.end_ts.is_none()
    }
}

/// Specification of a new pending transaction to be inserted into the graph.
#[derive(Clone, Debug)]
pub struct PendingTxnSpec {
    /// Transaction id.
    pub id: TxnId,
    /// Start timestamp (snapshot sequence number).
    pub start_ts: SeqNo,
    /// Keys read during simulation.
    pub read_keys: Vec<Key>,
    /// Keys written during simulation.
    pub write_keys: Vec<Key>,
}

/// Outcome of the cycle test performed before inserting a new transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleCheck {
    /// No predecessor is reachable from any successor: inserting the transaction keeps the
    /// graph acyclic.
    Acyclic,
    /// Some successor (possibly) reaches some predecessor. `confirmed_exact` reports whether
    /// the exact shadow structure (if enabled) agrees — `Some(false)` marks a bloom false
    /// positive, which still aborts the transaction (preventive abort, Section 4.4).
    Cycle {
        /// `Some(true)` — the exact structure confirms the cycle; `Some(false)` — bloom false
        /// positive; `None` — exact tracking disabled.
        confirmed_exact: Option<bool>,
    },
}

impl CycleCheck {
    /// Whether the transaction may be inserted.
    pub fn is_acyclic(&self) -> bool {
        matches!(self, CycleCheck::Acyclic)
    }
}

/// Report returned by [`DependencyGraph::insert_pending`]; feeds the Figure 13 statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsertReport {
    /// Number of nodes visited while propagating reachability to the new transaction's
    /// descendants ("# of hops" in Figure 13).
    pub hops: usize,
}

/// The pending transactions in arrival order (the set `P` of Algorithms 2 and 3).
///
/// An order-preserving index: arrival order is kept in a slot vector whose entries are
/// tombstoned on removal (`mark_committed` / `remove` are O(1) amortised instead of the
/// `Vec::retain` O(n) scan per commit the seed shipped with), while a hash index maps each id
/// to its slot. The slot vector is compacted once more than half of it is tombstones, so
/// iteration stays O(live) amortised.
#[derive(Clone, Debug, Default)]
struct PendingList {
    slots: Vec<Option<TxnId>>,
    index: HashMap<u64, usize>,
    live: usize,
}

impl PendingList {
    /// Appends `id` at the end of the arrival order. Ignores ids already present.
    fn push(&mut self, id: TxnId) {
        if self.index.contains_key(&id.0) {
            return;
        }
        self.index.insert(id.0, self.slots.len());
        self.slots.push(Some(id));
        self.live += 1;
    }

    /// Removes `id`, preserving the relative order of everything else. Returns whether the id
    /// was present.
    fn remove(&mut self, id: TxnId) -> bool {
        let Some(slot) = self.index.remove(&id.0) else {
            return false;
        };
        self.slots[slot] = None;
        self.live -= 1;
        self.maybe_compact();
        true
    }

    /// Removes every id in `ids`, preserving the relative order of the survivors.
    fn remove_all(&mut self, ids: &HashSet<u64>) {
        // lint-determinism: allow (removals are commutative; compaction runs after the loop)
        for id in ids {
            if let Some(slot) = self.index.remove(id) {
                self.slots[slot] = None;
                self.live -= 1;
            }
        }
        self.maybe_compact();
    }

    fn maybe_compact(&mut self) {
        if self.slots.len() > 32 && self.live * 2 < self.slots.len() {
            self.slots.retain(Option::is_some);
            for (slot, id) in self.slots.iter().enumerate() {
                let id = id.expect("tombstones were just dropped");
                self.index.insert(id.0, slot);
            }
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn iter(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.slots.iter().filter_map(|slot| *slot)
    }
}

/// Reusable traversal scratch shared by the query paths. One instance lives inside the graph
/// behind a `RefCell` (queries take `&self`); mutating entry points reach it without runtime
/// borrow checks through `RefCell::get_mut`.
#[derive(Clone, Debug, Default)]
pub(crate) struct Scratch {
    /// Visited set for DFS walks.
    pub(crate) visited: EpochVisited,
    /// Second mark set for queries that need membership and visited simultaneously (the exact
    /// cycle oracle marks predecessor slots here while `visited` tracks the DFS).
    pub(crate) marks: EpochVisited,
    /// DFS stack of slots.
    pub(crate) stack: Vec<u32>,
    /// Per-successor (slot, bloom hash pair) cache for the arrival-time cycle test.
    succ_info: Vec<(Option<u32>, (u64, u64))>,
}

/// The transaction dependency graph `G` with nodes `U` and successor edges `V`.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    interner: Interner,
    /// Node slab, parallel to the interner's slot space; `None` marks a recyclable slot.
    nodes: Vec<Option<TxnNode>>,
    pending: PendingList,
    config: CcConfig,
    scratch: RefCell<Scratch>,
}

impl DependencyGraph {
    /// Creates an empty graph with the given concurrency-control configuration.
    pub fn new(config: CcConfig) -> Self {
        DependencyGraph {
            interner: Interner::new(),
            nodes: Vec::new(),
            pending: PendingList::default(),
            config,
            scratch: RefCell::new(Scratch::default()),
        }
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> &CcConfig {
        &self.config
    }

    /// Number of nodes currently tracked (pending + committed, before pruning).
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether the graph tracks no transactions.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Whether `id` is currently tracked.
    pub fn contains(&self, id: TxnId) -> bool {
        self.interner.get(id).is_some()
    }

    /// Immutable access to a node.
    pub fn node(&self, id: TxnId) -> Option<&TxnNode> {
        let slot = self.interner.get(id)?;
        self.nodes[slot as usize].as_ref()
    }

    /// The immediate successors of `id`, as transaction ids (empty if `id` is untracked).
    pub fn successors(&self, id: TxnId) -> Vec<TxnId> {
        self.node(id)
            .map(|n| n.succ.iter().map(|&s| self.interner.id_at(s)).collect())
            .unwrap_or_default()
    }

    /// The immediate predecessors of `id`, as transaction ids (empty if `id` is untracked).
    pub fn predecessors(&self, id: TxnId) -> Vec<TxnId> {
        self.node(id)
            .map(|n| n.pred.iter().map(|&p| self.interner.id_at(p)).collect())
            .unwrap_or_default()
    }

    /// The pending transactions in arrival order.
    pub fn pending_ids(&self) -> Vec<TxnId> {
        self.pending.iter().collect()
    }

    /// Number of pending transactions.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Iterates over all nodes in slot order.
    pub fn nodes(&self) -> impl Iterator<Item = &TxnNode> {
        self.nodes.iter().filter_map(Option::as_ref)
    }

    /// Every tracked transaction id (pending and committed-but-unpruned), in slot order.
    /// Membership snapshots only — slot order is an allocation artifact, not a schedule.
    pub fn tracked_ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.nodes().map(|n| n.id)
    }

    /// Total slot space (live + recyclable); sizes the dense per-slot side tables used by the
    /// traversal modules.
    pub(crate) fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// The node stored at a slot (`None` for vacant slots).
    #[inline]
    pub(crate) fn node_at(&self, slot: u32) -> Option<&TxnNode> {
        self.nodes[slot as usize].as_ref()
    }

    /// The transaction id of a **live** slot.
    #[inline]
    pub(crate) fn id_at(&self, slot: u32) -> TxnId {
        self.interner.id_at(slot)
    }

    /// The slot of a tracked transaction.
    #[inline]
    pub(crate) fn slot_of(&self, id: TxnId) -> Option<u32> {
        self.interner.get(id)
    }

    /// The traversal scratch (shared with the `topo` and `cycle` modules).
    pub(crate) fn scratch(&self) -> &RefCell<Scratch> {
        &self.scratch
    }

    /// The earliest commit block among committed nodes still in the graph (`C` in the
    /// two-filter-relay discussion of Section 4.4), if any committed node remains.
    pub fn earliest_committed_block(&self) -> Option<u64> {
        self.nodes().filter_map(|n| n.end_ts.map(|e| e.block)).min()
    }

    /// Section 4.4's cycle test: for each pair `(p, s)` of a predecessor and a successor of the
    /// new transaction, a cycle would be closed iff `s` can already reach `p` (the new
    /// transaction would supply the missing `p → new → s` segment). Membership is tested on
    /// the predecessor's `anti_reachable` filter; a predecessor that is itself a successor is
    /// an immediate two-node cycle.
    ///
    /// The pair loop resolves each id to its interned slot once and precomputes each
    /// successor's bloom probe hashes once, so a scan over `|preds| × |succs|` pairs costs one
    /// filter probe per pair — no hashing, no map lookups — and bails out on the first
    /// (possible) hit.
    pub fn would_close_cycle(&self, preds: &[TxnId], succs: &[TxnId]) -> CycleCheck {
        let mut hit: Option<(TxnId, TxnId)> = None;
        {
            let mut scratch = self.scratch.borrow_mut();
            scratch.succ_info.clear();
            for s in succs {
                scratch
                    .succ_info
                    .push((self.interner.get(*s), BloomFilter::hash_pair(s.0)));
            }
            'pairs: for &p in preds {
                let p_node = self
                    .interner
                    .get(p)
                    .and_then(|slot| self.nodes[slot as usize].as_ref());
                for (i, &s) in succs.iter().enumerate() {
                    if p == s {
                        return CycleCheck::Cycle {
                            confirmed_exact: Some(true),
                        };
                    }
                    let Some(p_node) = p_node else {
                        continue;
                    };
                    let (s_slot, s_hashes) = scratch.succ_info[i];
                    if s_slot.is_none() {
                        continue;
                    }
                    if p_node.anti_reachable.contains_prehashed(s_hashes) {
                        hit = Some((p, s));
                        break 'pairs;
                    }
                }
            }
        }
        match hit {
            None => CycleCheck::Acyclic,
            Some((p, s)) => {
                let p_node = self.node(p).expect("bloom hit implies a tracked pred");
                let confirmed = p_node
                    .anti_reachable
                    .contains_exact(s)
                    .map(|exact| exact || self.reaches_exact(s, p));
                CycleCheck::Cycle {
                    confirmed_exact: confirmed,
                }
            }
        }
    }

    /// Algorithm 4: inserts a pending transaction with the given immediate predecessors and
    /// successors, then propagates reachability to every node reachable from the successors
    /// and bumps their age to `next_block` (the block the new transaction will commit in).
    ///
    /// Predecessor / successor ids that are no longer tracked (already pruned) are ignored —
    /// their edges can no longer participate in any cycle involving future transactions, which
    /// is exactly why pruning was safe.
    ///
    /// The downstream delta (the new node's reachability plus the new node itself) is borrowed
    /// from the stored node for the duration of the walk instead of being cloned per insertion
    /// — the per-insert `ReachSet` clone was the dominant arrival-path cost at production
    /// bloom sizes. The walk itself runs on the epoch-tagged scratch, so a warm graph inserts
    /// without allocating.
    ///
    /// Re-inserting an id that is still tracked is a **no-op** (the node already carries its
    /// edges). Overwriting the slot would leave the old incarnation's neighbour adjacency
    /// pointing at a slot that, once freed and recycled, would silently attach those edges to
    /// an unrelated transaction — callers that replay deliveries (consensus duplicates) rely
    /// on this guard.
    pub fn insert_pending(
        &mut self,
        spec: PendingTxnSpec,
        preds: &[TxnId],
        succs: &[TxnId],
        next_block: u64,
    ) -> InsertReport {
        let id = spec.id;
        if self.interner.get(id).is_some() {
            return InsertReport::default();
        }
        let slot = self.interner.intern(id);
        if slot as usize == self.nodes.len() {
            self.nodes.push(None);
        }
        let mut node = TxnNode {
            id,
            start_ts: spec.start_ts,
            end_ts: None,
            succ: Vec::new(),
            pred: Vec::new(),
            anti_reachable: ReachSet::new(&self.config),
            age: next_block,
            read_keys: spec.read_keys,
            write_keys: spec.write_keys,
        };

        // Wire predecessors: p.succ ∪= {txn}; txn.anti_reachable ∪= {p} ∪ p.anti_reachable.
        for &p in preds {
            if p == id {
                continue;
            }
            let Some(p_slot) = self.interner.get(p) else {
                continue;
            };
            let p_node = self.nodes[p_slot as usize]
                .as_mut()
                .expect("interned slots are live");
            if !p_node.succ.contains(&slot) {
                p_node.succ.push(slot);
                node.pred.push(p_slot);
            }
            node.anti_reachable.insert(p);
            // Split borrow: clone nothing — union from an immutable re-borrow after the push.
            let p_reach = &self.nodes[p_slot as usize]
                .as_ref()
                .expect("interned slots are live")
                .anti_reachable;
            // The borrow above is fine because `node` is a local, not part of the slab yet.
            node.anti_reachable.union_with(p_reach);
        }

        // Wire successors: txn.succ ∪= succs (deduplicated, existing nodes only), mirroring
        // each edge in the successor's predecessor list.
        for &s in succs {
            if s == id {
                continue;
            }
            let Some(s_slot) = self.interner.get(s) else {
                continue;
            };
            if node.succ.contains(&s_slot) {
                continue;
            }
            node.succ.push(s_slot);
            self.nodes[s_slot as usize]
                .as_mut()
                .expect("interned slots are live")
                .pred
                .push(slot);
        }

        let succ_roots = node.succ.clone();
        self.nodes[slot as usize] = Some(node);
        self.pending.push(id);

        // Propagate to every node reachable from the successors (Algorithm 4 lines 5–7): each
        // visited node learns the new transaction's reachability plus the new transaction
        // itself. The delta is moved out of the stored node (the graph is acyclic, so the new
        // node can never appear in its own downstream) and moved back after the walk.
        let delta = {
            let n = self.nodes[slot as usize].as_mut().expect("inserted above");
            std::mem::replace(&mut n.anti_reachable, ReachSet::placeholder())
        };
        let mut hops = 0usize;
        let capacity = self.nodes.len();
        let scratch = self.scratch.get_mut();
        scratch.visited.reset(capacity);
        scratch.visited.insert(slot);
        scratch.stack.clear();
        scratch.stack.extend_from_slice(&succ_roots);
        while let Some(current) = scratch.stack.pop() {
            if !scratch.visited.insert(current) {
                continue;
            }
            let n = self.nodes[current as usize]
                .as_mut()
                .expect("adjacency never dangles");
            hops += 1;
            n.anti_reachable.union_with(&delta);
            n.anti_reachable.insert(id);
            n.age = n.age.max(next_block);
            scratch.stack.extend_from_slice(&n.succ);
        }
        self.nodes[slot as usize]
            .as_mut()
            .expect("inserted above")
            .anti_reachable = delta;

        InsertReport { hops }
    }

    /// Adds a dependency edge `from → to` between two existing nodes *without* touching any
    /// reachability set. Self edges, unknown endpoints and duplicate edges are ignored. Used by
    /// the cross-shard coordinator, which wires a border transaction's per-shard edges first
    /// and then runs one global reachability walk over all of them.
    pub fn add_edge(&mut self, from: TxnId, to: TxnId) {
        if from == to {
            return;
        }
        let (Some(from_slot), Some(to_slot)) = (self.interner.get(from), self.interner.get(to))
        else {
            return;
        };
        let from_node = self.nodes[from_slot as usize]
            .as_mut()
            .expect("interned slots are live");
        if !from_node.succ.contains(&to_slot) {
            from_node.succ.push(to_slot);
            self.nodes[to_slot as usize]
                .as_mut()
                .expect("interned slots are live")
                .pred
                .push(from_slot);
        }
    }

    /// Unions `delta` into `id`'s reachability set, optionally inserting `source` as well, and
    /// raises the node's age to at least `min_age`. This is exactly the per-node update of
    /// Algorithm 4's downstream walk, exposed so the cross-shard coordinator can drive one
    /// *global* walk across several shard graphs while each shard applies the update to its
    /// own copy of the node. A no-op for untracked ids.
    pub fn absorb_reach(
        &mut self,
        id: TxnId,
        delta: &ReachSet,
        source: Option<TxnId>,
        min_age: u64,
    ) {
        let Some(slot) = self.interner.get(id) else {
            return;
        };
        let node = self.nodes[slot as usize]
            .as_mut()
            .expect("interned slots are live");
        node.anti_reachable.union_with(delta);
        if let Some(source) = source {
            node.anti_reachable.insert(source);
        }
        node.age = node.age.max(min_age);
    }

    /// Replaces `id`'s reachability set wholesale. Used by the cross-shard coordinator to keep
    /// every shard's copy of a border transaction carrying the *merged* (global) set — the
    /// invariant that makes per-shard cycle probes give globally correct answers.
    pub fn replace_reach(&mut self, id: TxnId, set: ReachSet) {
        if let Some(slot) = self.interner.get(id) {
            self.nodes[slot as usize]
                .as_mut()
                .expect("interned slots are live")
                .anti_reachable = set;
        }
    }

    /// Moves `id`'s reachability set out of the node, leaving a placeholder. The cross-shard
    /// coordinator borrows a node's set as the downstream-walk delta this way instead of
    /// cloning it (the clone was the dominant coordinator cost at production bloom sizes);
    /// callers must hand the set back via [`DependencyGraph::replace_reach`] before anyone
    /// can observe the placeholder.
    pub fn take_reach(&mut self, id: TxnId) -> Option<ReachSet> {
        let slot = self.interner.get(id)?;
        let node = self.nodes[slot as usize]
            .as_mut()
            .expect("interned slots are live");
        Some(std::mem::replace(
            &mut node.anti_reachable,
            ReachSet::placeholder(),
        ))
    }

    /// Calls `f` with each immediate successor id of `id` — the allocation-free counterpart of
    /// [`DependencyGraph::successors`], used by the cross-shard coordinator's epoch-scratch
    /// walks. A no-op for untracked ids.
    pub(crate) fn for_each_successor(&self, id: TxnId, mut f: impl FnMut(TxnId)) {
        if let Some(node) = self.node(id) {
            for &s in &node.succ {
                f(self.interner.id_at(s));
            }
        }
    }

    /// Adds a dependency edge `from → to` between two existing nodes and unions `from`'s
    /// reachability (plus `from` itself) into `to`. Used by the ww-restoration step
    /// (Algorithm 5), which then propagates further downstream itself in topological order.
    pub fn add_edge_with_union(&mut self, from: TxnId, to: TxnId) {
        if from == to {
            return;
        }
        let (Some(from_slot), Some(to_slot)) = (self.interner.get(from), self.interner.get(to))
        else {
            return;
        };
        let from_node = self.nodes[from_slot as usize]
            .as_mut()
            .expect("interned slots are live");
        if !from_node.succ.contains(&to_slot) {
            from_node.succ.push(to_slot);
            self.nodes[to_slot as usize]
                .as_mut()
                .expect("interned slots are live")
                .pred
                .push(from_slot);
        }
        self.union_through(from_slot, to_slot);
    }

    /// Unions the reachability of `source` (plus `source` itself) into `target` without adding
    /// an edge; used by Algorithm 5's downstream propagation loop.
    pub fn propagate_reachability(&mut self, source: TxnId, target: TxnId) {
        if source == target {
            return;
        }
        let (Some(source_slot), Some(target_slot)) =
            (self.interner.get(source), self.interner.get(target))
        else {
            return;
        };
        self.union_through(source_slot, target_slot);
    }

    /// `target.anti_reachable ∪= source.anti_reachable ∪ {source}` without cloning: the source
    /// set is moved out for the duration of the union and moved back. Callers guarantee
    /// `source != target` and that both slots are live.
    fn union_through(&mut self, source: u32, target: u32) {
        let source_id = self.interner.id_at(source);
        let delta = {
            let s = self.nodes[source as usize]
                .as_mut()
                .expect("caller checked");
            std::mem::replace(&mut s.anti_reachable, ReachSet::placeholder())
        };
        {
            let t = self.nodes[target as usize]
                .as_mut()
                .expect("caller checked");
            t.anti_reachable.union_with(&delta);
            t.anti_reachable.insert(source_id);
        }
        self.nodes[source as usize]
            .as_mut()
            .expect("caller checked")
            .anti_reachable = delta;
    }

    /// Whether the pending pair `(earlier, later)` is already connected in the reachability
    /// structure, i.e. `earlier` can reach `later`. Used by Algorithm 5 to skip redundant ww
    /// edges (the Txn0 → Txn3 case of Figure 9).
    pub fn already_connected(&self, earlier: TxnId, later: TxnId) -> bool {
        self.node(later)
            .map(|n| n.anti_reachable.contains(earlier))
            .unwrap_or(false)
    }

    /// Marks a pending transaction as committed at `end_ts`. The node stays in the graph (its
    /// dependencies may still matter for future cycles) until pruning removes it.
    pub fn mark_committed(&mut self, id: TxnId, end_ts: SeqNo) {
        if let Some(slot) = self.interner.get(id) {
            if let Some(node) = self.nodes[slot as usize].as_mut() {
                node.end_ts = Some(end_ts);
            }
        }
        self.pending.remove(id);
    }

    /// Removes a pending transaction entirely (used by adversarial tests and by callers that
    /// drop a transaction after accepting it). Only the removed node's neighbours are visited
    /// — the predecessor lists make the cleanup O(degree) instead of a full graph scan — and
    /// the freed slot returns to the interner's free list for reuse.
    pub fn remove(&mut self, id: TxnId) {
        self.pending.remove(id);
        let Some(slot) = self.interner.release(id) else {
            return;
        };
        let node = self.nodes[slot as usize]
            .take()
            .expect("interned slots are live");
        for p in node.pred {
            if let Some(p_node) = self.nodes[p as usize].as_mut() {
                p_node.succ.retain(|s| *s != slot);
            }
        }
        for s in node.succ {
            if let Some(s_node) = self.nodes[s as usize].as_mut() {
                s_node.pred.retain(|p| *p != slot);
            }
        }
    }

    /// Exact reachability query over successor edges (DFS on the epoch-tagged scratch). Used
    /// by the test oracles and to classify bloom false positives.
    pub fn reaches_exact(&self, from: TxnId, to: TxnId) -> bool {
        if from == to {
            return true;
        }
        let Some(from_slot) = self.interner.get(from) else {
            return false;
        };
        let Some(to_slot) = self.interner.get(to) else {
            return false;
        };
        let mut scratch = self.scratch.borrow_mut();
        let Scratch { visited, stack, .. } = &mut *scratch;
        visited.reset(self.nodes.len());
        visited.insert(from_slot);
        stack.clear();
        stack.push(from_slot);
        while let Some(current) = stack.pop() {
            let node = self.nodes[current as usize]
                .as_ref()
                .expect("adjacency never dangles");
            for &s in &node.succ {
                if s == to_slot {
                    return true;
                }
                if visited.insert(s) {
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Mutable access to a node — only exposed to the pruning/rebuild modules and tests.
    pub(crate) fn node_mut(&mut self, id: TxnId) -> Option<&mut TxnNode> {
        let slot = self.interner.get(id)?;
        self.nodes[slot as usize].as_mut()
    }

    /// Internal: removes a set of node ids and cleans dangling edge references. Cleanup only
    /// visits the neighbours of removed nodes (via the predecessor mirror), so bulk pruning is
    /// O(removed × degree) instead of O(survivors × successor-list length).
    pub(crate) fn remove_many(&mut self, ids: &HashSet<u64>) {
        if ids.is_empty() {
            return;
        }
        self.pending.remove_all(ids);
        // Release in sorted id order: the interner recycles slots LIFO, so iterating the
        // HashSet directly would make future slot assignments (and thus slot-ordered node
        // walks) depend on hash-seeded iteration order.
        // lint-determinism: allow (sorted immediately below)
        let mut ordered: Vec<u64> = ids.iter().copied().collect();
        ordered.sort_unstable();
        for id in &ordered {
            let Some(slot) = self.interner.release(TxnId(*id)) else {
                continue;
            };
            let node = self.nodes[slot as usize]
                .take()
                .expect("interned slots are live");
            for p in node.pred {
                if let Some(p_node) = self.nodes[p as usize].as_mut() {
                    p_node.succ.retain(|s| *s != slot);
                }
            }
            for s in node.succ {
                if let Some(s_node) = self.nodes[s as usize].as_mut() {
                    s_node.pred.retain(|p| *p != slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_exact() -> CcConfig {
        CcConfig {
            track_exact_reachability: true,
            ..CcConfig::default()
        }
    }

    fn spec(id: u64, snapshot_block: u64) -> PendingTxnSpec {
        PendingTxnSpec {
            id: TxnId(id),
            start_ts: SeqNo::snapshot_after(snapshot_block),
            read_keys: vec![],
            write_keys: vec![],
        }
    }

    /// Checks the succ/pred mirror invariant: every edge appears in exactly both lists and
    /// never dangles.
    fn assert_edge_mirror(g: &DependencyGraph) {
        for node in g.nodes() {
            for s in g.successors(node.id) {
                assert!(
                    g.predecessors(s).contains(&node.id),
                    "edge {:?} → {:?} missing from pred mirror",
                    node.id,
                    s
                );
            }
            for p in g.predecessors(node.id) {
                assert!(
                    g.successors(p).contains(&node.id),
                    "edge {:?} → {:?} missing from succ list",
                    p,
                    node.id
                );
            }
        }
    }

    #[test]
    fn insert_wires_predecessors_and_successors() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);

        assert_eq!(g.len(), 2);
        assert_eq!(g.successors(TxnId(1)), vec![TxnId(2)]);
        assert_eq!(g.predecessors(TxnId(2)), vec![TxnId(1)]);
        assert!(g.node(TxnId(2)).unwrap().anti_reachable.contains(TxnId(1)));
        assert!(g.reaches_exact(TxnId(1), TxnId(2)));
        assert!(!g.reaches_exact(TxnId(2), TxnId(1)));
        assert_eq!(g.pending_ids(), vec![TxnId(1), TxnId(2)]);
        assert_edge_mirror(&g);
    }

    #[test]
    fn reachability_is_transitive_through_unions() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(3, 0), &[TxnId(2)], &[], 1);
        // 1 → 2 → 3: node 3's anti_reachable must contain both 1 and 2.
        let n3 = g.node(TxnId(3)).unwrap();
        assert!(n3.anti_reachable.contains(TxnId(1)));
        assert!(n3.anti_reachable.contains(TxnId(2)));
    }

    #[test]
    fn inserting_with_successors_propagates_downstream() {
        let mut g = DependencyGraph::new(cfg_exact());
        // Existing chain 10 → 11.
        g.insert_pending(spec(10, 0), &[], &[], 1);
        g.insert_pending(spec(11, 0), &[TxnId(10)], &[], 1);
        // New transaction 5 whose successor is 10: everything downstream of 10 must now know
        // that 5 can reach it.
        let report = g.insert_pending(spec(5, 0), &[], &[TxnId(10)], 1);
        assert!(
            report.hops >= 2,
            "should traverse 10 and 11, got {}",
            report.hops
        );
        assert!(g.node(TxnId(10)).unwrap().anti_reachable.contains(TxnId(5)));
        assert!(g.node(TxnId(11)).unwrap().anti_reachable.contains(TxnId(5)));
        assert!(g.reaches_exact(TxnId(5), TxnId(11)));
        assert_edge_mirror(&g);
    }

    /// Regression test for the delta borrow dance: after the downstream walk, the new node
    /// must still own its full reachability set (its predecessors and their reachability) —
    /// taking the set for the walk and failing to restore it would silently disable future
    /// cycle detection through the new node.
    #[test]
    fn insert_restores_the_new_nodes_reach_set_after_propagation() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(7, 0), &[], &[], 1);
        g.insert_pending(spec(8, 0), &[TxnId(7)], &[], 1);
        // New node 5: preds {2}, succs {7} — its stored set must contain 1 and 2 after the
        // downstream walk through 7 and 8.
        g.insert_pending(spec(5, 0), &[TxnId(2)], &[TxnId(7)], 1);
        let n5 = g.node(TxnId(5)).unwrap();
        assert!(n5.anti_reachable.contains(TxnId(1)));
        assert!(n5.anti_reachable.contains(TxnId(2)));
        assert_eq!(n5.anti_reachable.contains_exact(TxnId(1)), Some(true));
        // ...and must NOT contain itself or its downstream.
        assert_eq!(n5.anti_reachable.contains_exact(TxnId(5)), Some(false));
        assert_eq!(n5.anti_reachable.contains_exact(TxnId(7)), Some(false));
        // Downstream nodes learned the full delta: {1, 2, 5}.
        for downstream in [TxnId(7), TxnId(8)] {
            let n = g.node(downstream).unwrap();
            for member in [TxnId(1), TxnId(2), TxnId(5)] {
                assert_eq!(
                    n.anti_reachable.contains_exact(member),
                    Some(true),
                    "{downstream:?} must know {member:?} reaches it"
                );
            }
        }
    }

    #[test]
    fn cycle_detection_catches_pred_reachable_from_succ() {
        let mut g = DependencyGraph::new(cfg_exact());
        // 1 → 2 (1 is a predecessor of 2).
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        // A new transaction with predecessor 2 and successor 1 would close 1 → 2 → new → 1.
        let check = g.would_close_cycle(&[TxnId(2)], &[TxnId(1)]);
        assert!(!check.is_acyclic());
        assert_eq!(
            check,
            CycleCheck::Cycle {
                confirmed_exact: Some(true)
            }
        );
        // The reverse direction (pred 1, succ 2) is fine: new sits between them.
        assert!(g.would_close_cycle(&[TxnId(1)], &[TxnId(2)]).is_acyclic());
    }

    #[test]
    fn same_txn_as_pred_and_succ_is_a_two_node_cycle() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        let check = g.would_close_cycle(&[TxnId(1)], &[TxnId(1)]);
        assert_eq!(
            check,
            CycleCheck::Cycle {
                confirmed_exact: Some(true)
            }
        );
    }

    #[test]
    fn unknown_ids_are_ignored_by_cycle_test_and_insert() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        assert!(g.would_close_cycle(&[TxnId(99)], &[TxnId(1)]).is_acyclic());
        let report = g.insert_pending(spec(2, 0), &[TxnId(77)], &[TxnId(88)], 1);
        assert_eq!(report.hops, 0);
        assert!(g.successors(TxnId(2)).is_empty());
        assert!(g.predecessors(TxnId(2)).is_empty());
    }

    #[test]
    fn mark_committed_moves_out_of_pending_but_keeps_the_node() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.mark_committed(TxnId(1), SeqNo::new(1, 1));
        assert_eq!(g.pending_len(), 0);
        assert!(g.contains(TxnId(1)));
        assert!(!g.node(TxnId(1)).unwrap().is_pending());
        assert_eq!(g.earliest_committed_block(), Some(1));
    }

    #[test]
    fn remove_cleans_successor_references() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.remove(TxnId(2));
        assert!(!g.contains(TxnId(2)));
        assert!(g.successors(TxnId(1)).is_empty());
        assert_eq!(g.pending_len(), 1);
    }

    #[test]
    fn remove_cleans_predecessor_references_too() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(3, 0), &[TxnId(2)], &[], 1);
        g.remove(TxnId(2));
        assert!(g.successors(TxnId(1)).is_empty());
        assert!(g.predecessors(TxnId(3)).is_empty());
        assert_edge_mirror(&g);
    }

    /// Regression test (PR 3 review): re-inserting a still-tracked id must be a no-op.
    /// Overwriting the slot used to leave the old incarnation's neighbour adjacency pointing
    /// at the slot, which after removal either panicked traversals (vacant slot) or — once the
    /// free list recycled it — silently wired the stale edge to an unrelated transaction.
    /// The path is reachable from the orderer: a replayed consensus delivery of a transaction
    /// that was cut into a block but not yet pruned.
    #[test]
    fn reinserting_a_tracked_id_is_a_noop() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(0, 0), &[], &[], 1);
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.mark_committed(TxnId(2), SeqNo::new(1, 1));

        // Replay of txn 2 (still tracked, no longer pending): must change nothing.
        let report = g.insert_pending(spec(2, 0), &[], &[], 2);
        assert_eq!(report, InsertReport::default());
        assert_eq!(g.len(), 3);
        assert_eq!(g.pending_ids(), vec![TxnId(0), TxnId(1)]);
        assert!(!g.node(TxnId(2)).unwrap().is_pending());
        assert_eq!(g.successors(TxnId(1)), vec![TxnId(2)]);
        assert_eq!(g.predecessors(TxnId(2)), vec![TxnId(1)]);
        assert_edge_mirror(&g);

        // The reviewer's corruption scenario: remove the replayed node, then let a fresh
        // transaction recycle its slot — no panic, no phantom reachability.
        g.remove(TxnId(2));
        assert!(g.successors(TxnId(1)).is_empty());
        g.insert_pending(spec(3, 0), &[], &[], 2);
        assert!(!g.reaches_exact(TxnId(1), TxnId(0)));
        assert!(!g.reaches_exact(TxnId(1), TxnId(3)));
        assert_eq!(g.node(TxnId(3)).unwrap().anti_reachable.bloom_popcount(), 0);
        assert_edge_mirror(&g);
    }

    /// Slot recycling must never leak edges from the slot's previous occupant: a new
    /// transaction that inherits a freed slot starts with clean adjacency and a clean filter.
    #[test]
    fn recycled_slots_start_clean() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.remove(TxnId(2));
        // Txn 3 reuses txn 2's slot (free-list LIFO) but has no relation to txn 1.
        g.insert_pending(spec(3, 0), &[], &[], 1);
        assert!(g.successors(TxnId(1)).is_empty());
        assert!(g.predecessors(TxnId(3)).is_empty());
        assert_eq!(g.node(TxnId(3)).unwrap().anti_reachable.bloom_popcount(), 0);
        assert!(!g.reaches_exact(TxnId(1), TxnId(3)));
        assert_edge_mirror(&g);
    }

    #[test]
    fn remove_many_only_touches_neighbours_and_keeps_the_mirror_consistent() {
        let mut g = DependencyGraph::new(cfg_exact());
        // Chain 1 → 2 → 3 → 4 plus a cross edge 1 → 4.
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(3, 0), &[TxnId(2)], &[], 1);
        g.insert_pending(spec(4, 0), &[TxnId(3), TxnId(1)], &[], 1);
        let victims: HashSet<u64> = [2u64, 3].into_iter().collect();
        g.remove_many(&victims);
        assert_eq!(g.len(), 2);
        assert_eq!(g.successors(TxnId(1)), vec![TxnId(4)]);
        assert_eq!(g.predecessors(TxnId(4)), vec![TxnId(1)]);
        assert_eq!(g.pending_ids(), vec![TxnId(1), TxnId(4)]);
        assert_edge_mirror(&g);
    }

    /// Regression test for the pending-list index: removals (commits) must preserve arrival
    /// order for the survivors, across enough churn to trigger slot compaction several times.
    #[test]
    fn pending_order_survives_heavy_commit_churn() {
        let mut g = DependencyGraph::new(cfg_exact());
        for id in 0..200u64 {
            g.insert_pending(spec(id, 0), &[], &[], 1);
        }
        // Commit every even id (forces compaction: >50% tombstones).
        for id in (0..200u64).step_by(2) {
            g.mark_committed(TxnId(id), SeqNo::new(1, 1));
        }
        let expected: Vec<TxnId> = (0..200u64).filter(|id| id % 2 == 1).map(TxnId).collect();
        assert_eq!(g.pending_ids(), expected);
        assert_eq!(g.pending_len(), 100);

        // New arrivals land at the end of the order.
        g.insert_pending(spec(500, 0), &[], &[], 2);
        let ids = g.pending_ids();
        assert_eq!(*ids.last().unwrap(), TxnId(500));
        assert_eq!(ids.len(), 101);

        // Commit everything; pending drains to empty and re-fills cleanly.
        for id in ids {
            g.mark_committed(id, SeqNo::new(2, 1));
        }
        assert_eq!(g.pending_len(), 0);
        g.insert_pending(spec(900, 0), &[], &[], 3);
        assert_eq!(g.pending_ids(), vec![TxnId(900)]);
    }

    #[test]
    fn add_edge_with_union_and_already_connected() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[], &[], 1);
        assert!(!g.already_connected(TxnId(1), TxnId(2)));
        g.add_edge_with_union(TxnId(1), TxnId(2));
        assert!(g.already_connected(TxnId(1), TxnId(2)));
        assert!(g.reaches_exact(TxnId(1), TxnId(2)));
        assert_eq!(g.predecessors(TxnId(2)), vec![TxnId(1)]);
        // Re-adding the same edge does not duplicate the mirror entry.
        g.add_edge_with_union(TxnId(1), TxnId(2));
        assert_eq!(g.predecessors(TxnId(2)), vec![TxnId(1)]);
        // Self edges and unknown nodes are no-ops.
        g.add_edge_with_union(TxnId(1), TxnId(1));
        g.add_edge_with_union(TxnId(9), TxnId(1));
        assert_eq!(g.len(), 2);
        assert_edge_mirror(&g);
    }

    #[test]
    fn propagate_reachability_keeps_the_source_set_intact() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(3, 0), &[], &[], 1);
        g.propagate_reachability(TxnId(2), TxnId(3));
        // Target learned {1, 2}; source still knows {1}.
        let n3 = g.node(TxnId(3)).unwrap();
        assert_eq!(n3.anti_reachable.contains_exact(TxnId(1)), Some(true));
        assert_eq!(n3.anti_reachable.contains_exact(TxnId(2)), Some(true));
        let n2 = g.node(TxnId(2)).unwrap();
        assert_eq!(n2.anti_reachable.contains_exact(TxnId(1)), Some(true));
    }

    #[test]
    fn ages_are_bumped_on_downstream_nodes() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 3);
        g.mark_committed(TxnId(1), SeqNo::new(3, 1));
        assert_eq!(g.node(TxnId(1)).unwrap().age, 3);
        // New transaction for block 7 whose successor is 1: 1's age must be bumped to 7.
        g.insert_pending(spec(2, 5), &[], &[TxnId(1)], 7);
        assert_eq!(g.node(TxnId(1)).unwrap().age, 7);
        assert_eq!(g.node(TxnId(2)).unwrap().age, 7);
    }

    #[test]
    fn bloom_only_configuration_reports_unconfirmed_cycles() {
        let mut g = DependencyGraph::new(CcConfig::default());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        match g.would_close_cycle(&[TxnId(2)], &[TxnId(1)]) {
            CycleCheck::Cycle { confirmed_exact } => assert_eq!(confirmed_exact, None),
            CycleCheck::Acyclic => panic!("expected a cycle"),
        }
    }
}
