//! Runs every experiment harness in sequence (Figure 1, Table 1, Figures 10–15) — the one
//! command that regenerates all the data behind `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p eov-bench --bin all_experiments            # full sweeps
//! FABRICSHARP_BENCH_SECS=3 cargo run --release -p eov-bench --bin all_experiments   # quick pass
//! cargo run --release -p eov-bench --bin all_experiments -- --grid  # just print Table 2
//! ```

use eov_common::config::ExperimentGrid;
use std::process::Command;

fn main() {
    if std::env::args().any(|a| a == "--grid") {
        let grid = ExperimentGrid::default();
        println!("Table 2 — experiment parameters (defaults underlined in the paper):");
        println!(
            "  # of transactions per block : {:?} (default 100)",
            grid.block_sizes
        );
        println!(
            "  Write hot ratio (%)         : {:?} (default 10)",
            grid.write_hot_ratios
        );
        println!(
            "  Read hot ratio (%)          : {:?} (default 10)",
            grid.read_hot_ratios
        );
        println!(
            "  Client delay (ms)           : {:?} (default 0)",
            grid.client_delays_ms
        );
        println!(
            "  Read interval (ms)          : {:?} (default 0)",
            grid.read_intervals_ms
        );
        println!("  Figure 1 Zipfian θ          : {:?}", grid.figure1_thetas);
        println!("  Figure 15 Zipfian θ         : {:?}", grid.figure15_thetas);
        return;
    }

    let binaries = [
        "fig01_motivation",
        "table1_example",
        "fig10_block_size",
        "fig11_write_hot",
        "fig12_read_hot",
        "fig13_client_delay",
        "fig14_read_interval",
        "fig15_fastfabric",
    ];
    for binary in binaries {
        println!("\n################ {binary} ################\n");
        // Re-invoking through cargo would rebuild; run the sibling binary directly from the
        // same target directory this binary was launched from.
        let current = std::env::current_exe().expect("current executable path");
        let sibling = current.parent().expect("target directory").join(binary);
        let status = Command::new(&sibling)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {}: {e}", sibling.display()));
        if !status.success() {
            eprintln!("{binary} exited with {status}");
            std::process::exit(1);
        }
    }
}
