//! Determinism harness for the dependency-graph-driven parallel commit scheduler.
//!
//! `E = CcConfig::execution_threads` turns block commit into Block-STM-style wave execution:
//! the committed topo order is decomposed into conflict-free waves (widened by the static
//! template conflict matrix) that execute and apply concurrently against the sharded store.
//! Parallelism claims like this are only credible when serial equivalence is *tested* under
//! adversarial schedules, so this battery pins the hard invariant end to end: ledgers, final
//! store contents and reports must be **bit-identical** to the inline serial reference
//! (`E = 0`) at every tested `S` (store shards) × `W` (formation threads) × `E` combination,
//! for all five systems, on workloads chosen to stress both ends of the spectrum — a
//! write-partitioned YCSB-B mix (wide conflict-free waves, heavy matrix widening) and a 100%
//! cross-shard YCSB-F mix (maximal conflict pressure, frequent single-txn waves and serial
//! fallbacks).

use fabricsharp::baselines::{ParallelChain, SimpleChain, SystemKind};
use fabricsharp::common::config::WorkloadParams;
use fabricsharp::core::pipeline::EndorseLogic;
use fabricsharp::sim::runner::{SimulationConfig, Simulator};
use fabricsharp::sim::SimReport;
use fabricsharp::workload::generator::{TxnTemplate, WorkloadGenerator, WorkloadKind};
use fabricsharp::workload::YcsbProfile;

const STORE_SHARDS: [usize; 3] = [0, 2, 4];
const FORMATION_THREADS: [usize; 2] = [0, 2];
const EXECUTION_THREADS: [usize; 4] = [0, 1, 2, 4];

fn workloads() -> Vec<(&'static str, WorkloadKind)> {
    vec![
        // Writes confined to the tail 20% of the key space: most of the mix is read-only or
        // write-disjoint, so the planner forms wide waves and the static matrix widens the
        // read-heavy templates past the key checks.
        (
            "ycsb-b-writepart20",
            WorkloadKind::Ycsb(YcsbProfile::b().with_write_partition(0.2)),
        ),
        // Every transaction spans shards and collides: the worst case for wave formation —
        // mostly singleton waves plus validation-driven serial fallbacks.
        (
            "ycsb-f-cross100",
            WorkloadKind::Ycsb(YcsbProfile::f().with_cross_shard(4, 1.0)),
        ),
    ]
}

fn base_config(system: SystemKind, workload: WorkloadKind) -> SimulationConfig {
    let mut config = SimulationConfig::new(system, workload);
    config.duration_s = 1.0;
    config.params.num_accounts = 300;
    config.params.request_rate_tps = 300;
    config.block.max_txns_per_block = 30;
    config.seed = 7;
    config
}

/// Asserts every `E`-independent report field matches. `commit` (wall-clock timing) and
/// `wave` (zeros at `E = 0`, populated otherwise) are deliberately excluded — they describe
/// *how* the run executed, not *what* it committed.
fn assert_reports_match(context: &str, reference: &SimReport, candidate: &SimReport) {
    assert_eq!(reference.offered, candidate.offered, "{context}: offered");
    assert_eq!(
        reference.committed, candidate.committed,
        "{context}: committed"
    );
    assert_eq!(
        reference.in_ledger, candidate.in_ledger,
        "{context}: in_ledger"
    );
    assert_eq!(reference.blocks, candidate.blocks, "{context}: blocks");
    assert_eq!(reference.aborts, candidate.aborts, "{context}: aborts");
    assert_eq!(
        reference.committed_with_anti_rw, candidate.committed_with_anti_rw,
        "{context}: anti-rw commits"
    );
    assert_eq!(
        reference.safe_tagged, candidate.safe_tagged,
        "{context}: safe-tagged"
    );
}

/// The acceptance criterion: for every system × workload, every `S` × `W` × `E` combination
/// reproduces the all-inline reference ledger block for block — and within each `(S, W)`
/// cell, every `E >= 1` run leaves the store byte-identical to that cell's `E = 0` run
/// (same backend shape, so the comparison is exact) with an identical wave decomposition at
/// every thread count.
#[test]
fn ledgers_and_stores_are_bit_identical_at_every_execution_thread_count() {
    for system in SystemKind::all() {
        for (name, workload) in workloads() {
            let reference_cfg = base_config(system, workload.clone());
            let (reference_report, reference_ledger, _) = Simulator::run_full(&reference_cfg);
            assert!(
                reference_report.committed > 0,
                "{system}/{name}: reference run must commit work"
            );

            for shards in STORE_SHARDS {
                for formation in FORMATION_THREADS {
                    // This cell's serial-commit run: the store oracle for every E >= 1.
                    let mut serial_cfg = reference_cfg.clone();
                    serial_cfg.store_shards = shards;
                    serial_cfg.formation_threads = formation;
                    let (serial_report, serial_ledger, serial_store) =
                        Simulator::run_full(&serial_cfg);
                    let serial_store = format!("{serial_store:?}");
                    let cell = format!("{system}/{name}/S{shards}/W{formation}");
                    assert_reports_match(&cell, &reference_report, &serial_report);
                    assert_eq!(
                        reference_ledger.tip_hash(),
                        serial_ledger.tip_hash(),
                        "{cell}: serial tip hash"
                    );

                    let mut cell_wave = None;
                    for execution in EXECUTION_THREADS {
                        if execution == 0 {
                            continue; // that is the cell's serial oracle itself
                        }
                        let mut cfg = serial_cfg.clone();
                        cfg.execution_threads = execution;
                        let (report, ledger, store) = Simulator::run_full(&cfg);
                        let context = format!("{cell}/E{execution}");

                        assert_reports_match(&context, &reference_report, &report);
                        assert_eq!(
                            serial_ledger.height(),
                            ledger.height(),
                            "{context}: ledger height"
                        );
                        for (expected, actual) in serial_ledger.iter().zip(ledger.iter()) {
                            assert_eq!(
                                expected,
                                actual,
                                "{context}: block {} diverged",
                                expected.number()
                            );
                        }
                        assert_eq!(
                            serial_ledger.tip_hash(),
                            ledger.tip_hash(),
                            "{context}: tip hash"
                        );
                        assert!(ledger.verify_integrity().is_ok(), "{context}: integrity");
                        assert_eq!(
                            serial_store,
                            format!("{store:?}"),
                            "{context}: store contents diverged from serial commit"
                        );
                        // The wave decomposition is a pure function of the committed blocks:
                        // every E >= 1 must plan the same waves.
                        assert!(
                            report.wave.blocks > 0,
                            "{context}: scheduler must have planned waves"
                        );
                        match &cell_wave {
                            None => cell_wave = Some(report.wave),
                            Some(expected) => assert_eq!(
                                *expected, report.wave,
                                "{context}: wave decomposition diverged across E"
                            ),
                        }
                    }
                }
            }
        }
    }
}

/// Transaction-level pinning on the chain harnesses: `SimpleChain` and `ParallelChain` driven
/// in lockstep at `E ∈ {0, 2}` must agree on every decision, every block's commit order and
/// the chain hashes — and the scheduling chains must actually have planned waves.
#[test]
fn chain_harnesses_match_the_serial_commit_at_every_execution_thread_count() {
    let workload = WorkloadKind::Ycsb(YcsbProfile::f().with_cross_shard(4, 1.0));
    let params = WorkloadParams {
        num_accounts: 12,
        ..Default::default()
    };
    let mut generator = WorkloadGenerator::new(workload, params, 99);

    let mut reference = SimpleChain::new(SystemKind::FabricSharp);
    let mut simple_waved = SimpleChain::with_execution_threads(SystemKind::FabricSharp, 4, 2);
    reference.seed(generator.genesis());
    simple_waved.seed(generator.genesis());

    for i in 0..120usize {
        let template = generator.next_template();
        let txn_ref = reference.execute(|ctx| template.run(ctx));
        let txn_simple = simple_waved.execute(|ctx| template.run(ctx));
        assert_eq!(txn_ref, txn_simple, "endorsement diverged at txn {i}");

        let d_ref = reference.submit(txn_ref);
        let d_simple = simple_waved.submit(txn_simple);
        assert_eq!(d_ref, d_simple, "decision diverged at txn {i} (S4/E2)");

        if (i + 1) % 10 == 0 {
            let b_ref = reference.seal_block();
            let b_simple = simple_waved.seal_block();
            assert_eq!(
                b_ref.committed, b_simple.committed,
                "commit order diverged at block {:?} (S4/E2)",
                b_ref.block_number
            );
        }
    }
    reference.seal_block();
    simple_waved.seal_block();
    assert_eq!(
        reference.ledger().tip_hash(),
        simple_waved.ledger().tip_hash(),
        "SimpleChain E=2 tip hash"
    );
    assert!(
        simple_waved.wave_stats().scheduled_txns > 0,
        "the waved chain must actually have scheduled transactions"
    );

    // ParallelChain batch drive: same template stream through a serial-commit chain and a
    // wave-scheduled chain (sharded endorsement + threaded committer on both); every block's
    // commit order and the final chain hashes must agree.
    fn to_logic(templates: &[TxnTemplate]) -> Vec<EndorseLogic> {
        templates
            .iter()
            .cloned()
            .map(|t| {
                let logic: EndorseLogic = Box::new(move |ctx| t.run(ctx));
                logic
            })
            .collect()
    }
    let mut generator = WorkloadGenerator::new(
        WorkloadKind::Ycsb(YcsbProfile::f().with_cross_shard(4, 1.0)),
        WorkloadParams {
            num_accounts: 12,
            ..Default::default()
        },
        99,
    );
    let mut parallel_serial =
        ParallelChain::with_execution_threads(SystemKind::FabricSharp, 2, 4, 0);
    let mut parallel_waved =
        ParallelChain::with_execution_threads(SystemKind::FabricSharp, 2, 4, 2);
    parallel_serial.seed(generator.genesis());
    parallel_waved.seed(generator.genesis());
    for _ in 0..12 {
        let batch: Vec<TxnTemplate> = (0..10).map(|_| generator.next_template()).collect();
        let decisions_serial = parallel_serial.submit_batch(to_logic(&batch));
        let decisions_waved = parallel_waved.submit_batch(to_logic(&batch));
        assert_eq!(
            decisions_serial, decisions_waved,
            "early decisions diverged"
        );
        let report_serial = parallel_serial.seal_block();
        let report_waved = parallel_waved.seal_block();
        assert_eq!(
            report_serial.committed, report_waved.committed,
            "ParallelChain commit order diverged at block {:?}",
            report_serial.block_number
        );
    }
    assert_eq!(
        parallel_serial.ledger().tip_hash(),
        parallel_waved.ledger().tip_hash(),
        "ParallelChain E=0 vs E=2 tip hash"
    );
    assert!(parallel_serial.ledger().committed_txn_count() > 0);
    assert!(
        parallel_waved.wave_stats().scheduled_txns > 0,
        "the waved parallel chain must actually have scheduled transactions"
    );
}

/// Repeated runs of the same heavily parallel configuration reproduce each other exactly —
/// no scheduling nondeterminism leaks into ledger, store or wave plan even at S4/W2/E4.
#[test]
fn parallel_commit_runs_are_reproducible_across_invocations() {
    let mut cfg = base_config(
        SystemKind::FabricSharp,
        WorkloadKind::Ycsb(YcsbProfile::f().with_cross_shard(4, 1.0)),
    );
    cfg.store_shards = 4;
    cfg.formation_threads = 2;
    cfg.execution_threads = 4;
    let (report_a, ledger_a, store_a) = Simulator::run_full(&cfg);
    let (report_b, ledger_b, store_b) = Simulator::run_full(&cfg);
    assert_reports_match("repeat", &report_a, &report_b);
    assert_eq!(report_a.wave, report_b.wave, "repeat: wave stats");
    assert_eq!(ledger_a.tip_hash(), ledger_b.tip_hash());
    assert_eq!(
        format!("{store_a:?}"),
        format!("{store_b:?}"),
        "repeat: store"
    );
    assert!(report_a.committed > 0);
    assert!(report_a.wave.blocks > 0, "scheduler must have run");
}
