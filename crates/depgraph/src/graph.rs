//! The transaction dependency graph (Sections 4.3–4.5).
//!
//! Every transaction accepted by the FabricSharp orderer becomes a node. Edges follow the
//! *dependency order* (`from` must be serialized before `to`) and are stored as immediate
//! successor lists (`succ`). In addition, each node carries `anti_reachable`: a set — a bloom
//! filter, optionally shadowed by an exact set for the ablation experiments — of every
//! transaction that can reach it. Cycle detection for a new transaction then reduces to
//! membership tests between its prospective predecessors and successors (Section 4.4), and
//! Algorithm 4's reachability maintenance reduces to bit-vector unions.

use crate::bloom::BloomFilter;
use eov_common::config::CcConfig;
use eov_common::rwset::Key;
use eov_common::txn::TxnId;
use eov_common::version::SeqNo;
use std::collections::{HashMap, HashSet};

/// The set of transactions that can reach a node.
///
/// Always backed by a bloom filter (the production representation); when
/// [`CcConfig::track_exact_reachability`] is enabled an exact `HashSet` is maintained
/// alongside, which lets tests and the ablation benchmarks distinguish genuine cycles from
/// bloom false positives.
#[derive(Clone, Debug)]
pub struct ReachSet {
    bloom: BloomFilter,
    exact: Option<HashSet<u64>>,
}

impl ReachSet {
    /// Creates an empty reach set with the given bloom geometry.
    pub fn new(config: &CcConfig) -> Self {
        ReachSet {
            bloom: BloomFilter::new(config.bloom_bits, config.bloom_hashes),
            exact: config.track_exact_reachability.then(HashSet::new),
        }
    }

    /// Inserts a transaction id.
    pub fn insert(&mut self, id: TxnId) {
        self.bloom.insert(id.0);
        if let Some(exact) = &mut self.exact {
            exact.insert(id.0);
        }
    }

    /// Membership test against the bloom filter (may be a false positive).
    pub fn contains(&self, id: TxnId) -> bool {
        self.bloom.contains(id.0)
    }

    /// Exact membership, if exact tracking is enabled.
    pub fn contains_exact(&self, id: TxnId) -> Option<bool> {
        self.exact.as_ref().map(|s| s.contains(&id.0))
    }

    /// Unions `other` into `self`.
    pub fn union_with(&mut self, other: &ReachSet) {
        self.bloom.union_with(&other.bloom);
        if let (Some(mine), Some(theirs)) = (&mut self.exact, &other.exact) {
            mine.extend(theirs.iter().copied());
        }
    }

    /// Number of set bits in the bloom filter (saturation diagnostics).
    pub fn bloom_popcount(&self) -> u32 {
        self.bloom.popcount()
    }
}

/// A node of the dependency graph.
#[derive(Clone, Debug)]
pub struct TxnNode {
    /// The transaction this node represents.
    pub id: TxnId,
    /// Start timestamp (Definition 3): the snapshot the transaction was simulated against.
    pub start_ts: SeqNo,
    /// End timestamp (Definition 4) once the transaction has been placed in a block; `None`
    /// while it is still pending.
    pub end_ts: Option<SeqNo>,
    /// Immediate successors in dependency order.
    pub succ: Vec<TxnId>,
    /// Every transaction that can reach this node (bloom-filter representation).
    pub anti_reachable: ReachSet,
    /// Age (Section 4.6): the highest block number such that a transaction destined for that
    /// block can reach this node. Nodes whose age falls behind the pruning threshold can never
    /// join a future cycle and are removed.
    pub age: u64,
    /// Keys read by the transaction (kept for ww restoration and diagnostics).
    pub read_keys: Vec<Key>,
    /// Keys written by the transaction.
    pub write_keys: Vec<Key>,
}

impl TxnNode {
    /// Whether the node is still pending (not yet assigned a block slot).
    pub fn is_pending(&self) -> bool {
        self.end_ts.is_none()
    }
}

/// Specification of a new pending transaction to be inserted into the graph.
#[derive(Clone, Debug)]
pub struct PendingTxnSpec {
    /// Transaction id.
    pub id: TxnId,
    /// Start timestamp (snapshot sequence number).
    pub start_ts: SeqNo,
    /// Keys read during simulation.
    pub read_keys: Vec<Key>,
    /// Keys written during simulation.
    pub write_keys: Vec<Key>,
}

/// Outcome of the cycle test performed before inserting a new transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleCheck {
    /// No predecessor is reachable from any successor: inserting the transaction keeps the
    /// graph acyclic.
    Acyclic,
    /// Some successor (possibly) reaches some predecessor. `confirmed_exact` reports whether
    /// the exact shadow structure (if enabled) agrees — `Some(false)` marks a bloom false
    /// positive, which still aborts the transaction (preventive abort, Section 4.4).
    Cycle {
        /// `Some(true)` — the exact structure confirms the cycle; `Some(false)` — bloom false
        /// positive; `None` — exact tracking disabled.
        confirmed_exact: Option<bool>,
    },
}

impl CycleCheck {
    /// Whether the transaction may be inserted.
    pub fn is_acyclic(&self) -> bool {
        matches!(self, CycleCheck::Acyclic)
    }
}

/// Report returned by [`DependencyGraph::insert_pending`]; feeds the Figure 13 statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InsertReport {
    /// Number of nodes visited while propagating reachability to the new transaction's
    /// descendants ("# of hops" in Figure 13).
    pub hops: usize,
}

/// The transaction dependency graph `G` with nodes `U` and successor edges `V`.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    nodes: HashMap<u64, TxnNode>,
    /// Pending transactions in arrival order (the set `P` of Algorithms 2 and 3).
    pending: Vec<TxnId>,
    config: CcConfig,
}

impl DependencyGraph {
    /// Creates an empty graph with the given concurrency-control configuration.
    pub fn new(config: CcConfig) -> Self {
        DependencyGraph {
            nodes: HashMap::new(),
            pending: Vec::new(),
            config,
        }
    }

    /// The configuration the graph was built with.
    pub fn config(&self) -> &CcConfig {
        &self.config
    }

    /// Number of nodes currently tracked (pending + committed, before pruning).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph tracks no transactions.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is currently tracked.
    pub fn contains(&self, id: TxnId) -> bool {
        self.nodes.contains_key(&id.0)
    }

    /// Immutable access to a node.
    pub fn node(&self, id: TxnId) -> Option<&TxnNode> {
        self.nodes.get(&id.0)
    }

    /// The pending transactions in arrival order.
    pub fn pending_ids(&self) -> &[TxnId] {
        &self.pending
    }

    /// Number of pending transactions.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Iterates over all nodes in unspecified order.
    pub fn nodes(&self) -> impl Iterator<Item = &TxnNode> {
        self.nodes.values()
    }

    /// The earliest commit block among committed nodes still in the graph (`C` in the
    /// two-filter-relay discussion of Section 4.4), if any committed node remains.
    pub fn earliest_committed_block(&self) -> Option<u64> {
        self.nodes
            .values()
            .filter_map(|n| n.end_ts.map(|e| e.block))
            .min()
    }

    /// Section 4.4's cycle test: for each pair `(p, s)` of a predecessor and a successor of the
    /// new transaction, a cycle would be closed iff `s` can already reach `p` (the new
    /// transaction would supply the missing `p → new → s` segment). Membership is tested on
    /// the predecessor's `anti_reachable` filter; a predecessor that is itself a successor is
    /// an immediate two-node cycle.
    pub fn would_close_cycle(&self, preds: &[TxnId], succs: &[TxnId]) -> CycleCheck {
        for &p in preds {
            for &s in succs {
                if p == s {
                    return CycleCheck::Cycle {
                        confirmed_exact: Some(true),
                    };
                }
                let Some(p_node) = self.nodes.get(&p.0) else {
                    continue;
                };
                if !self.nodes.contains_key(&s.0) {
                    continue;
                }
                if p_node.anti_reachable.contains(s) {
                    let confirmed = p_node
                        .anti_reachable
                        .contains_exact(s)
                        .map(|exact| exact || self.reaches_exact(s, p));
                    return CycleCheck::Cycle {
                        confirmed_exact: confirmed,
                    };
                }
            }
        }
        CycleCheck::Acyclic
    }

    /// Algorithm 4: inserts a pending transaction with the given immediate predecessors and
    /// successors, then propagates reachability to every node reachable from the successors
    /// and bumps their age to `next_block` (the block the new transaction will commit in).
    ///
    /// Predecessor / successor ids that are no longer tracked (already pruned) are ignored —
    /// their edges can no longer participate in any cycle involving future transactions, which
    /// is exactly why pruning was safe.
    pub fn insert_pending(
        &mut self,
        spec: PendingTxnSpec,
        preds: &[TxnId],
        succs: &[TxnId],
        next_block: u64,
    ) -> InsertReport {
        let mut node = TxnNode {
            id: spec.id,
            start_ts: spec.start_ts,
            end_ts: None,
            succ: Vec::new(),
            anti_reachable: ReachSet::new(&self.config),
            age: next_block,
            read_keys: spec.read_keys,
            write_keys: spec.write_keys,
        };

        // Wire predecessors: p.succ ∪= {txn}; txn.anti_reachable ∪= {p} ∪ p.anti_reachable.
        for &p in preds {
            if p == spec.id {
                continue;
            }
            let Some(p_node) = self.nodes.get_mut(&p.0) else {
                continue;
            };
            if !p_node.succ.contains(&spec.id) {
                p_node.succ.push(spec.id);
            }
            node.anti_reachable.insert(p);
            // Split borrow: clone nothing — union from an immutable re-borrow after the push.
            let p_reach = &self.nodes[&p.0].anti_reachable;
            // The borrow above is fine because `node` is a local, not part of the map yet.
            nodewise_union(&mut node.anti_reachable, p_reach);
        }

        // Wire successors: txn.succ ∪= succs (deduplicated, existing nodes only).
        for &s in succs {
            if s == spec.id {
                continue;
            }
            if self.nodes.contains_key(&s.0) && !node.succ.contains(&s) {
                node.succ.push(s);
            }
        }

        // What must be pushed downstream: everything that can reach the new transaction,
        // including the new transaction itself.
        let mut delta = node.anti_reachable.clone();
        delta.insert(spec.id);
        let succ_roots = node.succ.clone();

        self.nodes.insert(spec.id.0, node);
        self.pending.push(spec.id);

        // Propagate to every node reachable from the successors (Algorithm 4 lines 5–7).
        let mut hops = 0usize;
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack: Vec<TxnId> = succ_roots;
        while let Some(current) = stack.pop() {
            if !visited.insert(current.0) {
                continue;
            }
            let Some(n) = self.nodes.get_mut(&current.0) else {
                continue;
            };
            hops += 1;
            nodewise_union(&mut n.anti_reachable, &delta);
            n.age = n.age.max(next_block);
            stack.extend(n.succ.iter().copied());
        }

        InsertReport { hops }
    }

    /// Adds a dependency edge `from → to` between two existing nodes and unions `from`'s
    /// reachability (plus `from` itself) into `to`. Used by the ww-restoration step
    /// (Algorithm 5), which then propagates further downstream itself in topological order.
    pub fn add_edge_with_union(&mut self, from: TxnId, to: TxnId) {
        if from == to || !self.nodes.contains_key(&from.0) || !self.nodes.contains_key(&to.0) {
            return;
        }
        let mut delta = self.nodes[&from.0].anti_reachable.clone();
        delta.insert(from);
        let from_node = self.nodes.get_mut(&from.0).expect("checked above");
        if !from_node.succ.contains(&to) {
            from_node.succ.push(to);
        }
        let to_node = self.nodes.get_mut(&to.0).expect("checked above");
        nodewise_union(&mut to_node.anti_reachable, &delta);
    }

    /// Unions the reachability of `source` (plus `source` itself) into `target` without adding
    /// an edge; used by Algorithm 5's downstream propagation loop.
    pub fn propagate_reachability(&mut self, source: TxnId, target: TxnId) {
        if source == target
            || !self.nodes.contains_key(&source.0)
            || !self.nodes.contains_key(&target.0)
        {
            return;
        }
        let mut delta = self.nodes[&source.0].anti_reachable.clone();
        delta.insert(source);
        let target_node = self.nodes.get_mut(&target.0).expect("checked above");
        nodewise_union(&mut target_node.anti_reachable, &delta);
    }

    /// Whether the pending pair `(earlier, later)` is already connected in the reachability
    /// structure, i.e. `earlier` can reach `later`. Used by Algorithm 5 to skip redundant ww
    /// edges (the Txn0 → Txn3 case of Figure 9).
    pub fn already_connected(&self, earlier: TxnId, later: TxnId) -> bool {
        self.nodes
            .get(&later.0)
            .map(|n| n.anti_reachable.contains(earlier))
            .unwrap_or(false)
    }

    /// Marks a pending transaction as committed at `end_ts`. The node stays in the graph (its
    /// dependencies may still matter for future cycles) until pruning removes it.
    pub fn mark_committed(&mut self, id: TxnId, end_ts: SeqNo) {
        if let Some(node) = self.nodes.get_mut(&id.0) {
            node.end_ts = Some(end_ts);
        }
        self.pending.retain(|t| *t != id);
    }

    /// Removes a pending transaction entirely (used by adversarial tests and by callers that
    /// drop a transaction after accepting it). Successor references to it are cleaned up.
    pub fn remove(&mut self, id: TxnId) {
        self.nodes.remove(&id.0);
        self.pending.retain(|t| *t != id);
        for node in self.nodes.values_mut() {
            node.succ.retain(|s| *s != id);
        }
    }

    /// Exact reachability query over successor edges (DFS). Used by the test oracles, by the
    /// pending-set topological sort, and to classify bloom false positives.
    pub fn reaches_exact(&self, from: TxnId, to: TxnId) -> bool {
        if from == to {
            return true;
        }
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack = vec![from];
        while let Some(current) = stack.pop() {
            if !visited.insert(current.0) {
                continue;
            }
            let Some(node) = self.nodes.get(&current.0) else {
                continue;
            };
            for &s in &node.succ {
                if s == to {
                    return true;
                }
                stack.push(s);
            }
        }
        false
    }

    /// Mutable access to a node's age — only exposed to the pruning module and tests.
    pub(crate) fn node_mut(&mut self, id: TxnId) -> Option<&mut TxnNode> {
        self.nodes.get_mut(&id.0)
    }

    /// Internal: removes a set of node ids and cleans dangling successor references.
    pub(crate) fn remove_many(&mut self, ids: &HashSet<u64>) {
        if ids.is_empty() {
            return;
        }
        self.nodes.retain(|id, _| !ids.contains(id));
        self.pending.retain(|t| !ids.contains(&t.0));
        for node in self.nodes.values_mut() {
            node.succ.retain(|s| !ids.contains(&s.0));
        }
    }
}

/// Free-function union helper: unions `source` into `target`. Lives outside the impl so the
/// borrow checker sees it cannot touch the rest of the graph.
fn nodewise_union(target: &mut ReachSet, source: &ReachSet) {
    target.union_with(source);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_exact() -> CcConfig {
        CcConfig {
            track_exact_reachability: true,
            ..CcConfig::default()
        }
    }

    fn spec(id: u64, snapshot_block: u64) -> PendingTxnSpec {
        PendingTxnSpec {
            id: TxnId(id),
            start_ts: SeqNo::snapshot_after(snapshot_block),
            read_keys: vec![],
            write_keys: vec![],
        }
    }

    #[test]
    fn insert_wires_predecessors_and_successors() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);

        assert_eq!(g.len(), 2);
        assert_eq!(g.node(TxnId(1)).unwrap().succ, vec![TxnId(2)]);
        assert!(g.node(TxnId(2)).unwrap().anti_reachable.contains(TxnId(1)));
        assert!(g.reaches_exact(TxnId(1), TxnId(2)));
        assert!(!g.reaches_exact(TxnId(2), TxnId(1)));
        assert_eq!(g.pending_ids(), &[TxnId(1), TxnId(2)]);
    }

    #[test]
    fn reachability_is_transitive_through_unions() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(3, 0), &[TxnId(2)], &[], 1);
        // 1 → 2 → 3: node 3's anti_reachable must contain both 1 and 2.
        let n3 = g.node(TxnId(3)).unwrap();
        assert!(n3.anti_reachable.contains(TxnId(1)));
        assert!(n3.anti_reachable.contains(TxnId(2)));
    }

    #[test]
    fn inserting_with_successors_propagates_downstream() {
        let mut g = DependencyGraph::new(cfg_exact());
        // Existing chain 10 → 11.
        g.insert_pending(spec(10, 0), &[], &[], 1);
        g.insert_pending(spec(11, 0), &[TxnId(10)], &[], 1);
        // New transaction 5 whose successor is 10: everything downstream of 10 must now know
        // that 5 can reach it.
        let report = g.insert_pending(spec(5, 0), &[], &[TxnId(10)], 1);
        assert!(
            report.hops >= 2,
            "should traverse 10 and 11, got {}",
            report.hops
        );
        assert!(g.node(TxnId(10)).unwrap().anti_reachable.contains(TxnId(5)));
        assert!(g.node(TxnId(11)).unwrap().anti_reachable.contains(TxnId(5)));
        assert!(g.reaches_exact(TxnId(5), TxnId(11)));
    }

    #[test]
    fn cycle_detection_catches_pred_reachable_from_succ() {
        let mut g = DependencyGraph::new(cfg_exact());
        // 1 → 2 (1 is a predecessor of 2).
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        // A new transaction with predecessor 2 and successor 1 would close 1 → 2 → new → 1.
        let check = g.would_close_cycle(&[TxnId(2)], &[TxnId(1)]);
        assert!(!check.is_acyclic());
        assert_eq!(
            check,
            CycleCheck::Cycle {
                confirmed_exact: Some(true)
            }
        );
        // The reverse direction (pred 1, succ 2) is fine: new sits between them.
        assert!(g.would_close_cycle(&[TxnId(1)], &[TxnId(2)]).is_acyclic());
    }

    #[test]
    fn same_txn_as_pred_and_succ_is_a_two_node_cycle() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        let check = g.would_close_cycle(&[TxnId(1)], &[TxnId(1)]);
        assert_eq!(
            check,
            CycleCheck::Cycle {
                confirmed_exact: Some(true)
            }
        );
    }

    #[test]
    fn unknown_ids_are_ignored_by_cycle_test_and_insert() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        assert!(g.would_close_cycle(&[TxnId(99)], &[TxnId(1)]).is_acyclic());
        let report = g.insert_pending(spec(2, 0), &[TxnId(77)], &[TxnId(88)], 1);
        assert_eq!(report.hops, 0);
        assert!(g.node(TxnId(2)).unwrap().succ.is_empty());
    }

    #[test]
    fn mark_committed_moves_out_of_pending_but_keeps_the_node() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.mark_committed(TxnId(1), SeqNo::new(1, 1));
        assert_eq!(g.pending_len(), 0);
        assert!(g.contains(TxnId(1)));
        assert!(!g.node(TxnId(1)).unwrap().is_pending());
        assert_eq!(g.earliest_committed_block(), Some(1));
    }

    #[test]
    fn remove_cleans_successor_references() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        g.remove(TxnId(2));
        assert!(!g.contains(TxnId(2)));
        assert!(g.node(TxnId(1)).unwrap().succ.is_empty());
        assert_eq!(g.pending_len(), 1);
    }

    #[test]
    fn add_edge_with_union_and_already_connected() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[], &[], 1);
        assert!(!g.already_connected(TxnId(1), TxnId(2)));
        g.add_edge_with_union(TxnId(1), TxnId(2));
        assert!(g.already_connected(TxnId(1), TxnId(2)));
        assert!(g.reaches_exact(TxnId(1), TxnId(2)));
        // Self edges and unknown nodes are no-ops.
        g.add_edge_with_union(TxnId(1), TxnId(1));
        g.add_edge_with_union(TxnId(9), TxnId(1));
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn ages_are_bumped_on_downstream_nodes() {
        let mut g = DependencyGraph::new(cfg_exact());
        g.insert_pending(spec(1, 0), &[], &[], 3);
        g.mark_committed(TxnId(1), SeqNo::new(3, 1));
        assert_eq!(g.node(TxnId(1)).unwrap().age, 3);
        // New transaction for block 7 whose successor is 1: 1's age must be bumped to 7.
        g.insert_pending(spec(2, 5), &[], &[TxnId(1)], 7);
        assert_eq!(g.node(TxnId(1)).unwrap().age, 7);
        assert_eq!(g.node(TxnId(2)).unwrap().age, 7);
    }

    #[test]
    fn bloom_only_configuration_reports_unconfirmed_cycles() {
        let mut g = DependencyGraph::new(CcConfig::default());
        g.insert_pending(spec(1, 0), &[], &[], 1);
        g.insert_pending(spec(2, 0), &[TxnId(1)], &[], 1);
        match g.would_close_cycle(&[TxnId(2)], &[TxnId(1)]) {
            CycleCheck::Cycle { confirmed_exact } => assert_eq!(confirmed_exact, None),
            CycleCheck::Acyclic => panic!("expected a cycle"),
        }
    }
}
