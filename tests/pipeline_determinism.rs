//! Determinism harness for the concurrent EOV pipeline.
//!
//! The concurrent runner (sharded endorser workers + committer thread) must be *observably
//! identical* to the single-threaded reference: same seed → same ledger, block for block,
//! hash for hash. This is the replication requirement of Section 3.5 extended to the stage
//! executor — worker interleavings may vary freely, but nothing about them may leak into the
//! consensus-visible outcome.
//!
//! The harness sweeps ≥3 seeds × 2 workloads and compares the inline run (`endorser_shards ==
//! 0`) against 1, 2 and 4 shards, plus the `ParallelChain` facade against `SimpleChain`.

use fabricsharp::baselines::{ParallelChain, SimpleChain, SystemKind};
use fabricsharp::common::rwset::{Key, Value};
use fabricsharp::core::pipeline::EndorseLogic;
use fabricsharp::sim::runner::{SimulationConfig, Simulator};
use fabricsharp::sim::SimReport;
use fabricsharp::workload::generator::WorkloadKind;

const SEEDS: [u64; 3] = [1, 7, 42];
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn workloads() -> Vec<(&'static str, WorkloadKind)> {
    vec![
        ("modified-smallbank", WorkloadKind::ModifiedSmallbank),
        ("kv-zipf-0.9", WorkloadKind::KvUpdate { theta: 0.9 }),
    ]
}

fn base_config(system: SystemKind, workload: WorkloadKind, seed: u64) -> SimulationConfig {
    let mut config = SimulationConfig::new(system, workload);
    config.duration_s = 1.5;
    config.params.num_accounts = 500;
    config.params.request_rate_tps = 400;
    config.block.max_txns_per_block = 40;
    config.seed = seed;
    config
}

fn assert_reports_match(context: &str, reference: &SimReport, candidate: &SimReport) {
    assert_eq!(reference.offered, candidate.offered, "{context}: offered");
    assert_eq!(
        reference.committed, candidate.committed,
        "{context}: committed"
    );
    assert_eq!(
        reference.in_ledger, candidate.in_ledger,
        "{context}: in_ledger"
    );
    assert_eq!(reference.blocks, candidate.blocks, "{context}: blocks");
    assert_eq!(reference.aborts, candidate.aborts, "{context}: aborts");
    assert_eq!(
        reference.committed_with_anti_rw, candidate.committed_with_anti_rw,
        "{context}: anti-rw commits"
    );
}

/// The core acceptance criterion: for every seed × workload, every shard count produces a
/// ledger identical to the single-threaded reference — same heights, same per-block entries
/// (transactions *and* statuses), same chain hashes.
#[test]
fn concurrent_runner_reproduces_the_single_threaded_ledger() {
    for (name, workload) in workloads() {
        for seed in SEEDS {
            let reference_cfg = base_config(SystemKind::FabricSharp, workload.clone(), seed);
            let (reference_report, reference_ledger) = Simulator::run_with_ledger(&reference_cfg);
            assert!(
                reference_report.committed > 0,
                "{name}/seed{seed}: reference run must commit work"
            );

            for shards in SHARD_COUNTS {
                let mut cfg = reference_cfg.clone();
                cfg.endorser_shards = shards;
                let (report, ledger) = Simulator::run_with_ledger(&cfg);
                let context = format!("{name}/seed{seed}/shards{shards}");

                assert_reports_match(&context, &reference_report, &report);
                assert_eq!(
                    reference_ledger.height(),
                    ledger.height(),
                    "{context}: ledger height"
                );
                for (expected, actual) in reference_ledger.iter().zip(ledger.iter()) {
                    assert_eq!(
                        expected,
                        actual,
                        "{context}: block {} diverged",
                        expected.number()
                    );
                }
                assert_eq!(
                    reference_ledger.tip_hash(),
                    ledger.tip_hash(),
                    "{context}: tip hash"
                );
                assert!(ledger.verify_integrity().is_ok(), "{context}: integrity");
            }
        }
    }
}

/// The MVCC-validated path (vanilla Fabric, including its endorsement-lock re-simulation)
/// must be deterministic across stage backends too, not just FabricSharp's validation-free
/// path.
#[test]
fn concurrent_runner_is_deterministic_for_fabric_too() {
    for seed in SEEDS {
        let reference_cfg = base_config(
            SystemKind::Fabric,
            WorkloadKind::KvUpdate { theta: 0.9 },
            seed,
        );
        let (reference_report, reference_ledger) = Simulator::run_with_ledger(&reference_cfg);
        let mut cfg = reference_cfg.clone();
        cfg.endorser_shards = 2;
        let (report, ledger) = Simulator::run_with_ledger(&cfg);
        let context = format!("fabric/seed{seed}");
        assert_reports_match(&context, &reference_report, &report);
        assert_eq!(reference_ledger.tip_hash(), ledger.tip_hash(), "{context}");
    }
}

/// Repeated concurrent runs of the *same* configuration agree with each other (no hidden
/// dependence on thread scheduling between two equally-sharded runs).
#[test]
fn concurrent_runs_are_self_consistent_across_repetitions() {
    let mut cfg = base_config(SystemKind::FabricSharp, WorkloadKind::ModifiedSmallbank, 7);
    cfg.endorser_shards = 4;
    let (report_a, ledger_a) = Simulator::run_with_ledger(&cfg);
    let (report_b, ledger_b) = Simulator::run_with_ledger(&cfg);
    assert_reports_match("repeat", &report_a, &report_b);
    assert_eq!(ledger_a.tip_hash(), ledger_b.tip_hash());
}

fn transfer_batch(round: u64, accounts: usize) -> Vec<EndorseLogic> {
    (0..4usize)
        .map(|i| {
            let from = Key::new(format!("acct{}", (i + round as usize) % accounts));
            let to = Key::new(format!("acct{}", (i + round as usize * 3 + 1) % accounts));
            let logic: EndorseLogic = Box::new(move |ctx| {
                let f = ctx.read_balance(&from);
                let t = ctx.read_balance(&to);
                ctx.write(from.clone(), Value::from_i64(f - 1));
                ctx.write(to.clone(), Value::from_i64(t + 1));
            });
            logic
        })
        .collect()
}

/// Cross-facade determinism: driving the same contract batches through `SimpleChain`
/// (sequential) and `ParallelChain` (sharded endorsement + committer thread) yields identical
/// ledgers for every system and shard count.
#[test]
fn parallel_chain_matches_simple_chain_block_for_block() {
    const ACCOUNTS: usize = 8;
    for kind in SystemKind::all() {
        // Reference: the synchronous facade.
        let mut simple = SimpleChain::new(kind);
        simple.seed((0..ACCOUNTS).map(|i| (Key::new(format!("acct{i}")), Value::from_i64(100))));
        for round in 0..6u64 {
            for logic in transfer_batch(round, ACCOUNTS) {
                let txn = simple.execute(|ctx| logic(ctx));
                let _ = simple.submit(txn);
            }
            simple.seal_block();
        }

        for shards in SHARD_COUNTS {
            let mut parallel = ParallelChain::new(kind, shards);
            parallel
                .seed((0..ACCOUNTS).map(|i| (Key::new(format!("acct{i}")), Value::from_i64(100))));
            for round in 0..6u64 {
                parallel.submit_batch(transfer_batch(round, ACCOUNTS));
                parallel.seal_block();
            }

            let context = format!("{kind}/shards{shards}");
            assert_eq!(
                simple.ledger().height(),
                parallel.ledger().height(),
                "{context}: height"
            );
            for (expected, actual) in simple.ledger().iter().zip(parallel.ledger().iter()) {
                assert_eq!(
                    expected,
                    actual,
                    "{context}: block {} diverged",
                    expected.number()
                );
            }
            assert_eq!(
                simple.ledger().tip_hash(),
                parallel.ledger().tip_hash(),
                "{context}: tip hash"
            );
            assert_eq!(
                simple.committed_history().len(),
                parallel.committed_history().len(),
                "{context}: committed history"
            );
        }
    }
}
