//! `FabricSharpCC`: the orderer-side fine-grained concurrency control (Section 3.4 / Figure 8).
//!
//! This struct owns everything the FabricSharp ordering service adds to a vanilla orderer:
//!
//! * the transaction dependency graph `G` with bloom-filter reachability,
//! * the committed-transaction indices CW / CR and the pending indices PW / PR,
//! * the accepted-but-not-yet-blocked transactions (the pending set `P`),
//! * the statistics the evaluation section reports.
//!
//! The two entry points mirror Figure 8: [`FabricSharpCC::on_arrival`] (Algorithm 2, called
//! for every transaction delivered by consensus, in order) and [`FabricSharpCC::cut_block`]
//! (Algorithm 3, called when the block-formation condition fires). Peers running FabricSharp
//! skip the per-transaction concurrency validation entirely — every transaction placed in a
//! block is guaranteed serializable, which is checked end-to-end by the property tests against
//! the offline oracle in [`crate::serializability`].

use crate::stats::CcStats;
use eov_common::config::CcConfig;
use eov_common::shard::ShardRouter;
use eov_common::txn::{Transaction, TxnId};
use eov_depgraph::GraphEngine;
use eov_vstore::ShardedIndices;
use std::collections::HashMap;

/// The FabricSharp orderer-side concurrency control.
///
/// Since the key-space sharding refactor the graph and the CW/CR/PW/PR indices live behind
/// the [`GraphEngine`] / [`ShardedIndices`] dispatch: `CcConfig::store_shards == 0` selects
/// the unsharded reference engine, `S >= 1` selects `S` per-shard graphs and index partitions
/// behind the cross-shard coordinator. Every algorithm below is written once against that
/// surface, and both configurations produce bit-identical decisions (asserted end to end by
/// `tests/sharding_determinism.rs`).
#[derive(Debug)]
pub struct FabricSharpCC {
    pub(crate) config: CcConfig,
    pub(crate) graph: GraphEngine,
    pub(crate) indices: ShardedIndices,
    /// Accepted transactions waiting for the next block, keyed by id.
    pub(crate) pending_txns: HashMap<u64, Transaction>,
    /// Number of the block currently being assembled (the first block is 1).
    pub(crate) next_block: u64,
    /// Monotone acceptance counter: every accepted transaction (graph-tracked or fast-path)
    /// takes the next value. Mirrors the graph's pending-list slot order, so the template
    /// fast path can splice untracked transactions back into the commit order at exactly the
    /// position the reference topo sort would have given them.
    pub(crate) arrival_seq: u64,
    /// Acceptance sequence of every pending transaction, keyed by id.
    pub(crate) pending_seq: HashMap<u64, u64>,
    /// Pending transactions that took the template fast path (never graph-inserted), in
    /// acceptance order.
    pub(crate) safe_pending: Vec<TxnId>,
    pub(crate) stats: CcStats,
    /// Pipelined formation: the open window, if a sealed block is forming on the worker.
    pub(crate) inflight: Option<crate::frontier::InflightFormation>,
    /// Pipelined formation: a formed block that was joined (possibly force-joined by a window
    /// event) but not yet claimed by [`FabricSharpCC::finish_cut`].
    pub(crate) formed_ready: Option<crate::frontier::FormedBlock>,
    /// Pipelined formation: the worker thread, spawned lazily at the first seal.
    pub(crate) worker: Option<crate::frontier::FormationWorker>,
}

impl FabricSharpCC {
    /// Creates a controller with the given configuration, starting at block 1.
    pub fn new(config: CcConfig) -> Self {
        let router = if config.store_shards == 0 {
            ShardRouter::unsharded()
        } else {
            ShardRouter::hash(config.store_shards)
        };
        FabricSharpCC {
            graph: GraphEngine::new(config),
            indices: ShardedIndices::new(router),
            config,
            pending_txns: HashMap::new(),
            next_block: 1,
            arrival_seq: 0,
            pending_seq: HashMap::new(),
            safe_pending: Vec::new(),
            stats: CcStats::default(),
            inflight: None,
            formed_ready: None,
            worker: None,
        }
    }

    /// Creates a controller with the default configuration (`max_span = 10`, 4096-bit blooms).
    pub fn with_defaults() -> Self {
        Self::new(CcConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> &CcConfig {
        &self.config
    }

    /// The number of the block currently being assembled.
    pub fn next_block(&self) -> u64 {
        self.next_block
    }

    /// Number of transactions accepted and waiting for the next block.
    pub fn pending_len(&self) -> usize {
        self.pending_txns.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &CcStats {
        &self.stats
    }

    /// Read access to the dependency-graph engine (tests, diagnostics, benches).
    pub fn graph(&self) -> &GraphEngine {
        &self.graph
    }

    /// Read access to the sharded CW/CR/PW/PR indices (tests and diagnostics).
    pub fn indices(&self) -> &ShardedIndices {
        &self.indices
    }

    /// Looks up an accepted pending transaction.
    pub fn pending_txn(&self, id: TxnId) -> Option<&Transaction> {
        self.pending_txns.get(&id.0)
    }

    /// Bootstrap / recovery: registers a transaction that committed *outside* this controller
    /// (e.g. in blocks formed before the orderer joined, or blocks replayed from the ledger).
    /// The transaction's dependencies are resolved against the current indices, it is inserted
    /// into the graph as a committed node, and the committed-read/-write indices are updated so
    /// future arrivals see its conflicts. Transactions already known to the controller (i.e.
    /// ones it cut itself) are ignored, as are transactions without a commit slot.
    pub fn register_committed(&mut self, txn: &Transaction) {
        let Some(slot) = txn.end_ts else { return };
        // Pipelined formation: while a sealed block is forming, answer from the seal-time
        // snapshot when the phased reference would have returned early; otherwise join the
        // cut and fall through to the normal path.
        if self.formation_inflight() && self.committed_registration_is_noop(txn) {
            return;
        }
        // `knows` also covers transactions this controller committed via the template fast
        // path: they were never graph-inserted, but the untracked-commit log remembers them,
        // so a replayed delivery of the block must not re-register them.
        if self.graph.knows(txn.id) {
            return;
        }
        // Template fast path: a statically safe transaction never participates in any
        // dependency, so replaying it needs no graph node and no committed-index entries —
        // nothing ever resolves against its keys. Log it so future replays and arrivals see
        // it as known, exactly like a committed graph node until it ages out.
        if self.config.template_fastpath && txn.template_class.is_safe() {
            self.graph.note_untracked_commit(txn.id, slot.block);
            self.next_block = self.next_block.max(slot.block + 1);
            return;
        }
        let resolved = crate::dependency::resolve_sharded(txn, &self.indices);
        let spec = eov_depgraph::PendingTxnSpec {
            id: txn.id,
            start_ts: txn.start_ts(),
            read_keys: txn.read_set.keys().cloned().collect(),
            write_keys: txn.write_set.keys().cloned().collect(),
        };
        self.graph.insert_pending(
            spec,
            &resolved.global.predecessors,
            &resolved.global.successors,
            &resolved.per_shard,
            slot.block,
        );
        self.graph.mark_committed(txn.id, slot);
        for read in txn.read_set.iter() {
            self.indices.record_cr(read.key.clone(), slot, txn.id);
        }
        for write in txn.write_set.iter() {
            self.indices.record_cw(write.key.clone(), slot, txn.id);
            self.indices.drop_stale_readers(&write.key, slot);
        }
        self.next_block = self.next_block.max(slot.block + 1);
    }

    /// Drops an accepted pending transaction (used by adversarial scenarios and tests only;
    /// the normal pipeline never un-accepts a transaction).
    pub fn withdraw(&mut self, id: TxnId) -> Option<Transaction> {
        // Pipelined formation: un-accepting a transaction rewrites graph and index state the
        // forming block may depend on — always land the cut first.
        if self.formation_inflight() {
            self.join_inflight(true);
        }
        let txn = self.pending_txns.remove(&id.0)?;
        self.graph.remove(id);
        self.indices.remove_pending_txn(id);
        self.pending_seq.remove(&id.0);
        self.safe_pending.retain(|s| *s != id);
        Some(txn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::rwset::{Key, Value};
    use eov_common::version::SeqNo;

    #[test]
    fn construction_defaults() {
        let cc = FabricSharpCC::with_defaults();
        assert_eq!(cc.next_block(), 1);
        assert_eq!(cc.pending_len(), 0);
        assert_eq!(cc.config().max_span, 10);
        assert_eq!(cc.stats().arrivals, 0);
        assert!(cc.graph().is_empty());
    }

    #[test]
    fn withdraw_removes_all_traces() {
        let mut cc = FabricSharpCC::with_defaults();
        let txn = Transaction::from_parts(
            1,
            0,
            [(Key::new("A"), SeqNo::new(0, 1))],
            [(Key::new("B"), Value::from_i64(1))],
        );
        assert!(cc.on_arrival(txn).is_accept());
        assert_eq!(cc.pending_len(), 1);
        assert!(cc.pending_txn(TxnId(1)).is_some());

        let withdrawn = cc.withdraw(TxnId(1)).unwrap();
        assert_eq!(withdrawn.id, TxnId(1));
        assert_eq!(cc.pending_len(), 0);
        assert!(!cc.graph().contains(TxnId(1)));
        assert!(cc.withdraw(TxnId(1)).is_none());
    }
}
