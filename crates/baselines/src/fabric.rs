//! Vanilla Hyperledger Fabric v1.3.
//!
//! Fabric's ordering service is completely oblivious to transaction semantics: transactions
//! are batched in consensus order, and all concurrency control happens in the validation phase
//! at the peers (the MVCC staleness check of Section 2.1). During the execute phase Fabric
//! holds a read-write lock so a simulation always runs against the latest block — it can never
//! read across blocks, but the lock serialises endorsement against block commit (the
//! performance cliff under long-running transactions seen in Figure 14). The lock's timing
//! effect is modelled by the simulator's Fabric profile; this type only implements the
//! (trivial) orderer-side behaviour.

use crate::api::{ConcurrencyControl, SystemKind};
use eov_common::txn::{CommitDecision, Transaction};
use eov_common::version::SeqNo;

/// The vanilla Fabric "concurrency control": FIFO batching, validation at the peers.
#[derive(Debug, Default)]
pub struct FabricCC {
    pending: Vec<Transaction>,
    next_block: u64,
}

impl FabricCC {
    /// Creates a new instance starting at block 1.
    pub fn new() -> Self {
        FabricCC {
            pending: Vec::new(),
            next_block: 1,
        }
    }

    /// The number of the block currently being assembled.
    pub fn next_block(&self) -> u64 {
        self.next_block
    }
}

impl ConcurrencyControl for FabricCC {
    fn kind(&self) -> SystemKind {
        SystemKind::Fabric
    }

    fn on_arrival(&mut self, txn: Transaction) -> CommitDecision {
        self.pending.push(txn);
        CommitDecision::Accept
    }

    fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn cut_block(&mut self) -> Vec<Transaction> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let block_no = self.next_block;
        self.next_block += 1;
        std::mem::take(&mut self.pending)
            .into_iter()
            .enumerate()
            .map(|(i, mut txn)| {
                txn.end_ts = Some(SeqNo::new(block_no, i as u32 + 1));
                txn
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::rwset::{Key, Value};

    fn txn(id: u64) -> Transaction {
        Transaction::from_parts(
            id,
            0,
            [(Key::new("A"), SeqNo::new(0, 1))],
            [(Key::new("B"), Value::from_i64(1))],
        )
    }

    #[test]
    fn fifo_order_is_preserved_and_slots_assigned() {
        let mut cc = FabricCC::new();
        for id in [5u64, 3, 9] {
            assert!(cc.on_arrival(txn(id)).is_accept());
        }
        assert_eq!(cc.pending_len(), 3);
        let block = cc.cut_block();
        let ids: Vec<u64> = block.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![5, 3, 9]);
        assert_eq!(block[0].end_ts, Some(SeqNo::new(1, 1)));
        assert_eq!(block[2].end_ts, Some(SeqNo::new(1, 3)));
        assert_eq!(cc.next_block(), 2);
        assert_eq!(cc.pending_len(), 0);
    }

    #[test]
    fn empty_cut_does_not_advance_the_block_number() {
        let mut cc = FabricCC::new();
        assert!(cc.cut_block().is_empty());
        assert_eq!(cc.next_block(), 1);
    }

    #[test]
    fn fabric_requires_peer_validation_and_never_aborts_early() {
        let mut cc = FabricCC::new();
        assert!(cc.needs_peer_validation());
        assert!(cc.on_endorsement(&txn(1), 10).is_accept());
        assert!(cc.early_aborts().is_empty());
        assert_eq!(cc.kind(), SystemKind::Fabric);
    }
}
