//! Pending-transaction indices: `PendingWriteTxns` (PW) and `PendingReadTxns` (PR).
//!
//! Section 4.3: besides the committed-transaction indices, the orderer keeps two in-memory
//! indices over the transactions that have been accepted for the *next* block but are not yet
//! committed. `PW` maps each key to the pending transactions that will write it, `PR` to the
//! pending transactions that read it. Both are consulted when resolving the dependencies of a
//! newly arrived transaction and are cleared when the block is formed.

use eov_common::rwset::Key;
use eov_common::txn::TxnId;
use std::collections::HashMap;

/// An index from keys to the pending transactions that access them. One instance is used for
/// writes (PW) and one for reads (PR).
#[derive(Clone, Debug, Default)]
pub struct PendingIndex {
    by_key: HashMap<Key, Vec<TxnId>>,
}

impl PendingIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that pending transaction `txn` accesses `key`. Arrival order is preserved per
    /// key; duplicates (the same transaction touching the same key twice) are ignored.
    pub fn record(&mut self, key: Key, txn: TxnId) {
        let txns = self.by_key.entry(key).or_default();
        if !txns.contains(&txn) {
            txns.push(txn);
        }
    }

    /// The pending transactions that access `key`, in arrival order.
    pub fn get(&self, key: &Key) -> &[TxnId] {
        self.by_key.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Iterates over `(key, pending transactions)` pairs in arbitrary order. Used by the
    /// ww-restoration step (Algorithm 5) which walks every key written by pending transactions.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &[TxnId])> {
        // lint-determinism: allow (ww-restoration sorts the collected keys before use)
        self.by_key.iter().map(|(k, v)| (k, v.as_slice()))
    }

    /// Removes a single transaction from every key's list (used when an accepted transaction is
    /// later dropped, e.g. by an adversarial-orderer test).
    pub fn remove_txn(&mut self, txn: TxnId) {
        // lint-determinism: allow (removal from every list is commutative across keys)
        for txns in self.by_key.values_mut() {
            txns.retain(|t| *t != txn);
        }
        // lint-determinism: allow (pure emptiness filter, order-insensitive)
        self.by_key.retain(|_, txns| !txns.is_empty());
    }

    /// Clears the index (block formation empties the pending set).
    pub fn clear(&mut self) {
        self.by_key.clear();
    }

    /// Number of keys with at least one pending accessor.
    pub fn key_count(&self) -> usize {
        self.by_key.len()
    }

    /// Total number of `(key, txn)` associations.
    pub fn entry_count(&self) -> usize {
        // lint-determinism: allow (sum over lists is commutative)
        self.by_key.values().map(Vec::len).sum()
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    #[test]
    fn records_preserve_arrival_order_and_dedupe() {
        let mut pw = PendingIndex::new();
        pw.record(k("A"), TxnId(3));
        pw.record(k("A"), TxnId(1));
        pw.record(k("A"), TxnId(3)); // duplicate
        pw.record(k("B"), TxnId(2));

        assert_eq!(pw.get(&k("A")), &[TxnId(3), TxnId(1)]);
        assert_eq!(pw.get(&k("B")), &[TxnId(2)]);
        assert_eq!(pw.get(&k("C")), &[] as &[TxnId]);
        assert_eq!(pw.key_count(), 2);
        assert_eq!(pw.entry_count(), 3);
    }

    #[test]
    fn remove_txn_drops_it_everywhere() {
        let mut pw = PendingIndex::new();
        pw.record(k("A"), TxnId(1));
        pw.record(k("A"), TxnId(2));
        pw.record(k("B"), TxnId(1));
        pw.remove_txn(TxnId(1));
        assert_eq!(pw.get(&k("A")), &[TxnId(2)]);
        assert!(pw.get(&k("B")).is_empty());
        // Keys whose lists became empty are removed entirely.
        assert_eq!(pw.key_count(), 1);
    }

    #[test]
    fn clear_empties_the_index() {
        let mut pr = PendingIndex::new();
        pr.record(k("A"), TxnId(1));
        assert!(!pr.is_empty());
        pr.clear();
        assert!(pr.is_empty());
        assert_eq!(pr.entry_count(), 0);
    }

    #[test]
    fn iter_visits_every_key_once() {
        let mut pw = PendingIndex::new();
        pw.record(k("A"), TxnId(1));
        pw.record(k("B"), TxnId(2));
        pw.record(k("B"), TxnId(3));
        let mut seen: Vec<(String, usize)> = pw
            .iter()
            .map(|(key, txns)| (key.as_str().to_string(), txns.len()))
            .collect();
        seen.sort();
        assert_eq!(seen, vec![("A".to_string(), 1), ("B".to_string(), 2)]);
    }
}
