//! Sequence numbers, record versions and transaction timestamps.
//!
//! The paper (Section 3.1) observes that a blockchain's `(block, seq)` sequence numbers have
//! the same properties as database timestamps: atomicity, monotony, total order and a unique
//! mapping to snapshots. We therefore use one type, [`SeqNo`], for
//!
//! * record versions — "key `C` was last written by the 1st transaction of block 2" is
//!   version `(2, 1)` (Figure 2a);
//! * start timestamps — a transaction simulated against the snapshot after block `M` has
//!   `StartTs = (M + 1, 0)` (Definition 3 and footnote 1);
//! * end timestamps — the commit position assigned by consensus, `EndTs = (block, seq)` with
//!   `seq >= 1` (Definition 4).
//!
//! Sequence numbers are ordered lexicographically, e.g. `(2,1) < (2,2) < (3,0)`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A two-component blockchain sequence number `(block, seq)`.
///
/// `seq == 0` denotes the *snapshot* position right after `block - 1` committed (the paper
/// writes the snapshot of block `M` as `(M + 1, 0)`); positions `seq >= 1` are transaction
/// slots inside `block`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SeqNo {
    /// Block height component.
    pub block: u64,
    /// Intra-block transaction position (0 is reserved for snapshots).
    pub seq: u32,
}

impl SeqNo {
    /// Creates a sequence number from its two components.
    pub const fn new(block: u64, seq: u32) -> Self {
        SeqNo { block, seq }
    }

    /// The snapshot sequence number of the state *after* `block` has committed, i.e.
    /// `(block + 1, 0)` per the paper's footnote 1.
    pub const fn snapshot_after(block: u64) -> Self {
        SeqNo {
            block: block + 1,
            seq: 0,
        }
    }

    /// The zero sequence number `(0, 0)`, used as the genesis version.
    pub const fn zero() -> Self {
        SeqNo { block: 0, seq: 0 }
    }

    /// Returns `true` if this sequence number denotes a snapshot position (`seq == 0`).
    pub const fn is_snapshot(&self) -> bool {
        self.seq == 0
    }

    /// The smallest transaction slot inside `block`, `(block, 1)`.
    pub const fn first_in_block(block: u64) -> Self {
        SeqNo { block, seq: 1 }
    }

    /// Returns the sequence number of the next transaction slot in the same block.
    pub const fn next_in_block(&self) -> Self {
        SeqNo {
            block: self.block,
            seq: self.seq + 1,
        }
    }
}

impl fmt::Debug for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.block, self.seq)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.block, self.seq)
    }
}

impl From<(u64, u32)> for SeqNo {
    fn from((block, seq): (u64, u32)) -> Self {
        SeqNo { block, seq }
    }
}

/// A transaction's start timestamp (Definition 3): the sequence number of the snapshot it
/// read from. Always a snapshot position `(M + 1, 0)`.
pub type StartTs = SeqNo;

/// A transaction's end timestamp (Definition 4): its commit slot `(block, seq)` as decided by
/// consensus, with `seq >= 1`.
pub type EndTs = SeqNo;

/// Definition 5 (concurrent transactions): two transactions are concurrent when their
/// executions overlap — the one that ends later must have started before the other ended.
///
/// Both arguments are `(StartTs, EndTs)` pairs. The predicate is symmetric.
pub fn concurrent(a: (StartTs, EndTs), b: (StartTs, EndTs)) -> bool {
    let (start_a, end_a) = a;
    let (start_b, end_b) = b;
    if end_a < end_b {
        start_b < end_a
    } else if end_b < end_a {
        start_a < end_b
    } else {
        // Same end timestamp means the same commit slot, which only happens when comparing a
        // transaction with itself; a transaction trivially overlaps itself.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order_matches_paper_example() {
        // The paper: (2,1) < (2,2) = (2,2) < (3,0).
        assert!(SeqNo::new(2, 1) < SeqNo::new(2, 2));
        assert_eq!(SeqNo::new(2, 2), SeqNo::new(2, 2));
        assert!(SeqNo::new(2, 2) < SeqNo::new(3, 0));
    }

    #[test]
    fn snapshot_after_block() {
        assert_eq!(SeqNo::snapshot_after(2), SeqNo::new(3, 0));
        assert!(SeqNo::snapshot_after(2).is_snapshot());
        assert!(!SeqNo::first_in_block(3).is_snapshot());
    }

    #[test]
    fn same_block_transactions_are_concurrent() {
        // Proposition 2: two transactions committed in the same block M (positions p < q) are
        // concurrent because the later one can read at most from block M-1.
        let m = 5;
        let txn1 = (SeqNo::snapshot_after(m - 1), SeqNo::new(m, 1));
        let txn2 = (SeqNo::snapshot_after(m - 1), SeqNo::new(m, 2));
        assert!(concurrent(txn1, txn2));
        assert!(concurrent(txn2, txn1));
    }

    #[test]
    fn cross_block_transactions_can_be_concurrent() {
        // Proposition 3 / Figure 4: Txn1 committed at (M,1) and Txn2 committed at (M+1,1) but
        // simulated against a block earlier than M are still concurrent.
        let m = 7;
        let txn1 = (SeqNo::snapshot_after(m - 2), SeqNo::new(m, 1));
        let txn2 = (SeqNo::snapshot_after(m - 1), SeqNo::new(m + 1, 1));
        assert!(concurrent(txn1, txn2));

        // Figure 4 also shows Txn1 and Txn3 are NOT concurrent: Txn3 reads the snapshot after
        // block M, i.e. after Txn1 committed.
        let txn3 = (SeqNo::snapshot_after(m), SeqNo::new(m + 1, 2));
        assert!(!concurrent(txn1, txn3));
        assert!(!concurrent(txn3, txn1));
        // ...while Txn2 and Txn3 share block M+1 and are concurrent (Proposition 2).
        assert!(concurrent(txn2, txn3));
    }

    #[test]
    fn non_overlapping_transactions_are_not_concurrent() {
        let early = (SeqNo::snapshot_after(0), SeqNo::new(1, 1));
        let late = (SeqNo::snapshot_after(1), SeqNo::new(2, 1));
        assert!(!concurrent(early, late));
    }

    #[test]
    fn display_and_debug_render_pairs() {
        let s = SeqNo::new(3, 2);
        assert_eq!(format!("{s}"), "(3,2)");
        assert_eq!(format!("{s:?}"), "(3,2)");
    }

    #[test]
    fn next_in_block_increments_seq_only() {
        let s = SeqNo::new(4, 1).next_in_block();
        assert_eq!(s, SeqNo::new(4, 2));
    }
}
