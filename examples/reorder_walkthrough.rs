//! The paper's Figure 2a / Table 1 scenario, replayed against all five systems.
//!
//! Run with:
//! ```text
//! cargo run --example reorder_walkthrough
//! ```
//!
//! Five transactions contend on keys A, B, C after block 2. Vanilla Fabric commits only Txn3;
//! Fabric++'s in-block reordering saves Txn4 and Txn5 instead; FabricSharp's fine-grained
//! analysis additionally rejects the hopeless transactions before they ever occupy a block
//! slot. The example prints the per-system commit matrix in the same shape as Table 1.

use fabricsharp::baselines::api::{mvcc_validate_and_apply, SystemKind};
use fabricsharp::core::theory::figure2a_fixture;
use fabricsharp::prelude::*;

fn main() {
    println!("Figure 2a / Table 1: Txn2..Txn5 contending on keys A, B, C after block 2\n");
    let (_, txns) = figure2a_fixture();
    for txn in &txns {
        let reads: Vec<String> = txn
            .read_set
            .iter()
            .map(|r| format!("{}@{}", r.key, r.version))
            .collect();
        let writes: Vec<String> = txn.write_set.iter().map(|w| w.key.to_string()).collect();
        println!("  Txn{}: reads {:?} writes {:?}", txn.id.0, reads, writes);
    }
    println!();

    let mut matrix: Vec<(SystemKind, Vec<(u64, &'static str)>)> = Vec::new();
    for system in SystemKind::all() {
        let (store, txns) = figure2a_fixture();
        let mut cc = system.build(CcConfig::default());
        // The transactions arrive at the orderer in consensus order Txn2..Txn5, forming block 3.
        // (We bootstrap the CC's notion of the committed state from the fixture's block-2 write.)
        let mut block2_writer = Transaction::from_parts(
            90,
            1,
            [],
            [
                (Key::new("B"), Value::from_i64(201)),
                (Key::new("C"), Value::from_i64(201)),
            ],
        );
        block2_writer.end_ts = Some(SeqNo::new(2, 1));
        cc.on_block_committed(2, &[(block2_writer, TxnStatus::Committed)]);

        let mut outcomes: Vec<(u64, &'static str)> = Vec::new();
        for txn in txns {
            let id = txn.id.0;
            if !cc.on_endorsement(&txn, store.last_block()).is_accept() {
                outcomes.push((id, "early abort (simulation)"));
                continue;
            }
            if !cc.on_arrival(txn).is_accept() {
                outcomes.push((id, "early abort (ordering)"));
            }
        }
        let block = cc.cut_block();
        let mut store = store;
        let statuses = if cc.needs_peer_validation() {
            mvcc_validate_and_apply(&mut store, 3, &block)
        } else {
            block.iter().map(|_| TxnStatus::Committed).collect()
        };
        for (txn, status) in block.iter().zip(statuses) {
            outcomes.push((
                txn.id.0,
                if status.is_committed() {
                    "COMMIT"
                } else {
                    "abort (validation)"
                },
            ));
        }
        // Transactions that were neither rejected early nor present in the cut block were
        // dropped by the system's block-formation reordering (Fabric++'s cycle elimination).
        for id in 2..=5u64 {
            if !outcomes.iter().any(|(i, _)| *i == id) {
                outcomes.push((id, "abort (reordering)"));
            }
        }
        outcomes.sort_by_key(|(id, _)| *id);
        matrix.push((system, outcomes));
    }

    println!(
        "{:<10} {:>28} {:>28} {:>28} {:>28}",
        "System", "Txn2", "Txn3", "Txn4", "Txn5"
    );
    for (system, outcomes) in &matrix {
        let cell = |id: u64| -> &str {
            outcomes
                .iter()
                .find(|(i, _)| *i == id)
                .map(|(_, s)| *s)
                .unwrap_or("-")
        };
        println!(
            "{:<10} {:>28} {:>28} {:>28} {:>28}",
            system.label(),
            cell(2),
            cell(3),
            cell(4),
            cell(5)
        );
    }
    println!(
        "\nPaper's Table 1: Fabric commits only Txn3; Fabric++ commits Txn4 and Txn5 (one more).\n\
         FabricSharp reaches the same effective commits as Fabric++ here, but rejects the\n\
         hopeless transactions before ordering instead of letting them waste block slots."
    );
}
