//! Reusable worker pools for ownership-passing parallel work.
//!
//! The key-space sharded engine ([`crate::sharded::ShardedDependencyGraph`]) decomposes its
//! arrival and formation work into per-shard pieces that touch disjoint [`DependencyGraph`]s:
//! node-copy insertion for a border transaction, the per-shard pending topo sorts behind the
//! k-way formation merge, per-shard ww-chain restoration, and age-based pruning. This module
//! provides the thread pool those pieces fan out on — and, since the parallel commit
//! scheduler (`fabricsharp_core::scheduler`), the generic [`WorkPool`] it is built on, which
//! ships arbitrary `Send` resources to workers by value.
//!
//! # Design
//!
//! Jobs transfer **ownership** of their resource instead of borrowing it: the coordinator
//! moves each resource (a shard `DependencyGraph`, a wave's transaction chunk, a shard
//! `MultiVersionStore`) out of its slot, ships it to a worker together with a boxed closure
//! and a per-call result channel, and re-installs it when the worker hands it back. That
//! keeps every closure `'static` (no scoped-lifetime unsafety), makes concurrent use of one
//! pool by independent callers sound (each call collects on its own channel), and costs only
//! a shallow struct move per job.
//!
//! # Determinism
//!
//! Workers race freely, but [`WorkPool::run`] blocks until *every* job of the batch has
//! reported back and re-assembles results by batch position — the scheduling order is
//! invisible to the caller. Combined with the jobs operating on disjoint resources, a
//! parallel batch is observably identical to running the same closures sequentially in any
//! order, which is the foundation of both the `W`-independence ledger guarantee
//! (`tests/parallel_formation_determinism.rs`) and the `E`-independence commit guarantee
//! (`tests/scheduler_determinism.rs`).
//!
//! A worker that panics (a bug in a job closure) poisons the batch's result channel on its
//! unwind path, so the caller fails fast instead of deadlocking — the same contract as the
//! pipeline stage executor in `fabricsharp_core::pipeline`.

use crate::graph::DependencyGraph;
use crossbeam::channel::{unbounded, Receiver, Sender};
use eov_common::txn::TxnId;
use std::thread::JoinHandle;

/// A unit of work for a [`WorkPool`]: runs against the resource it was shipped with, returns
/// an outcome.
pub type PoolJob<R, O> = Box<dyn FnOnce(&mut R) -> O + Send + 'static>;

/// One queued job: the resource it owns for the duration, the work, and where to report back.
struct JobMsg<R, O> {
    /// Position in the caller's batch (results are re-assembled by this tag).
    tag: usize,
    resource: R,
    work: PoolJob<R, O>,
    done: Sender<DoneMsg<R, O>>,
}

enum DoneMsg<R, O> {
    Done {
        tag: usize,
        // Boxed so the rare Panicked variant does not inflate every channel slot to the full
        // (stack-moved) resource size.
        resource: Box<R>,
        outcome: O,
    },
    /// Sent from a worker's unwind path: the job closure panicked. The resource it held is
    /// lost, but the caller is about to panic anyway — this only exists so it panics
    /// *promptly* instead of blocking on a result that will never arrive.
    Panicked(usize),
}

/// Drop guard armed while a job runs: if the worker unwinds, the batch's caller is notified.
struct PanicNotice<R, O> {
    tag: usize,
    done: Sender<DoneMsg<R, O>>,
    armed: bool,
}

impl<R, O> Drop for PanicNotice<R, O> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.done.send(DoneMsg::Panicked(self.tag));
        }
    }
}

/// A pool of worker threads executing [`PoolJob`]s on resources shipped by value.
#[derive(Debug)]
pub struct WorkPool<R, O> {
    jobs: Option<Sender<JobMsg<R, O>>>,
    workers: Vec<JoinHandle<()>>,
}

impl<R: Send + 'static, O: Send + 'static> WorkPool<R, O> {
    /// Spawns `threads` workers (clamped to at least one), named `{name}-{i}`.
    pub fn with_name(threads: usize, name: &str) -> Self {
        let threads = threads.max(1);
        let (job_tx, job_rx) = unbounded::<JobMsg<R, O>>();
        let workers = (0..threads)
            .map(|i| {
                let rx: Receiver<JobMsg<R, O>> = job_rx.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Ok(JobMsg {
                            tag,
                            mut resource,
                            work,
                            done,
                        }) = rx.recv()
                        {
                            let mut notice = PanicNotice {
                                tag,
                                done: done.clone(),
                                armed: true,
                            };
                            let outcome = work(&mut resource);
                            notice.armed = false;
                            let _ = done.send(DoneMsg::Done {
                                tag,
                                resource: Box::new(resource),
                                outcome,
                            });
                        }
                    })
                    .expect("spawning a pool worker")
            })
            .collect();
        WorkPool {
            jobs: Some(job_tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs a batch of jobs to completion and returns `(resource, outcome)` per batch
    /// position, in batch order. Blocks until every job has reported back.
    ///
    /// # Panics
    ///
    /// Panics if any job closure panicked on its worker — immediately for the batch that
    /// contained the bug, and loudly ("poisoned") for any later batch: a panicking job kills
    /// its worker for good and may have left the caller's moved-out resources replaced by
    /// empty placeholders, so continuing after catching the unwind must fail, not silently
    /// compute against empty resources.
    pub fn run(&self, batch: Vec<(R, PoolJob<R, O>)>) -> Vec<(R, O)> {
        if self.workers.iter().any(|w| w.is_finished()) {
            panic!("worker pool poisoned: a worker died in an earlier batch (job panic)");
        }
        let expected = batch.len();
        let (done_tx, done_rx) = unbounded::<DoneMsg<R, O>>();
        let jobs = self.jobs.as_ref().expect("pool not shut down");
        for (tag, (resource, work)) in batch.into_iter().enumerate() {
            let msg = JobMsg {
                tag,
                resource,
                work,
                done: done_tx.clone(),
            };
            if jobs.send(msg).is_err() {
                unreachable!("the job channel never closes while the pool lives");
            }
        }
        drop(done_tx);

        let mut slots: Vec<Option<(R, O)>> = (0..expected).map(|_| None).collect();
        for _ in 0..expected {
            match done_rx.recv() {
                Ok(DoneMsg::Done {
                    tag,
                    resource,
                    outcome,
                }) => {
                    debug_assert!(slots[tag].is_none(), "duplicate result for tag {tag}");
                    slots[tag] = Some((*resource, outcome));
                }
                Ok(DoneMsg::Panicked(tag)) => {
                    panic!("pool worker panicked while running batch job {tag}")
                }
                Err(_) => panic!("worker pool shut down mid-batch"),
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every tag reported exactly once"))
            .collect()
    }
}

impl<R, O> Drop for WorkPool<R, O> {
    fn drop(&mut self) {
        // Closing the job channel drains and parks every worker out of its loop; join so
        // tests and short-lived controllers do not leak threads.
        self.jobs.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// What a per-shard job returns to the coordinator.
#[derive(Debug)]
pub enum ShardOutcome {
    /// Nothing beyond the mutated graph (edge wiring, ww restoration).
    Unit,
    /// A per-shard topological order of that shard's pending transactions.
    Order(Vec<TxnId>),
    /// The transactions pruned from that shard.
    Pruned(Vec<TxnId>),
}

/// A per-shard unit of work: runs against the shard's graph, returns an outcome.
pub type ShardJob = PoolJob<DependencyGraph, ShardOutcome>;

/// A pool of `W` worker threads executing [`ShardJob`]s on shard graphs shipped by value —
/// the dependency-graph specialisation of [`WorkPool`].
#[derive(Debug)]
pub struct ShardPool {
    inner: WorkPool<DependencyGraph, ShardOutcome>,
}

impl ShardPool {
    /// Spawns `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        ShardPool {
            inner: WorkPool::with_name(threads, "depgraph-shard-worker"),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.inner.threads()
    }

    /// Runs a batch of per-shard jobs to completion and returns `(graph, outcome)` per batch
    /// position, in batch order. Blocks until every job has reported back. See
    /// [`WorkPool::run`] for the panic contract.
    pub fn run(
        &self,
        batch: Vec<(DependencyGraph, ShardJob)>,
    ) -> Vec<(DependencyGraph, ShardOutcome)> {
        self.inner.run(batch)
    }

    #[cfg(test)]
    fn worker_finished(&self, index: usize) -> bool {
        self.inner.workers[index].is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PendingTxnSpec;
    use eov_common::config::CcConfig;
    use eov_common::version::SeqNo;

    fn graph_with(ids: std::ops::Range<u64>) -> DependencyGraph {
        let mut g = DependencyGraph::new(CcConfig::default());
        for id in ids {
            g.insert_pending(
                PendingTxnSpec {
                    id: TxnId(id),
                    start_ts: SeqNo::snapshot_after(0),
                    read_keys: vec![],
                    write_keys: vec![],
                },
                &[],
                &[],
                1,
            );
        }
        g
    }

    #[test]
    fn batch_results_come_back_in_batch_order() {
        let pool = ShardPool::new(3);
        assert_eq!(pool.threads(), 3);
        let batch: Vec<(DependencyGraph, ShardJob)> = (0..6u64)
            .map(|i| {
                let g = graph_with(i * 10..i * 10 + i + 1);
                let job: ShardJob =
                    Box::new(move |g: &mut DependencyGraph| ShardOutcome::Order(g.pending_ids()));
                (g, job)
            })
            .collect();
        let results = pool.run(batch);
        assert_eq!(results.len(), 6);
        for (i, (graph, outcome)) in results.iter().enumerate() {
            let i = i as u64;
            assert_eq!(graph.len(), i as usize + 1, "graph {i} came back intact");
            match outcome {
                ShardOutcome::Order(ids) => {
                    let expected: Vec<TxnId> = (i * 10..i * 10 + i + 1).map(TxnId).collect();
                    assert_eq!(*ids, expected, "outcome {i}");
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn jobs_mutate_the_graphs_they_own() {
        let pool = ShardPool::new(2);
        let batch: Vec<(DependencyGraph, ShardJob)> = (0..4u64)
            .map(|i| {
                let g = graph_with(0..3);
                let job: ShardJob = Box::new(move |g: &mut DependencyGraph| {
                    g.mark_committed(TxnId(i % 3), SeqNo::new(1, 1));
                    ShardOutcome::Unit
                });
                (g, job)
            })
            .collect();
        for (i, (graph, _)) in pool.run(batch).into_iter().enumerate() {
            assert_eq!(graph.pending_len(), 2, "job {i} committed one of three");
        }
    }

    #[test]
    fn sequential_batches_reuse_the_same_workers() {
        let pool = ShardPool::new(1);
        for round in 0..8u64 {
            let batch: Vec<(DependencyGraph, ShardJob)> = vec![(
                graph_with(round..round + 1),
                Box::new(|g: &mut DependencyGraph| ShardOutcome::Pruned(g.pending_ids())),
            )];
            let mut results = pool.run(batch);
            let (_, outcome) = results.pop().unwrap();
            match outcome {
                ShardOutcome::Pruned(ids) => assert_eq!(ids, vec![TxnId(round)]),
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    /// A caught job panic must not allow silent reuse: the worker is dead and the caller's
    /// shard graphs may have been lost mid-move, so the next batch fails loudly instead of
    /// computing against empty placeholders.
    #[test]
    fn a_pool_that_swallowed_a_panic_is_poisoned_for_later_batches() {
        let pool = ShardPool::new(1);
        let bad: Vec<(DependencyGraph, ShardJob)> = vec![(
            graph_with(0..1),
            Box::new(|_: &mut DependencyGraph| panic!("buggy job")),
        )];
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(bad)));
        assert!(first.is_err(), "the offending batch itself panics");
        // The dead worker has sent its unwind notice; give its thread a moment to finish so
        // the liveness check observes it deterministically.
        while !pool.worker_finished(0) {
            std::thread::yield_now();
        }
        let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(vec![(
                graph_with(0..1),
                Box::new(|g: &mut DependencyGraph| ShardOutcome::Order(g.pending_ids()))
                    as ShardJob,
            )])
        }));
        let err = again.expect_err("a poisoned pool must refuse further batches");
        let message = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            message.contains("poisoned"),
            "expected a poisoned-pool panic, got: {message}"
        );
    }

    #[test]
    #[should_panic(expected = "pool worker panicked")]
    fn a_panicking_job_fails_the_batch_fast() {
        let pool = ShardPool::new(2);
        let batch: Vec<(DependencyGraph, ShardJob)> = vec![
            (
                graph_with(0..1),
                Box::new(|_: &mut DependencyGraph| panic!("buggy job")),
            ),
            (
                graph_with(1..2),
                Box::new(|_: &mut DependencyGraph| ShardOutcome::Unit),
            ),
        ];
        let _ = pool.run(batch);
    }

    /// The generic pool works with non-graph resources — the shape the commit scheduler
    /// relies on (shipping transaction chunks / shard stores by value).
    #[test]
    fn generic_pool_round_trips_arbitrary_resources() {
        let pool: WorkPool<Vec<u64>, u64> = WorkPool::with_name(2, "test-worker");
        #[allow(clippy::type_complexity)]
        let batch: Vec<(Vec<u64>, PoolJob<Vec<u64>, u64>)> = (0..5u64)
            .map(|i| {
                let resource: Vec<u64> = (0..=i).collect();
                let job: PoolJob<Vec<u64>, u64> = Box::new(move |v: &mut Vec<u64>| {
                    v.push(100 + i);
                    v.iter().sum()
                });
                (resource, job)
            })
            .collect();
        for (i, (resource, sum)) in pool.run(batch).into_iter().enumerate() {
            let i = i as u64;
            assert_eq!(*resource.last().unwrap(), 100 + i);
            assert_eq!(sum, (0..=i).sum::<u64>() + 100 + i);
        }
    }
}
