//! Stage backends wiring the discrete-event runner to the concurrent pipeline.
//!
//! The runner's event loop is the *driver*: it owns simulated time, the workload generator and
//! the concurrency control, and it decides — deterministically — when each endorsement result
//! enters the ordering service and when each block commits. The actual CPU work of the two
//! heavy stages is delegated to a backend chosen by
//! [`crate::runner::SimulationConfig::endorser_shards`]:
//!
//! * **Inline** (`endorser_shards == 0`) — the reference single-threaded mode: endorsement
//!   simulates at dispatch time and validation/commit runs at the event that consumes it, all
//!   on the driver thread.
//! * **Concurrent** (`endorser_shards >= 1`) — endorsement jobs fan out to the sharded
//!   [`EndorserPool`] and block commits run on the [`CommitWorker`] thread, overlapping with
//!   the driver's event processing.
//!
//! Both modes produce identical ledgers for the same seed: endorsements simulate against
//! pinned block snapshots (stable under concurrent commits, Section 4.2), results are consumed
//! at fixed points of the deterministic event order, and commits are strictly serialized. The
//! `pipeline_determinism` integration tests assert this block for block.

use eov_common::txn::Transaction;
use eov_vstore::SharedStore;
use fabricsharp_core::endorser::SnapshotEndorser;
use fabricsharp_core::pipeline::{
    CommitOutcome, CommitWorker, EndorseJob, EndorseLogic, EndorserPool,
};
use fabricsharp_core::scheduler::{CommitScheduler, WaveStats};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The endorsement stage: inline simulation or a sharded worker pool.
pub(crate) enum EndorseStage {
    /// Single-threaded reference mode: simulate at dispatch time on the driver thread.
    Inline {
        endorser: SnapshotEndorser,
        store: SharedStore,
        ready: HashMap<u64, Transaction>,
    },
    /// Concurrent mode: jobs are routed to `request_no % shards` workers.
    Sharded(EndorserPool),
}

impl EndorseStage {
    /// Builds the stage for the configured shard count (0 = inline).
    pub fn new(shards: usize, store: SharedStore, endorser: SnapshotEndorser) -> Self {
        if shards == 0 {
            EndorseStage::Inline {
                endorser,
                store,
                ready: HashMap::new(),
            }
        } else {
            EndorseStage::Sharded(EndorserPool::spawn(shards, store, endorser))
        }
    }

    /// Starts the endorsement for `request_no` against the snapshot after `snapshot_block`.
    pub fn dispatch(&mut self, request_no: u64, snapshot_block: u64, logic: EndorseLogic) {
        match self {
            EndorseStage::Inline {
                endorser,
                store,
                ready,
            } => {
                let txn = {
                    let guard = store.read();
                    endorser.simulate_at(
                        &*guard,
                        eov_common::txn::TxnId(request_no),
                        snapshot_block,
                        |ctx| logic(ctx),
                    )
                };
                ready.insert(request_no, txn);
            }
            EndorseStage::Sharded(pool) => pool.dispatch(EndorseJob {
                request_no,
                snapshot_block,
                logic,
            }),
        }
    }

    /// Returns the endorsed transaction for `request_no`, blocking on the pool if its shard
    /// has not finished yet. This is the deterministic merge point: the driver calls it in
    /// simulated-time order, never in worker completion order.
    pub fn collect(&mut self, request_no: u64) -> Transaction {
        match self {
            EndorseStage::Inline { ready, .. } => ready
                .remove(&request_no)
                .expect("inline endorsement was dispatched before its EndorseDone event"),
            EndorseStage::Sharded(pool) => pool.collect(request_no),
        }
    }
}

/// The validator/committer stage: inline or on the dedicated committer thread. Both variants
/// route every block through the [`CommitScheduler`] — with `execution_threads == 0` the
/// scheduler runs the inline serial reference, otherwise it plans and executes conflict-free
/// waves on its worker pool. Either way the outcome is bit-identical (the scheduler's
/// determinism contract), so the `endorser_shards` and `execution_threads` knobs compose
/// freely.
pub(crate) enum CommitStage {
    Inline {
        store: SharedStore,
        scheduler: CommitScheduler,
    },
    Threaded {
        worker: CommitWorker,
        /// Shared with the committer thread's block jobs; only ever locked by one job at a
        /// time because the committer is a single-lane stage, plus the driver at drain time.
        scheduler: Arc<Mutex<CommitScheduler>>,
    },
}

impl CommitStage {
    /// Builds the stage; `threaded` follows the endorser-shard knob (a concurrent pipeline
    /// gets the committer thread, the reference mode stays inline).
    pub fn new(threaded: bool, store: SharedStore, scheduler: CommitScheduler) -> Self {
        if threaded {
            CommitStage::Threaded {
                worker: CommitWorker::spawn(store),
                scheduler: Arc::new(Mutex::new(scheduler)),
            }
        } else {
            CommitStage::Inline { store, scheduler }
        }
    }

    /// Starts validating/applying `block_no`. In threaded mode the committer works ahead while
    /// the driver keeps processing events (the scheduler interleaves read-locked wave probes
    /// with write-locked applies); snapshot reads pinned at logically-earlier heights are
    /// unaffected (MVCC stability).
    pub fn begin(&mut self, block_no: u64, txns: &Arc<Vec<Transaction>>, needs_validation: bool) {
        match self {
            // Inline mode runs the work lazily in `finish` — the driver consumes it at the
            // BlockValidated event, which models the same validator service time either way.
            CommitStage::Inline { .. } => {}
            CommitStage::Threaded { worker, scheduler } => {
                let txns = Arc::clone(txns);
                let scheduler = Arc::clone(scheduler);
                worker.begin(
                    block_no,
                    Box::new(move |store| {
                        scheduler
                            .lock()
                            .expect("commit scheduler poisoned")
                            .commit_block(store, block_no, &txns, needs_validation)
                    }),
                );
            }
        }
    }

    /// Returns the commit outcome for `block_no`, applying it inline if this stage has no
    /// worker thread. Must be consumed in block order.
    pub fn finish(
        &mut self,
        block_no: u64,
        txns: &Arc<Vec<Transaction>>,
        needs_validation: bool,
    ) -> CommitOutcome {
        match self {
            CommitStage::Inline { store, scheduler } => {
                scheduler.commit_block(store, block_no, txns, needs_validation)
            }
            CommitStage::Threaded { worker, .. } => worker.finish(block_no),
        }
    }

    /// Drains the measured per-block commit wall-clock samples and snapshots the cumulative
    /// wave statistics (called once, when the run's report is assembled).
    pub fn commit_metrics(&mut self) -> (Vec<u64>, WaveStats) {
        match self {
            CommitStage::Inline { scheduler, .. } => {
                (scheduler.take_commit_samples(), scheduler.stats())
            }
            CommitStage::Threaded { scheduler, .. } => {
                let mut guard = scheduler.lock().expect("commit scheduler poisoned");
                (guard.take_commit_samples(), guard.stats())
            }
        }
    }
}
