//! # eov-baselines
//!
//! The comparison systems of the paper's evaluation, all implementing one common
//! [`api::ConcurrencyControl`] trait so the simulator and the benchmark harness can swap them
//! freely:
//!
//! * [`fabric`] — vanilla Hyperledger Fabric v1.3 (FIFO ordering, MVCC validation at peers).
//! * [`fabricpp`] — Fabric++ (early abort of cross-block reads + within-block reordering).
//! * [`focc_s`] — Focc-s: standard serializable OCC (concurrent-ww / dangerous-structure
//!   aborts at arrival).
//! * [`focc_l`] — Focc-l: sort-based greedy batch reordering at block formation.
//! * [`sharp`] — the trait implementation for FabricSharp (`fabricsharp-core`).
//! * [`chain`] — `SimpleChain`, a synchronous single-node EOV pipeline for examples and tests.
//! * [`parallel`] — `ParallelChain`, the same workflow driven over the concurrent stage
//!   executor (sharded endorsers + committer thread) with deterministic outcomes.

#![forbid(unsafe_code)]

pub mod api;
pub mod chain;
pub mod fabric;
pub mod fabricpp;
pub mod focc_l;
pub mod focc_s;
pub mod parallel;
pub mod sharp;

pub use api::{
    apply_without_validation, commit_block, count_anti_rw_commits, mvcc_validate_and_apply,
    ConcurrencyControl, SystemKind,
};
pub use chain::{BlockReport, SimpleChain};
pub use fabric::FabricCC;
pub use fabricpp::FabricPlusPlusCC;
pub use focc_l::FoccLightCC;
pub use focc_s::FoccSerializableCC;
pub use parallel::ParallelChain;
