//! Focc-s — the standard serializable-OCC baseline (Cahill et al., SIGMOD 2008).
//!
//! The paper builds this comparison system by dropping the textbook "serializable snapshot
//! isolation" rules into Fabric's ordering phase: an incoming transaction is aborted
//! immediately when it either
//!
//! * has a **concurrent write-write conflict** (snapshot isolation's first-committer-wins
//!   rule), or
//! * forms the **dangerous structure** of two consecutive concurrent read-write conflicts with
//!   at least one anti-dependency — the transaction is a "pivot" with both an incoming and an
//!   outgoing rw edge among its concurrent neighbours.
//!
//! Nothing happens at block formation (the paper: "Focc-s does nothing on block formation").
//! This is a *preventive* scheme: it may abort transactions that FabricSharp can still
//! serialize, but it never lets an unserializable pivot through — which is exactly the
//! behavioural contrast Figures 10–14 measure.

use crate::api::{ConcurrencyControl, SystemKind};
use eov_common::abort::AbortReason;
use eov_common::rwset::Key;
use eov_common::txn::{CommitDecision, Transaction, TxnStatus};
use eov_common::version::{concurrent, SeqNo};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Footprint of a committed transaction kept for concurrency checks against later arrivals.
#[derive(Clone, Debug)]
struct CommittedFootprint {
    start_ts: SeqNo,
    end_ts: SeqNo,
    read_keys: Vec<Key>,
    write_keys: Vec<Key>,
}

/// The Focc-s orderer-side concurrency control.
#[derive(Debug, Default)]
pub struct FoccSerializableCC {
    pending: Vec<Transaction>,
    /// Recently committed transactions, kept for `history_blocks` blocks.
    committed: Vec<CommittedFootprint>,
    next_block: u64,
    /// How many past blocks of committed footprints to retain for concurrency checks.
    history_blocks: u64,
    early_aborts: HashMap<AbortReason, u64>,
    arrival_time: Duration,
}

impl FoccSerializableCC {
    /// Creates a new instance starting at block 1, retaining 10 blocks of history (the same
    /// horizon FabricSharp uses for `max_span`).
    pub fn new() -> Self {
        FoccSerializableCC {
            pending: Vec::new(),
            committed: Vec::new(),
            next_block: 1,
            history_blocks: 10,
            early_aborts: HashMap::new(),
            arrival_time: Duration::ZERO,
        }
    }

    fn record_abort(&mut self, reason: AbortReason) {
        *self.early_aborts.entry(reason).or_insert(0) += 1;
    }

    /// Committed transactions concurrent with a transaction having the given timestamps.
    fn concurrent_committed(
        &self,
        start_ts: SeqNo,
        assumed_end: SeqNo,
    ) -> impl Iterator<Item = &CommittedFootprint> {
        self.committed
            .iter()
            .filter(move |c| concurrent((start_ts, assumed_end), (c.start_ts, c.end_ts)))
    }

    /// Whether the incoming transaction has a concurrent write-write conflict.
    fn has_concurrent_ww(&self, txn: &Transaction, assumed_end: SeqNo) -> bool {
        // Against committed, concurrent transactions.
        let committed_hit = self
            .concurrent_committed(txn.start_ts(), assumed_end)
            .any(|c| c.write_keys.iter().any(|k| txn.write_set.contains(k)));
        if committed_hit {
            return true;
        }
        // Against pending transactions (all pending transactions are concurrent with the
        // incoming one — Proposition 2).
        self.pending
            .iter()
            .any(|p| p.write_set.keys().any(|k| txn.write_set.contains(k)))
    }

    /// Whether the incoming transaction is a pivot: it has both an outgoing rw conflict (it
    /// reads something a concurrent transaction writes) and an incoming rw conflict (it writes
    /// something a concurrent transaction reads).
    fn has_dangerous_structure(&self, txn: &Transaction, assumed_end: SeqNo) -> bool {
        let outgoing = self
            .concurrent_committed(txn.start_ts(), assumed_end)
            .any(|c| c.write_keys.iter().any(|k| txn.read_set.contains(k)))
            || self
                .pending
                .iter()
                .any(|p| p.write_set.keys().any(|k| txn.read_set.contains(k)));
        if !outgoing {
            return false;
        }
        let incoming = self
            .concurrent_committed(txn.start_ts(), assumed_end)
            .any(|c| c.read_keys.iter().any(|k| txn.write_set.contains(k)))
            || self
                .pending
                .iter()
                .any(|p| p.read_set.keys().any(|k| txn.write_set.contains(k)));
        outgoing && incoming
    }
}

impl ConcurrencyControl for FoccSerializableCC {
    fn kind(&self) -> SystemKind {
        SystemKind::FoccS
    }

    fn on_arrival(&mut self, txn: Transaction) -> CommitDecision {
        let started = Instant::now();
        // The transaction, if accepted, will commit somewhere in the block being assembled.
        let assumed_end = SeqNo::new(self.next_block, self.pending.len() as u32 + 1);

        let decision = if self.has_concurrent_ww(&txn, assumed_end) {
            self.record_abort(AbortReason::ConcurrentWriteWrite);
            CommitDecision::Reject(AbortReason::ConcurrentWriteWrite)
        } else if self.has_dangerous_structure(&txn, assumed_end) {
            self.record_abort(AbortReason::DangerousStructure);
            CommitDecision::Reject(AbortReason::DangerousStructure)
        } else {
            self.pending.push(txn);
            CommitDecision::Accept
        };
        self.arrival_time += started.elapsed();
        decision
    }

    fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn cut_block(&mut self) -> Vec<Transaction> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let block_no = self.next_block;
        self.next_block += 1;
        std::mem::take(&mut self.pending)
            .into_iter()
            .enumerate()
            .map(|(i, mut txn)| {
                txn.end_ts = Some(SeqNo::new(block_no, i as u32 + 1));
                txn
            })
            .collect()
    }

    fn on_block_committed(&mut self, block_no: u64, outcome: &[(Transaction, TxnStatus)]) {
        self.next_block = self.next_block.max(block_no + 1);
        for (txn, status) in outcome {
            if status.is_committed() {
                self.committed.push(CommittedFootprint {
                    start_ts: txn.start_ts(),
                    end_ts: txn.end_ts.expect("committed transactions carry a slot"),
                    read_keys: txn.read_set.keys().cloned().collect(),
                    write_keys: txn.write_set.keys().cloned().collect(),
                });
            }
        }
        // Retire footprints older than the history window.
        let horizon = block_no.saturating_sub(self.history_blocks);
        self.committed.retain(|c| c.end_ts.block >= horizon);
    }

    fn early_aborts(&self) -> Vec<(AbortReason, u64)> {
        self.early_aborts.iter().map(|(r, c)| (*r, *c)).collect()
    }

    fn arrival_time(&self) -> Duration {
        self.arrival_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::rwset::Value;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn txn(id: u64, snapshot: u64, reads: &[(&str, (u64, u32))], writes: &[&str]) -> Transaction {
        Transaction::from_parts(
            id,
            snapshot,
            reads.iter().map(|(key, v)| (k(key), SeqNo::new(v.0, v.1))),
            writes
                .iter()
                .map(|key| (k(key), Value::from_i64(id as i64))),
        )
    }

    #[test]
    fn concurrent_write_write_is_aborted() {
        let mut cc = FoccSerializableCC::new();
        assert!(cc.on_arrival(txn(1, 0, &[], &["H"])).is_accept());
        let decision = cc.on_arrival(txn(2, 0, &[], &["H"]));
        assert_eq!(
            decision,
            CommitDecision::Reject(AbortReason::ConcurrentWriteWrite)
        );
        assert_eq!(
            cc.early_aborts(),
            vec![(AbortReason::ConcurrentWriteWrite, 1)]
        );
        // FabricSharp would accept both (Lemma 4) — this over-abortion is exactly the gap the
        // write-hot-ratio experiment (Figure 11) exposes.
    }

    #[test]
    fn dangerous_structure_is_aborted_but_single_rw_is_not() {
        let mut cc = FoccSerializableCC::new();
        // Pending txn1 reads A and writes B.
        assert!(cc
            .on_arrival(txn(1, 0, &[("A", (0, 1))], &["B"]))
            .is_accept());
        // txn2 reads B (outgoing rw vs txn1's write) but writes nothing anyone reads: accepted.
        assert!(cc
            .on_arrival(txn(2, 0, &[("B", (0, 2))], &["C"]))
            .is_accept());
        // txn3 reads C (outgoing rw vs txn2) AND writes A (incoming rw vs txn1): pivot → abort.
        let decision = cc.on_arrival(txn(3, 0, &[("C", (0, 3))], &["A"]));
        assert_eq!(
            decision,
            CommitDecision::Reject(AbortReason::DangerousStructure)
        );
    }

    #[test]
    fn conflicts_with_concurrent_committed_transactions_are_detected() {
        let mut cc = FoccSerializableCC::new();
        // A committed transaction in block 1 that wrote H and was concurrent with anything
        // simulated against block 0.
        let mut committed = txn(9, 0, &[("Z", (0, 9))], &["H"]);
        committed.end_ts = Some(SeqNo::new(1, 1));
        cc.on_block_committed(1, &[(committed, TxnStatus::Committed)]);
        cc.next_block = 2;

        // An incoming transaction simulated against block 0 writing H: concurrent c-ww.
        let decision = cc.on_arrival(txn(2, 0, &[], &["H"]));
        assert_eq!(
            decision,
            CommitDecision::Reject(AbortReason::ConcurrentWriteWrite)
        );

        // The same write from a snapshot *after* the committed transaction is not concurrent
        // and is accepted.
        assert!(cc.on_arrival(txn(3, 1, &[], &["H"])).is_accept());
    }

    #[test]
    fn history_window_prunes_old_footprints() {
        let mut cc = FoccSerializableCC::new();
        let mut old = txn(1, 0, &[], &["H"]);
        old.end_ts = Some(SeqNo::new(1, 1));
        cc.on_block_committed(1, &[(old, TxnStatus::Committed)]);
        assert_eq!(cc.committed.len(), 1);
        // Committing block 20 retires footprints older than 20 - 10.
        cc.on_block_committed(20, &[]);
        assert!(cc.committed.is_empty());
    }

    #[test]
    fn fifo_block_formation() {
        let mut cc = FoccSerializableCC::new();
        assert!(cc.on_arrival(txn(1, 0, &[], &["A"])).is_accept());
        assert!(cc.on_arrival(txn(2, 0, &[], &["B"])).is_accept());
        let block = cc.cut_block();
        assert_eq!(block.iter().map(|t| t.id.0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(block[1].end_ts, Some(SeqNo::new(1, 2)));
        assert!(cc.cut_block().is_empty());
        assert!(cc.needs_peer_validation());
    }
}
