//! Deterministic binary codec for durable ledger records and checkpoints.
//!
//! The workspace's serde shim is declaration-only (no serialization backend ships in the
//! offline container), so the durable formats are hand-rolled: fixed-width big-endian
//! integers, length-prefixed byte strings, and a dependency-free CRC-32 (IEEE 802.3) over
//! every framed payload. The CRC matters beyond torn-write detection: a block's `data_hash`
//! deliberately covers only the transaction ids and read/write sets — *not* the validation
//! statuses or template metadata — so the record CRC is the sole integrity check for those
//! fields on disk.
//!
//! Every encoder iterates its inputs in a deterministic order (entry order inside blocks,
//! `BTreeMap` key order inside checkpoints), so identical states always produce identical
//! bytes — the foundation of the bit-identity assertions in the cold-recovery batteries.

use crate::block::{Block, BlockHeader, TxnEntry};
use crate::sha256::Digest;
use eov_common::abort::AbortReason;
use eov_common::rwset::{Key, Value};
use eov_common::txn::{TemplateClass, Transaction, TxnId, TxnStatus};
use eov_common::version::SeqNo;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append-only big-endian byte sink for the durable formats.
#[derive(Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn put_digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(d.as_bytes());
    }

    /// Length-prefixed (u32) raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    pub fn put_seqno(&mut self, s: SeqNo) {
        self.put_u64(s.block);
        self.put_u32(s.seq);
    }
}

/// Cursor over an encoded payload. Every accessor fails with a message instead of panicking —
/// a decode error on CRC-valid bytes means a format bug or deliberate tampering, and either
/// way it must surface as a typed error upstream.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated {what}: need {n} bytes at offset {}", self.pos))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub fn get_u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    pub fn get_u16(&mut self, what: &str) -> Result<u16, String> {
        Ok(u16::from_be_bytes(self.take(2, what)?.try_into().unwrap()))
    }

    pub fn get_u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_be_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn get_u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_be_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn get_digest(&mut self, what: &str) -> Result<Digest, String> {
        Ok(Digest(self.take(32, what)?.try_into().unwrap()))
    }

    pub fn get_bytes(&mut self, what: &str) -> Result<&'a [u8], String> {
        let len = self.get_u32(what)? as usize;
        self.take(len, what)
    }

    pub fn get_key(&mut self, what: &str) -> Result<Key, String> {
        let bytes = self.get_bytes(what)?;
        let s = std::str::from_utf8(bytes).map_err(|_| format!("{what}: key is not UTF-8"))?;
        Ok(Key::new(s))
    }

    pub fn get_seqno(&mut self, what: &str) -> Result<SeqNo, String> {
        let block = self.get_u64(what)?;
        let seq = self.get_u32(what)?;
        Ok(SeqNo::new(block, seq))
    }
}

/// `AbortReason` → stable wire code (the enum's declaration order, pinned by tests).
fn abort_code(reason: AbortReason) -> u8 {
    match reason {
        AbortReason::StaleRead => 0,
        AbortReason::CrossBlockRead => 1,
        AbortReason::SnapshotTooOld => 2,
        AbortReason::ConcurrentWriteWrite => 3,
        AbortReason::DangerousStructure => 4,
        AbortReason::UnreorderableCycle => 5,
        AbortReason::BloomFalsePositive => 6,
        AbortReason::InBlockCycle => 7,
        AbortReason::GreedyVictim => 8,
        AbortReason::EndorsementPolicy => 9,
        AbortReason::Dropped => 10,
        AbortReason::Other => 11,
    }
}

fn abort_from_code(code: u8) -> Result<AbortReason, String> {
    Ok(match code {
        0 => AbortReason::StaleRead,
        1 => AbortReason::CrossBlockRead,
        2 => AbortReason::SnapshotTooOld,
        3 => AbortReason::ConcurrentWriteWrite,
        4 => AbortReason::DangerousStructure,
        5 => AbortReason::UnreorderableCycle,
        6 => AbortReason::BloomFalsePositive,
        7 => AbortReason::InBlockCycle,
        8 => AbortReason::GreedyVictim,
        9 => AbortReason::EndorsementPolicy,
        10 => AbortReason::Dropped,
        11 => AbortReason::Other,
        other => return Err(format!("unknown abort-reason code {other}")),
    })
}

fn put_status(w: &mut ByteWriter, status: TxnStatus) {
    match status {
        TxnStatus::Pending => w.put_u8(0),
        TxnStatus::Committed => w.put_u8(1),
        TxnStatus::Aborted(reason) => {
            w.put_u8(2);
            w.put_u8(abort_code(reason));
        }
    }
}

fn get_status(r: &mut ByteReader<'_>) -> Result<TxnStatus, String> {
    Ok(match r.get_u8("status tag")? {
        0 => TxnStatus::Pending,
        1 => TxnStatus::Committed,
        2 => TxnStatus::Aborted(abort_from_code(r.get_u8("abort reason")?)?),
        other => return Err(format!("unknown status tag {other}")),
    })
}

/// Encodes a block — header, then every entry with its full transaction (including the
/// status and template metadata the data hash does not cover).
pub(crate) fn encode_block(block: &Block) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(block.header.number);
    w.put_digest(&block.header.prev_hash);
    w.put_digest(&block.header.data_hash);
    w.put_u32(block.entries.len() as u32);
    for entry in &block.entries {
        let txn = &entry.txn;
        w.put_u64(txn.id.0);
        w.put_u64(txn.snapshot_block);
        w.put_u32(txn.endorsements);
        match txn.end_ts {
            None => w.put_u8(0),
            Some(ts) => {
                w.put_u8(1);
                w.put_seqno(ts);
            }
        }
        w.put_u8(match txn.template_class {
            TemplateClass::Unknown => 0,
            TemplateClass::Safe => 1,
        });
        match txn.template_id {
            None => w.put_u8(0),
            Some(id) => {
                w.put_u8(1);
                w.put_u16(id);
            }
        }
        w.put_u32(txn.read_set.len() as u32);
        for read in txn.read_set.iter() {
            w.put_bytes(read.key.as_str().as_bytes());
            w.put_seqno(read.version);
        }
        w.put_u32(txn.write_set.len() as u32);
        for write in txn.write_set.iter() {
            w.put_bytes(write.key.as_str().as_bytes());
            w.put_bytes(write.value.as_bytes());
        }
        w.put_seqno(entry.slot);
        put_status(&mut w, entry.status);
    }
    w.into_bytes()
}

/// Decodes a block from a CRC-validated record payload. Chain rules (height sequencing,
/// `prev_hash` link, data-hash match) are *not* checked here — replaying the decoded block
/// through [`crate::chain::Ledger::append`] enforces them.
pub(crate) fn decode_block(payload: &[u8]) -> Result<Block, String> {
    let mut r = ByteReader::new(payload);
    let number = r.get_u64("block number")?;
    let prev_hash = r.get_digest("prev_hash")?;
    let data_hash = r.get_digest("data_hash")?;
    let entry_count = r.get_u32("entry count")?;
    let mut entries = Vec::with_capacity(entry_count.min(1 << 20) as usize);
    for _ in 0..entry_count {
        let id = r.get_u64("txn id")?;
        let snapshot_block = r.get_u64("snapshot block")?;
        let endorsements = r.get_u32("endorsements")?;
        let end_ts = match r.get_u8("end_ts tag")? {
            0 => None,
            1 => Some(r.get_seqno("end_ts")?),
            other => return Err(format!("unknown end_ts tag {other}")),
        };
        let template_class = match r.get_u8("template class")? {
            0 => TemplateClass::Unknown,
            1 => TemplateClass::Safe,
            other => return Err(format!("unknown template class {other}")),
        };
        let template_id = match r.get_u8("template id tag")? {
            0 => None,
            1 => Some(r.get_u16("template id")?),
            other => return Err(format!("unknown template id tag {other}")),
        };
        let read_count = r.get_u32("read count")?;
        let mut reads = Vec::with_capacity(read_count.min(1 << 20) as usize);
        for _ in 0..read_count {
            let key = r.get_key("read key")?;
            let version = r.get_seqno("read version")?;
            reads.push((key, version));
        }
        let write_count = r.get_u32("write count")?;
        let mut writes = Vec::with_capacity(write_count.min(1 << 20) as usize);
        for _ in 0..write_count {
            let key = r.get_key("write key")?;
            let value = Value::from_bytes(r.get_bytes("write value")?.to_vec());
            writes.push((key, value));
        }
        let slot = r.get_seqno("slot")?;
        let status = get_status(&mut r)?;
        let mut txn = Transaction::new(
            TxnId(id),
            snapshot_block,
            reads.into_iter().collect(),
            writes.into_iter().collect(),
        );
        txn.endorsements = endorsements;
        txn.end_ts = end_ts;
        txn.template_class = template_class;
        txn.template_id = template_id;
        entries.push(TxnEntry { txn, slot, status });
    }
    if !r.is_exhausted() {
        return Err("trailing bytes after block payload".into());
    }
    Ok(Block {
        header: BlockHeader {
            number,
            prev_hash,
            data_hash,
        },
        entries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::rwset::{Key, Value};

    fn sample_block(number: u64, prev: Digest) -> Block {
        let t1 = Transaction::from_parts(
            number * 10,
            number.saturating_sub(1),
            [(Key::new("A"), SeqNo::new(0, 1))],
            [(Key::new("B"), Value::from_i64(number as i64))],
        )
        .with_template_class(TemplateClass::Safe)
        .with_template_id(Some(3));
        let t2 = Transaction::from_parts(
            number * 10 + 1,
            0,
            [],
            [(Key::new("C"), Value::from_i64(-1))],
        );
        let mut block = Block::build(number, prev, vec![t1, t2]);
        block.entries[0].status = TxnStatus::Committed;
        block.entries[1].status = TxnStatus::Aborted(AbortReason::UnreorderableCycle);
        block
    }

    #[test]
    fn block_roundtrip_preserves_every_field() {
        let block = sample_block(3, Digest::ZERO);
        let decoded = decode_block(&encode_block(&block)).expect("roundtrip");
        assert_eq!(decoded, block);
        assert!(decoded.verify_data_hash());
    }

    #[test]
    fn encoding_is_deterministic() {
        let block = sample_block(1, Digest::ZERO);
        assert_eq!(encode_block(&block), encode_block(&block));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing_bytes() {
        let bytes = encode_block(&sample_block(1, Digest::ZERO));
        assert!(decode_block(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_block(&extended).is_err());
    }

    #[test]
    fn every_abort_reason_roundtrips() {
        for code in 0u8..12 {
            let reason = abort_from_code(code).expect("declared variant");
            assert_eq!(abort_code(reason), code);
        }
        assert!(abort_from_code(12).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
