//! Offline shim for the subset of `parking_lot` used by this workspace: a
//! non-poisoning [`RwLock`] with the `read()` / `write()` signatures of the
//! upstream crate, backed by `std::sync::RwLock`. Poisoned locks (a writer
//! panicked) are recovered rather than propagated, matching parking_lot's
//! no-poisoning semantics.

use std::fmt;
use std::sync::RwLock as StdRwLock;

pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock whose guards are acquired infallibly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(vec![1, 2, 3]);
        lock.write().push(4);
        assert_eq!(*lock.read(), vec![1, 2, 3, 4]);
        assert_eq!(lock.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn poisoned_locks_recover() {
        let lock = std::sync::Arc::new(RwLock::new(0u32));
        let clone = std::sync::Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = clone.write();
            panic!("poison the lock");
        })
        .join();
        *lock.write() += 1;
        assert_eq!(*lock.read(), 1);
    }
}
