//! # fabricsharp-core
//!
//! The paper's primary contribution: FabricSharp's fine-grained, orderer-side concurrency
//! control for execute-order-validate blockchains.
//!
//! * [`endorser`] — Algorithm 1: snapshot-consistent contract simulation (the execute phase).
//! * [`dependency`] — Section 4.3: dependency resolution of an incoming transaction against
//!   the committed (CW/CR) and pending (PW/PR) indices.
//! * [`arrival`] — Algorithm 2: the reorderability test; unserializable transactions are
//!   dropped before ordering (Theorem 2).
//! * [`formation`] — Algorithm 3 + Algorithm 5: abort-free reordering at block formation and
//!   restoration of the deliberately-ignored pending c-ww dependencies.
//! * [`orderer_cc`] — [`orderer_cc::FabricSharpCC`], the controller that ties the above
//!   together and is plugged into the ordering service (Figure 8).
//! * [`pipeline`] — the thread-backed stage executor of the concurrent EOV pipeline: sharded
//!   endorser workers ([`pipeline::EndorserPool`]) and the strictly ordered
//!   validator/committer ([`pipeline::CommitWorker`]), reused by the simulator's concurrent
//!   runner and by the `ParallelChain` facade.
//! * [`commit`] — the serial reference committer: MVCC validation and block application in
//!   strict block order, defining the bit-exact store/ledger state every other commit path
//!   must reproduce.
//! * [`scheduler`] — the dependency-graph-driven parallel commit scheduler
//!   ([`scheduler::CommitScheduler`]): Block-STM-style wave execution of the committed order
//!   on a worker pool, widened by the static conflict matrix, bit-identical to [`commit`] at
//!   every `CcConfig::execution_threads`.
//! * [`theory`] — executable forms of the paper's definitions and the Figure 2a / Figure 3a
//!   fixtures shared by tests, examples and the Table 1 harness.
//! * [`serializability`] — an independent offline oracle (multi-version serialization graph)
//!   used to verify end-to-end that everything FabricSharp commits is serializable.
//! * [`stats`] — the per-phase latency and abort statistics reported in Figures 11–14.

#![forbid(unsafe_code)]

pub mod arrival;
pub mod commit;
pub mod dependency;
pub mod endorser;
pub mod formation;
pub mod frontier;
pub mod orderer_cc;
pub mod pipeline;
pub mod recovery;
pub mod scheduler;
pub mod serializability;
pub mod stats;
pub mod theory;

pub use commit::{
    apply_without_validation, commit_block, count_anti_rw_commits, mvcc_validate_and_apply,
};
pub use dependency::{resolve_dependencies, resolve_sharded, ResolvedDeps, ShardedResolution};
pub use endorser::{SimulationContext, SnapshotEndorser, TxnEffects};
pub use frontier::FormedBlock;
pub use orderer_cc::FabricSharpCC;
pub use pipeline::{CommitOutcome, CommitWorker, EndorseJob, EndorseLogic, EndorserPool};
pub use recovery::{
    recover_from_disk, recover_from_ledger, ColdRecovery, RecoveryError, RecoveryReport,
};
pub use scheduler::{plan_waves, CommitScheduler, WavePlan, WaveStats, WideningTable};
pub use serializability::{is_serializable, is_strongly_serializable, serialization_order};
pub use stats::CcStats;
