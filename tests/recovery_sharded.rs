//! Crash-recovery property tests across store shardings.
//!
//! An orderer that restarts mid-run holds the replicated ledger but none of the in-memory
//! concurrency-control state; `recover_from_ledger` replays the recent suffix into a fresh
//! controller. Sharding must not change what recovery produces: replaying the same ledger
//! prefix into an unsharded controller and into 2- and 4-shard controllers must yield the
//! same post-recovery state — same replay report, same graph contents, same accept/reject
//! decisions on fresh probes, and the same next block. The state-store side is covered too:
//! replaying the prefix's committed writes into the unsharded and sharded store backends must
//! answer every read identically.

use fabricsharp::baselines::{SimpleChain, SystemKind};
use fabricsharp::common::config::{CcConfig, WorkloadParams};
use fabricsharp::common::rwset::{Key, Value};
use fabricsharp::common::version::SeqNo;
use fabricsharp::common::Transaction;
use fabricsharp::core::recovery::recover_from_ledger;
use fabricsharp::core::FabricSharpCC;
use fabricsharp::ledger::Ledger;
use fabricsharp::vstore::{StateRead, StateStore, StoreBackend};
use fabricsharp::workload::generator::{WorkloadGenerator, WorkloadKind};
use proptest::prelude::*;

/// Drives a live FabricSharp chain over a seeded Smallbank stream and returns its ledger.
fn build_ledger(num_accounts: usize, num_txns: usize, block_size: usize, seed: u64) -> Ledger {
    let params = WorkloadParams {
        num_accounts,
        ..WorkloadParams::default()
    };
    let mut generator =
        WorkloadGenerator::new(WorkloadKind::MixedSmallbank { theta: 0.7 }, params, seed);
    let mut chain = SimpleChain::new(SystemKind::FabricSharp);
    chain.seed(generator.genesis());
    for i in 0..num_txns {
        let template = generator.next_template();
        let txn = chain.execute(|ctx| template.run(ctx));
        let _ = chain.submit(txn);
        if (i + 1) % block_size == 0 {
            chain.seal_block();
        }
    }
    chain.seal_block();
    chain.ledger().clone()
}

/// The first `height` blocks of `ledger` as a standalone ledger (the crash point).
fn prefix_of(ledger: &Ledger, height: u64) -> Ledger {
    let mut prefix = Ledger::new();
    for block in ledger.iter().take(height as usize) {
        prefix.append(block.clone()).expect("prefix blocks chain");
    }
    prefix
}

/// A probe transaction over the Smallbank key space with arbitrary read versions — the kind of
/// arrival whose verdict depends on everything recovery rebuilt (indices, graph, blooms).
fn probe_txn(
    id: u64,
    num_accounts: usize,
    height: u64,
    picks: &[(usize, u64, u32)],
) -> Transaction {
    let reads: Vec<(Key, SeqNo)> = picks
        .iter()
        .map(|(account, block, seq)| {
            (
                Key::new(format!("checking:{}", account % num_accounts)),
                SeqNo::new(block % (height + 1), seq % 4),
            )
        })
        .collect();
    let writes: Vec<(Key, Value)> = picks
        .iter()
        .map(|(account, _, _)| {
            (
                Key::new(format!("savings:{}", account % num_accounts)),
                Value::from_i64(id as i64),
            )
        })
        .collect();
    Transaction::from_parts(id, height, reads, writes)
}

fn recovered(prefix: &Ledger, store_shards: usize) -> FabricSharpCC {
    let (cc, report) = recover_from_ledger(
        prefix,
        CcConfig {
            store_shards,
            track_exact_reachability: true,
            ..CcConfig::default()
        },
    )
    .expect("prefix ledger verifies");
    assert_eq!(report.ledger_height, prefix.height());
    cc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Replaying `recover_from_ledger` from a mid-run ledger prefix must produce the same
    /// controller state for the unsharded and the 2-/4-shard engines: same replay report,
    /// same graph membership, identical decisions on random probes, and identical next blocks
    /// when the recovered controllers keep running.
    #[test]
    fn recovery_is_identical_across_shardings(
        seed in any::<u64>(),
        num_txns in 16usize..48,
        block_size in 2usize..6,
        prefix_percent in 30u64..95,
        probe_picks in proptest::collection::vec(
            proptest::collection::vec((0usize..16, 0u64..12, 0u32..4), 1..4),
            4..10,
        ),
    ) {
        let num_accounts = 16usize;
        let full = build_ledger(num_accounts, num_txns, block_size, seed);
        // 16+ transactions over 16 accounts always fill at least a couple of blocks.
        prop_assert!(full.height() >= 2, "degenerate run: height {}", full.height());
        let cut = (full.height() * prefix_percent / 100).max(1);
        let prefix = prefix_of(&full, cut);

        let mut reference = recovered(&prefix, 0);
        let mut two = recovered(&prefix, 2);
        let mut four = recovered(&prefix, 4);

        // Same replayed graph: membership must agree for every transaction of the prefix.
        prop_assert_eq!(reference.next_block(), two.next_block());
        prop_assert_eq!(reference.next_block(), four.next_block());
        prop_assert_eq!(reference.graph().len(), two.graph().len());
        prop_assert_eq!(reference.graph().len(), four.graph().len());
        for block in prefix.iter() {
            for entry in &block.entries {
                let id = entry.txn.id;
                prop_assert_eq!(
                    reference.graph().contains(id),
                    two.graph().contains(id),
                    "graph membership diverged for {:?}", id
                );
                prop_assert_eq!(
                    reference.graph().contains(id),
                    four.graph().contains(id),
                    "graph membership diverged for {:?}", id
                );
            }
        }

        // Identical decisions on random probes...
        for (i, picks) in probe_picks.iter().enumerate() {
            let txn = probe_txn(10_000 + i as u64, num_accounts, prefix.height(), picks);
            let d0 = reference.on_arrival(txn.clone()).is_accept();
            let d2 = two.on_arrival(txn.clone()).is_accept();
            let d4 = four.on_arrival(txn).is_accept();
            prop_assert_eq!(d0, d2, "probe {} diverged (2 shards)", i);
            prop_assert_eq!(d0, d4, "probe {} diverged (4 shards)", i);
        }

        // ...and identical blocks when the recovered controllers keep running.
        let b0 = reference.cut_block();
        let b2 = two.cut_block();
        let b4 = four.cut_block();
        prop_assert_eq!(&b0, &b2, "post-recovery block diverged (2 shards)");
        prop_assert_eq!(&b0, &b4, "post-recovery block diverged (4 shards)");
    }

    /// The state-store side of recovery: replaying the committed writes of a ledger prefix
    /// into the unsharded backend and into sharded backends yields identical reads at every
    /// snapshot height, for every key the run ever touched.
    #[test]
    fn store_replay_is_identical_across_shardings(
        seed in any::<u64>(),
        num_txns in 16usize..40,
        block_size in 2usize..6,
        prefix_percent in 30u64..95,
    ) {
        let num_accounts = 12usize;
        let full = build_ledger(num_accounts, num_txns, block_size, seed);
        prop_assert!(full.height() >= 2, "degenerate run: height {}", full.height());
        let cut = (full.height() * prefix_percent / 100).max(1);
        let prefix = prefix_of(&full, cut);

        let mut backends: Vec<StoreBackend> =
            vec![StoreBackend::for_shards(0), StoreBackend::for_shards(2), StoreBackend::for_shards(4)];
        for backend in &mut backends {
            let params = WorkloadParams { num_accounts, ..WorkloadParams::default() };
            let generator = WorkloadGenerator::new(
                WorkloadKind::MixedSmallbank { theta: 0.7 },
                params,
                seed,
            );
            backend.seed_genesis(generator.genesis());
            for block in prefix.iter() {
                let committed: Vec<_> = block.committed().collect();
                backend.apply_block(block.number(), committed);
            }
        }

        let (reference, sharded) = {
            let (first, rest) = backends.split_first().unwrap();
            (first, rest)
        };
        prop_assert_eq!(reference.last_block(), prefix.height());
        for candidate in sharded {
            prop_assert_eq!(reference.last_block(), candidate.last_block());
            prop_assert_eq!(reference.key_count(), candidate.key_count());
            prop_assert_eq!(reference.version_count(), candidate.version_count());
            for account in 0..num_accounts {
                for key in [
                    Key::new(format!("checking:{account}")),
                    Key::new(format!("savings:{account}")),
                ] {
                    prop_assert_eq!(reference.latest(&key), candidate.latest(&key));
                    for block in 0..=prefix.height() {
                        prop_assert_eq!(
                            reference.read_at(&key, block).unwrap(),
                            candidate.read_at(&key, block).unwrap(),
                            "{} @ {}", key, block
                        );
                    }
                }
            }
        }
    }
}
