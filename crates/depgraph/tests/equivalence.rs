//! Old-vs-new equivalence harness for the dense reachability engine.
//!
//! The PR that introduced interned slots, epoch-tagged visited sets and the O(V+E) pending
//! topological sort promised *bit-for-bit identical behaviour* — same commit orders, same
//! (bloom-false-positive-included) abort verdicts, same reachability answers. This suite
//! drives random interleavings of build / commit / remove / prune / rebuild operations through
//! the production [`DependencyGraph`] and the retained naive reference ([`NaiveGraph`],
//! essentially the seed implementation) side by side and asserts that every observable agrees:
//!
//! * `topo_sort_pending` output (the commit order — the ledger-identity-critical one),
//! * `would_close_cycle` verdicts, including the `confirmed_exact` classification,
//! * `reaches_exact` for every tracked pair,
//! * insert hop counts (the Figure 13 statistic),
//! * pending arrival order and the tracked node set.

use eov_common::config::CcConfig;
use eov_common::txn::TxnId;
use eov_common::version::SeqNo;
use eov_depgraph::{DependencyGraph, NaiveGraph, PendingTxnSpec};
use proptest::prelude::*;

const ID_SPACE: u64 = 24;

/// One step of the random workload.
#[derive(Clone, Debug)]
enum Op {
    /// Try to insert `id` with the given candidate predecessor/successor ids (only applied if
    /// both engines agree the insertion keeps the graph acyclic — mirroring Algorithm 2).
    Insert {
        id: u64,
        preds: Vec<u64>,
        succs: Vec<u64>,
    },
    /// Commit the `nth` pending transaction (modulo the pending count).
    Commit { nth: usize },
    /// Remove the `nth` pending transaction entirely.
    Remove { nth: usize },
    /// Prune committed nodes older than `threshold`.
    Prune { threshold: u64 },
    /// Rebuild every reachability filter from the current edges.
    Rebuild,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (
            0..ID_SPACE,
            proptest::collection::vec(0..ID_SPACE, 0..4),
            proptest::collection::vec(0..ID_SPACE, 0..3),
        )
            .prop_map(|(id, preds, succs)| Op::Insert { id, preds, succs }),
        2 => (0usize..16).prop_map(|nth| Op::Commit { nth }),
        1 => (0usize..16).prop_map(|nth| Op::Remove { nth }),
        1 => (0u64..8).prop_map(|threshold| Op::Prune { threshold }),
        1 => Just(Op::Rebuild),
    ]
}

fn spec(id: u64) -> PendingTxnSpec {
    PendingTxnSpec {
        id: TxnId(id),
        start_ts: SeqNo::snapshot_after(0),
        read_keys: vec![],
        write_keys: vec![],
    }
}

/// Applies `ops` to both engines, asserting agreement after every step and a deep
/// reachability/verdict comparison at the end.
fn run_equivalence(config: CcConfig, ops: Vec<Op>) {
    let mut engine = DependencyGraph::new(config);
    let mut naive = NaiveGraph::new(config);
    let mut next_block = 1u64;

    for op in ops {
        match op {
            Op::Insert { id, preds, succs } => {
                // Duplicate ids are applied on purpose: re-inserting a tracked transaction is
                // a contract-level no-op in both engines (hops 0, nothing disturbed), which
                // the step assertions below verify.
                let preds: Vec<TxnId> = preds.into_iter().map(TxnId).collect();
                let succs: Vec<TxnId> = succs.into_iter().map(TxnId).collect();

                // Both cycle tests must agree bit-for-bit (including the exact-confirmation
                // classification that distinguishes bloom false positives).
                let engine_verdict = engine.would_close_cycle(&preds, &succs);
                let naive_verdict = naive.would_close_cycle(&preds, &succs);
                prop_assert_eq!(
                    engine_verdict,
                    naive_verdict,
                    "cycle verdicts diverge for preds {:?} succs {:?}",
                    &preds,
                    &succs
                );
                if !engine_verdict.is_acyclic() {
                    continue;
                }

                let report = engine.insert_pending(spec(id), &preds, &succs, next_block);
                let naive_hops = naive.insert_pending(spec(id), &preds, &succs, next_block);
                prop_assert_eq!(
                    report.hops,
                    naive_hops,
                    "hop counts diverge on insert {}",
                    id
                );
            }
            Op::Commit { nth } => {
                let pending = engine.pending_ids();
                if pending.is_empty() {
                    continue;
                }
                let id = pending[nth % pending.len()];
                let slot = SeqNo::new(next_block, 1);
                engine.mark_committed(id, slot);
                naive.mark_committed(id, slot);
                next_block += 1;
            }
            Op::Remove { nth } => {
                let pending = engine.pending_ids();
                if pending.is_empty() {
                    continue;
                }
                let id = pending[nth % pending.len()];
                engine.remove(id);
                naive.remove(id);
            }
            Op::Prune { threshold } => {
                let mut engine_pruned = engine.prune_stale(threshold);
                engine_pruned.sort();
                let naive_pruned = naive.prune_stale(threshold);
                prop_assert_eq!(engine_pruned, naive_pruned, "prune victims diverge");
            }
            Op::Rebuild => {
                let engine_rebuilt = engine.rebuild_reachability();
                let naive_rebuilt = naive.rebuild_reachability();
                prop_assert_eq!(engine_rebuilt, naive_rebuilt, "rebuild counts diverge");
            }
        }

        // Invariants checked after every step.
        prop_assert_eq!(
            engine.pending_ids(),
            naive.pending_ids(),
            "pending order diverges"
        );
        prop_assert_eq!(engine.len(), naive.len(), "tracked node counts diverge");
        prop_assert_eq!(
            engine.topo_sort_pending(),
            naive.topo_sort_pending(),
            "commit orders diverge"
        );
    }

    // Final deep comparison: every reachability fact and a probe matrix of cycle verdicts.
    for a in 0..ID_SPACE {
        prop_assert_eq!(
            engine.contains(TxnId(a)),
            naive.contains(TxnId(a)),
            "tracked set diverges at {}",
            a
        );
        for b in 0..ID_SPACE {
            prop_assert_eq!(
                engine.reaches_exact(TxnId(a), TxnId(b)),
                naive.reaches_exact(TxnId(a), TxnId(b)),
                "reaches_exact diverges for {} -> {}",
                a,
                b
            );
        }
    }
    for a in 0..ID_SPACE {
        for b in 0..ID_SPACE {
            let probe_preds = [TxnId(a)];
            let probe_succs = [TxnId(b)];
            prop_assert_eq!(
                engine.would_close_cycle(&probe_preds, &probe_succs),
                naive.would_close_cycle(&probe_preds, &probe_succs),
                "probe cycle verdict diverges for pred {} succ {}",
                a,
                b
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Equivalence with exact reachability shadowing enabled (the configuration every test
    /// oracle runs with): commit orders, hop counts, prune victims, rebuild counts, pending
    /// order, reachability answers and exact-confirmed cycle verdicts all match the retained
    /// naive implementation on random interleavings.
    #[test]
    fn engine_matches_naive_reference_with_exact_tracking(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        run_equivalence(
            CcConfig {
                track_exact_reachability: true,
                ..CcConfig::default()
            },
            ops,
        );
    }

    /// Equivalence in the production configuration (bloom filters only). Verdicts carry
    /// `confirmed_exact: None`, and any bloom false positive must appear in both engines —
    /// the filters are built from identical member sets, so their bits are identical.
    #[test]
    fn engine_matches_naive_reference_bloom_only(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        run_equivalence(CcConfig::default(), ops);
    }

    /// Small-bloom stress: 64-bit filters saturate quickly, so false positives are common —
    /// exactly the regime where a divergence between the prehashed probe path and the naive
    /// per-pair probe would show up.
    #[test]
    fn engine_matches_naive_reference_under_bloom_saturation(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        run_equivalence(
            CcConfig {
                bloom_bits: 64,
                bloom_hashes: 2,
                track_exact_reachability: true,
                ..CcConfig::default()
            },
            ops,
        );
    }
}
