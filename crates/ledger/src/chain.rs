//! The hash-chained, append-only block store.
//!
//! Section 3.5 of the paper lists Fabric's ordering-service safety properties: *agreement*,
//! *hash chain integrity*, *no skipping*, and *no creation*. The [`Ledger`] enforces the last
//! three structurally (blocks must arrive in sequence, chained to the previous header hash,
//! and with a body hash matching their header), and the integration tests check *agreement* by
//! comparing the ledgers produced by independently replicated orderers.

use crate::block::Block;
use crate::sha256::Digest;
use eov_common::error::{CommonError, Result};
use eov_common::txn::TxnStatus;

/// An append-only, hash-chained sequence of blocks starting at height 1 (height 0 is the
/// implicit genesis state seeded directly into the state store).
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    blocks: Vec<Block>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// The height of the last appended block, or 0 if the ledger is empty.
    pub fn height(&self) -> u64 {
        self.blocks.last().map(|b| b.number()).unwrap_or(0)
    }

    /// The header hash the next block must chain to.
    pub fn tip_hash(&self) -> Digest {
        self.blocks.last().map(|b| b.hash()).unwrap_or(Digest::ZERO)
    }

    /// Appends a block, enforcing *no skipping* (height must be exactly `height() + 1`),
    /// *hash chain integrity* (its `prev_hash` must equal the current tip hash) and body
    /// integrity (its data hash must match its entries).
    pub fn append(&mut self, block: Block) -> Result<()> {
        let expected_number = self.height() + 1;
        if block.number() != expected_number {
            return Err(CommonError::ChainIntegrity {
                block: block.number(),
                detail: format!("expected height {expected_number} (no skipping)"),
            });
        }
        if block.header.prev_hash != self.tip_hash() {
            return Err(CommonError::ChainIntegrity {
                block: block.number(),
                detail: "prev_hash does not match the current tip".into(),
            });
        }
        if !block.verify_data_hash() {
            return Err(CommonError::ChainIntegrity {
                block: block.number(),
                detail: "data hash does not match block body".into(),
            });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Fetches a block by height.
    pub fn block(&self, number: u64) -> Result<&Block> {
        if number == 0 || number > self.height() {
            return Err(CommonError::BlockNotFound(number));
        }
        Ok(&self.blocks[(number - 1) as usize])
    }

    /// Iterates over all blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = &Block> {
        self.blocks.iter()
    }

    /// Total number of transactions appearing in the ledger (the numerator of raw throughput).
    pub fn raw_txn_count(&self) -> usize {
        self.blocks.iter().map(Block::raw_count).sum()
    }

    /// Total number of committed transactions (the numerator of effective throughput).
    pub fn committed_txn_count(&self) -> usize {
        self.blocks.iter().map(Block::committed_count).sum()
    }

    /// Walks the whole chain and re-verifies every link and body hash. Returns the first
    /// violation found, if any.
    pub fn verify_integrity(&self) -> Result<()> {
        let mut prev = Digest::ZERO;
        for (i, block) in self.blocks.iter().enumerate() {
            let expected_number = i as u64 + 1;
            if block.number() != expected_number {
                return Err(CommonError::ChainIntegrity {
                    block: block.number(),
                    detail: format!("height {} out of sequence", block.number()),
                });
            }
            if block.header.prev_hash != prev {
                return Err(CommonError::ChainIntegrity {
                    block: block.number(),
                    detail: "broken hash link".into(),
                });
            }
            if !block.verify_data_hash() {
                return Err(CommonError::ChainIntegrity {
                    block: block.number(),
                    detail: "body does not match data hash".into(),
                });
            }
            prev = block.hash();
        }
        Ok(())
    }

    /// Convenience used by tests and metrics: the commit status of every transaction in ledger
    /// order.
    pub fn statuses(&self) -> Vec<(u64, TxnStatus)> {
        self.blocks
            .iter()
            .flat_map(|b| b.entries.iter().map(|e| (e.txn.id.0, e.status)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::abort::AbortReason;
    use eov_common::rwset::{Key, Value};
    use eov_common::txn::Transaction;
    use eov_common::version::SeqNo;

    fn txn(id: u64) -> Transaction {
        Transaction::from_parts(
            id,
            0,
            [(Key::new("A"), SeqNo::new(0, 1))],
            [(Key::new("A"), Value::from_i64(id as i64))],
        )
    }

    fn chain_of(n: u64) -> Ledger {
        let mut ledger = Ledger::new();
        for height in 1..=n {
            let block = Block::build(
                height,
                ledger.tip_hash(),
                vec![txn(height * 10), txn(height * 10 + 1)],
            );
            ledger.append(block).unwrap();
        }
        ledger
    }

    #[test]
    fn append_builds_a_valid_chain() {
        let ledger = chain_of(5);
        assert_eq!(ledger.height(), 5);
        assert_eq!(ledger.raw_txn_count(), 10);
        assert!(ledger.verify_integrity().is_ok());
        assert_eq!(ledger.iter().count(), 5);
    }

    #[test]
    fn no_skipping_is_enforced() {
        let mut ledger = chain_of(2);
        let skipped = Block::build(4, ledger.tip_hash(), vec![txn(99)]);
        let err = ledger.append(skipped).unwrap_err();
        assert!(matches!(err, CommonError::ChainIntegrity { block: 4, .. }));
    }

    #[test]
    fn hash_chain_integrity_is_enforced() {
        let mut ledger = chain_of(2);
        let bad_prev = Block::build(3, Digest::ZERO, vec![txn(99)]);
        let err = ledger.append(bad_prev).unwrap_err();
        assert!(matches!(err, CommonError::ChainIntegrity { block: 3, .. }));
    }

    #[test]
    fn tampered_body_is_rejected_on_append_and_on_verify() {
        let mut ledger = chain_of(1);
        let mut block = Block::build(2, ledger.tip_hash(), vec![txn(20)]);
        block.entries[0]
            .txn
            .write_set
            .record(Key::new("A"), Value::from_i64(-1));
        assert!(ledger.append(block).is_err());

        // Tamper after append (simulating a corrupted replica) — verify_integrity catches it.
        let mut ledger = chain_of(3);
        ledger.blocks[1].entries[0]
            .txn
            .write_set
            .record(Key::new("A"), Value::from_i64(-1));
        assert!(ledger.verify_integrity().is_err());
    }

    #[test]
    fn block_lookup_and_bounds() {
        let ledger = chain_of(3);
        assert_eq!(ledger.block(2).unwrap().number(), 2);
        assert!(matches!(
            ledger.block(0),
            Err(CommonError::BlockNotFound(0))
        ));
        assert!(matches!(
            ledger.block(9),
            Err(CommonError::BlockNotFound(9))
        ));
    }

    #[test]
    fn committed_counts_follow_validation_flags() {
        let mut ledger = chain_of(1);
        let mut block = Block::build(2, ledger.tip_hash(), vec![txn(20), txn(21)]);
        block.entries[0].status = TxnStatus::Committed;
        block.entries[1].status = TxnStatus::Aborted(AbortReason::StaleRead);
        ledger.append(block).unwrap();
        assert_eq!(ledger.committed_txn_count(), 1);
        assert_eq!(ledger.raw_txn_count(), 4);
        let statuses = ledger.statuses();
        assert_eq!(statuses.len(), 4);
        assert!(statuses.iter().any(|(id, s)| *id == 21 && s.is_aborted()));
    }

    #[test]
    fn identical_input_produces_identical_chains() {
        // Agreement building block: two replicas applying the same blocks end with the same tip.
        let a = chain_of(4);
        let b = chain_of(4);
        assert_eq!(a.tip_hash().to_hex(), b.tip_hash().to_hex());
    }
}
