//! The durable ledger: segment-file persistence behind the in-memory reference [`Ledger`].
//!
//! [`DurableLedger`] couples an append-only segment log (see [`crate::segment`]) with an
//! in-memory mirror that enforces the chain rules. Every append validates against the mirror
//! first — a block that violates no-skipping, the hash link or body integrity is rejected
//! *before* any byte reaches disk — then writes one CRC-framed record. Opening a directory
//! replays its segments back through the mirror, repairing a torn trailing record (the only
//! damage a crash mid-append can cause) by physical truncation and reporting everything else
//! as a typed [`LedgerError`].
//!
//! [`LedgerBackend`] keeps the in-memory [`Ledger`] as the zero-cost reference: callers that
//! never configure a directory pay nothing, and every read goes through the same `Ledger`
//! surface either way.

use crate::chain::Ledger;
use crate::codec;
use crate::error::LedgerError;
use crate::segment::{self, SegmentWriter, TornTail};
use crate::Block;
use eov_common::config::CcConfig;
use std::path::{Path, PathBuf};

/// Tuning for the segment log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurableOptions {
    /// Rotate to a fresh segment file once the current one reaches this many bytes.
    pub rotate_bytes: u64,
    /// Fsync after every append (see `CcConfig::durable_fsync`).
    pub fsync: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            rotate_bytes: 64 * 1024,
            fsync: false,
        }
    }
}

impl DurableOptions {
    /// The durability knobs carried by a [`CcConfig`].
    pub fn from_cc_config(config: &CcConfig) -> Self {
        DurableOptions {
            rotate_bytes: config.segment_rotate_kib as u64 * 1024,
            fsync: config.durable_fsync,
        }
    }
}

/// What [`DurableLedger::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct OpenReport {
    /// Blocks recovered from the segment files (the mirror's height after open).
    pub blocks_recovered: u64,
    /// Segment files scanned.
    pub segments: usize,
    /// The torn trailing record that was truncated away, if any.
    pub torn: Option<TornTail>,
}

/// A hash-chained ledger persisted as CRC-framed records in rotating segment files.
#[derive(Debug)]
pub struct DurableLedger {
    dir: PathBuf,
    mirror: Ledger,
    writer: SegmentWriter,
}

impl DurableLedger {
    /// Opens (or creates) the ledger directory, replaying its segments into a fresh in-memory
    /// mirror. A torn trailing record is truncated — physically — and reported; any other
    /// damage (mid-log CRC failure, undecodable record, broken chain link) is a typed error.
    pub fn open(
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<(Self, OpenReport), LedgerError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|e| LedgerError::io(dir, e))?;
        let scan = segment::scan_dir(dir)?;
        if let Some(torn) = &scan.torn {
            segment::repair_torn_tail(torn)?;
        }
        let mut mirror = Ledger::new();
        for block in scan.blocks {
            mirror.append(block)?;
        }
        let writer = SegmentWriter::resume(dir, options.rotate_bytes, options.fsync, scan.tail)?;
        let report = OpenReport {
            blocks_recovered: mirror.height(),
            segments: scan.segment_count,
            torn: scan.torn,
        };
        Ok((
            DurableLedger {
                dir: dir.to_path_buf(),
                mirror,
                writer,
            },
            report,
        ))
    }

    /// Appends a block: chain-validated against the mirror first, then written as one framed
    /// record (rotating segments as configured).
    pub fn append(&mut self, block: Block) -> Result<(), LedgerError> {
        let payload = codec::encode_block(&block);
        let number = block.number();
        self.mirror.append(block)?;
        self.writer.append(number, &payload)
    }

    /// The in-memory mirror: the authoritative read surface over everything appended.
    pub fn ledger(&self) -> &Ledger {
        &self.mirror
    }

    /// The directory holding the segment files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Height of the last appended block.
    pub fn height(&self) -> u64 {
        self.mirror.height()
    }

    /// Bytes in the current tail segment (diagnostics/tests).
    pub fn tail_segment_len(&self) -> u64 {
        self.writer.tail_len()
    }
}

/// The ledger behind the engine: the in-memory reference, or the segment-backed store of
/// record. Reads always go through the same [`Ledger`] surface via [`Self::as_ledger`].
#[derive(Debug)]
pub enum LedgerBackend {
    /// The in-memory reference ledger (no persistence).
    Memory(Ledger),
    /// The durable segment-file ledger.
    Durable(DurableLedger),
}

impl LedgerBackend {
    /// An empty in-memory backend.
    pub fn memory() -> Self {
        LedgerBackend::Memory(Ledger::new())
    }

    /// Opens a durable backend over `dir` (see [`DurableLedger::open`]).
    pub fn durable(
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> Result<(Self, OpenReport), LedgerError> {
        let (ledger, report) = DurableLedger::open(dir, options)?;
        Ok((LedgerBackend::Durable(ledger), report))
    }

    /// Appends a block to whichever backend is active.
    pub fn append(&mut self, block: Block) -> Result<(), LedgerError> {
        match self {
            LedgerBackend::Memory(ledger) => ledger.append(block).map_err(LedgerError::Chain),
            LedgerBackend::Durable(ledger) => ledger.append(block),
        }
    }

    /// The in-memory view of the chain (the ledger itself, or the durable mirror).
    pub fn as_ledger(&self) -> &Ledger {
        match self {
            LedgerBackend::Memory(ledger) => ledger,
            LedgerBackend::Durable(ledger) => ledger.ledger(),
        }
    }

    /// Height of the last appended block.
    pub fn height(&self) -> u64 {
        self.as_ledger().height()
    }

    /// Unwraps into the in-memory view: the ledger itself, or a clone of the durable mirror
    /// (the segment files stay on disk untouched).
    pub fn into_ledger(self) -> Ledger {
        match self {
            LedgerBackend::Memory(ledger) => ledger,
            LedgerBackend::Durable(ledger) => ledger.ledger().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Digest;
    use eov_common::rwset::{Key, Value};
    use eov_common::txn::{Transaction, TxnStatus};
    use eov_common::version::SeqNo;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "eov-durable-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn block_at(number: u64, prev: Digest) -> Block {
        let txn = Transaction::from_parts(
            number * 100,
            number.saturating_sub(1),
            [(Key::new("A"), SeqNo::new(0, 1))],
            [(
                Key::new(format!("K{number}")),
                Value::from_i64(number as i64),
            )],
        );
        let mut block = Block::build(number, prev, vec![txn]);
        block.entries[0].status = TxnStatus::Committed;
        block
    }

    fn fill(ledger: &mut DurableLedger, blocks: u64) {
        for _ in 0..blocks {
            let number = ledger.height() + 1;
            let block = block_at(number, ledger.ledger().tip_hash());
            ledger.append(block).expect("append");
        }
    }

    #[test]
    fn reopen_recovers_every_block_bit_identically() {
        let dir = temp_dir("reopen");
        let tip = {
            let (mut ledger, report) =
                DurableLedger::open(&dir, DurableOptions::default()).unwrap();
            assert_eq!(report.blocks_recovered, 0);
            fill(&mut ledger, 8);
            ledger.ledger().tip_hash()
        };
        let (ledger, report) = DurableLedger::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(report.blocks_recovered, 8);
        assert!(report.torn.is_none());
        assert_eq!(ledger.height(), 8);
        assert_eq!(ledger.ledger().tip_hash(), tip);
        assert!(ledger.ledger().verify_integrity().is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn small_rotation_size_spreads_blocks_over_many_segments() {
        let dir = temp_dir("rotate");
        let options = DurableOptions {
            rotate_bytes: 256,
            ..DurableOptions::default()
        };
        {
            let (mut ledger, _) = DurableLedger::open(&dir, options).unwrap();
            fill(&mut ledger, 10);
        }
        let (ledger, report) = DurableLedger::open(&dir, options).unwrap();
        assert!(report.segments > 1, "expected rotation, got 1 segment");
        assert_eq!(ledger.height(), 10);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_after_reopen_continues_the_chain() {
        let dir = temp_dir("resume");
        {
            let (mut ledger, _) = DurableLedger::open(&dir, DurableOptions::default()).unwrap();
            fill(&mut ledger, 3);
        }
        {
            let (mut ledger, _) = DurableLedger::open(&dir, DurableOptions::default()).unwrap();
            fill(&mut ledger, 3);
            assert_eq!(ledger.height(), 6);
        }
        let (ledger, _) = DurableLedger::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(ledger.height(), 6);
        assert!(ledger.ledger().verify_integrity().is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_sequence_append_is_rejected_before_touching_disk() {
        let dir = temp_dir("reject");
        let (mut ledger, _) = DurableLedger::open(&dir, DurableOptions::default()).unwrap();
        fill(&mut ledger, 2);
        let tail_before = ledger.tail_segment_len();
        let skipped = block_at(9, ledger.ledger().tip_hash());
        let err = ledger.append(skipped).unwrap_err();
        assert!(matches!(err, LedgerError::Chain(_)), "got {err}");
        assert_eq!(ledger.tail_segment_len(), tail_before, "disk was touched");
        assert_eq!(ledger.height(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backend_enum_dispatches_both_ways() {
        let dir = temp_dir("backend");
        let mut memory = LedgerBackend::memory();
        let (mut durable, _) = LedgerBackend::durable(&dir, DurableOptions::default()).unwrap();
        for backend in [&mut memory, &mut durable] {
            let block = block_at(1, Digest::ZERO);
            backend.append(block).unwrap();
            assert_eq!(backend.height(), 1);
        }
        assert_eq!(
            memory.as_ledger().tip_hash(),
            durable.as_ledger().tip_hash()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
