//! Criterion micro-benchmarks of the five concurrency controls: per-transaction arrival cost
//! (the right panel of Figure 12) and per-block reordering cost (the right panel of Figure 11),
//! measured on real pending sets produced by the modified Smallbank workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eov_baselines::api::SystemKind;
use eov_common::config::{CcConfig, WorkloadParams};
use eov_common::txn::{Transaction, TxnId};
use eov_vstore::{MultiVersionStore, SnapshotManager};
use eov_workload::generator::{WorkloadGenerator, WorkloadKind};
use fabricsharp_core::endorser::SnapshotEndorser;
use std::time::Duration;

/// Materialises `count` endorsed Smallbank transactions against a seeded store.
fn sample_txns(count: usize, write_hot_ratio: f64) -> Vec<Transaction> {
    let params = WorkloadParams {
        num_accounts: 2_000,
        write_hot_ratio,
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(WorkloadKind::ModifiedSmallbank, params, 7);
    let mut store = MultiVersionStore::new();
    store.seed_genesis(generator.genesis());
    let snapshots = SnapshotManager::new();
    snapshots.register_block(0);
    let endorser = SnapshotEndorser::new(snapshots);

    (0..count)
        .map(|i| {
            let template = generator.next_template();
            endorser.simulate_at(&store, TxnId(i as u64 + 1), 0, |ctx| template.run(ctx))
        })
        .collect()
}

fn bench_arrival(c: &mut Criterion) {
    let txns = sample_txns(200, 0.2);
    let mut group = c.benchmark_group("arrival_processing");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for system in SystemKind::all() {
        group.bench_with_input(
            BenchmarkId::new("200_txns", system.label()),
            &system,
            |b, &system| {
                b.iter(|| {
                    let mut cc = system.build(CcConfig::default());
                    for txn in &txns {
                        let _ = cc.on_arrival(txn.clone());
                    }
                    cc.pending_len()
                });
            },
        );
    }
    group.finish();
}

fn bench_block_formation(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_formation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for batch in [50usize, 200] {
        let txns = sample_txns(batch, 0.2);
        for system in SystemKind::all() {
            group.bench_with_input(
                BenchmarkId::new(format!("batch_{batch}"), system.label()),
                &system,
                |b, &system| {
                    b.iter(|| {
                        let mut cc = system.build(CcConfig::default());
                        for txn in &txns {
                            let _ = cc.on_arrival(txn.clone());
                        }
                        cc.cut_block().len()
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_bloom_vs_exact_reachability(c: &mut Criterion) {
    // The ablation called out in DESIGN.md: FabricSharp arrival processing with bloom-only
    // reachability vs bloom + exact shadow sets.
    let txns = sample_txns(200, 0.3);
    let mut group = c.benchmark_group("fabricsharp_reachability_ablation");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    for (label, exact) in [("bloom_only", false), ("bloom_plus_exact", true)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cc = fabricsharp_core::FabricSharpCC::new(CcConfig {
                    track_exact_reachability: exact,
                    ..CcConfig::default()
                });
                for txn in &txns {
                    let _ = cc.on_arrival(txn.clone());
                }
                cc.cut_block().len()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_arrival,
    bench_block_formation,
    bench_bloom_vs_exact_reachability
);
criterion_main!(benches);
