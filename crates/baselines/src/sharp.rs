//! `ConcurrencyControl` implementation for FabricSharp.
//!
//! [`fabricsharp_core::FabricSharpCC`] already exposes the arrival and block-formation entry
//! points with the right shapes; this impl adapts them to the common trait so the simulator,
//! the `SimpleChain` facade and the benchmark harness can drive FabricSharp through the same
//! interface as the four baselines. The only behavioural difference expressed here is
//! `needs_peer_validation() == false`: FabricSharp's ordering guarantees serializability, so
//! peers skip the MVCC re-check (Figure 8, "No Concurrency Validation").

use crate::api::{ConcurrencyControl, SystemKind};
use eov_common::abort::AbortReason;
use eov_common::txn::{CommitDecision, Transaction, TxnStatus};
use fabricsharp_core::FabricSharpCC;
use std::time::Duration;

impl ConcurrencyControl for FabricSharpCC {
    fn kind(&self) -> SystemKind {
        SystemKind::FabricSharp
    }

    fn on_arrival(&mut self, txn: Transaction) -> CommitDecision {
        FabricSharpCC::on_arrival(self, txn)
    }

    fn pending_len(&self) -> usize {
        FabricSharpCC::pending_len(self)
    }

    fn cut_block(&mut self) -> Vec<Transaction> {
        FabricSharpCC::cut_block(self)
    }

    fn needs_peer_validation(&self) -> bool {
        false
    }

    fn on_block_committed(&mut self, _block_no: u64, outcome: &[(Transaction, TxnStatus)]) {
        // Blocks the controller cut itself are already tracked; anything else (bootstrap,
        // ledger replay) is registered so its conflicts are visible to future arrivals.
        for (txn, status) in outcome {
            if status.is_committed() {
                self.register_committed(txn);
            }
        }
    }

    fn early_aborts(&self) -> Vec<(AbortReason, u64)> {
        self.stats()
            .early_aborts
            .iter()
            .map(|(r, c)| (*r, *c))
            .collect()
    }

    fn reorder_time(&self) -> Duration {
        self.stats().reorder_latency_total()
    }

    fn arrival_time(&self) -> Duration {
        self.stats().arrival_latency_total()
    }

    fn avg_hops(&self) -> f64 {
        self.stats().avg_hops()
    }

    fn fastpath_accepted(&self) -> u64 {
        self.stats().fastpath_accepted
    }

    fn pipelined_formation(&self) -> bool {
        self.config().pipelined_formation
    }

    fn begin_cut(&mut self) -> usize {
        FabricSharpCC::begin_cut(self)
    }

    fn finish_cut(&mut self) -> (Vec<Transaction>, u64) {
        let formed = FabricSharpCC::finish_cut(self);
        (formed.txns, formed.formation_us)
    }

    fn formation_stalls(&self) -> (u64, Duration) {
        (
            self.stats().forced_formation_joins,
            self.stats().formation_join_wait,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::config::CcConfig;
    use eov_common::rwset::{Key, Value};
    use eov_common::version::SeqNo;

    fn boxed() -> Box<dyn ConcurrencyControl> {
        SystemKind::FabricSharp.build(CcConfig::default())
    }

    #[test]
    fn trait_object_dispatch_matches_inherent_behaviour() {
        let mut cc = boxed();
        assert_eq!(cc.kind(), SystemKind::FabricSharp);
        assert!(!cc.needs_peer_validation());

        let t1 = Transaction::from_parts(
            1,
            0,
            [(Key::new("A"), SeqNo::new(0, 1))],
            [(Key::new("B"), Value::from_i64(1))],
        );
        let t2 = Transaction::from_parts(
            2,
            0,
            [(Key::new("B"), SeqNo::new(0, 2))],
            [(Key::new("A"), Value::from_i64(2))],
        );
        assert!(cc.on_arrival(t1).is_accept());
        // The write-skew partner is rejected through the trait object too.
        assert!(!cc.on_arrival(t2).is_accept());
        assert_eq!(cc.pending_len(), 1);
        assert_eq!(cc.early_aborts().len(), 1);

        let block = cc.cut_block();
        assert_eq!(block.len(), 1);
        assert_eq!(block[0].end_ts.unwrap().block, 1);
    }

    #[test]
    fn endorsement_hook_is_permissive() {
        // FabricSharp never aborts at endorsement time: snapshot reads across blocks are the
        // whole point (Proposition 1).
        let mut cc = boxed();
        let stale_snapshot = Transaction::from_parts(1, 0, [(Key::new("A"), SeqNo::new(0, 1))], []);
        assert!(cc.on_endorsement(&stale_snapshot, 5).is_accept());
    }
}
