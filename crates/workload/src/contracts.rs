//! Smart contracts for the motivation experiment (Figure 1).
//!
//! A [`SmartContract`] is anything that can be simulated in an endorsing peer's
//! [`SimulationContext`]: it reads and writes keys, and the context records the read/write
//! sets. Two trivial contracts live here — the no-op contract and the single-key update
//! contract that Figure 1 uses to show that Fabric's *raw* throughput is flat while its
//! *effective* throughput collapses under skew. The Smallbank family is in
//! [`crate::smallbank`].

use eov_common::rwset::{Key, Value};
use fabricsharp_core::endorser::SimulationContext;

/// A contract that can be simulated against a snapshot.
pub trait SmartContract {
    /// Human-readable contract name (used in experiment output).
    fn name(&self) -> &'static str;
    /// Runs the contract logic inside a simulation context.
    fn run(&self, ctx: &mut SimulationContext<'_>);
}

/// The no-op contract: touches no state at all. Every invocation is trivially serializable, so
/// its effective throughput equals the raw throughput — the left-most bar of Figure 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoOpContract;

impl SmartContract for NoOpContract {
    fn name(&self) -> &'static str {
        "no-op"
    }

    fn run(&self, _ctx: &mut SimulationContext<'_>) {}
}

/// The single-modification contract of Figure 1: read one key (chosen by the workload
/// generator with Zipfian skew) and write it back incremented. Under skew, concurrent
/// invocations pile up on the hot keys and fail Fabric's validation.
#[derive(Clone, Debug)]
pub struct KvUpdateContract {
    /// The key this invocation updates.
    pub key: Key,
}

impl KvUpdateContract {
    /// Creates an update of key index `i` in the generator's key space.
    pub fn for_index(i: usize) -> Self {
        KvUpdateContract {
            key: Key::new(format!("kv:{i}")),
        }
    }
}

impl SmartContract for KvUpdateContract {
    fn name(&self) -> &'static str {
        "kv-update"
    }

    fn run(&self, ctx: &mut SimulationContext<'_>) {
        let current = ctx.read_balance(&self.key);
        ctx.write(self.key.clone(), Value::from_i64(current + 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::txn::TxnId;
    use eov_vstore::{MultiVersionStore, SnapshotManager};
    use fabricsharp_core::endorser::SnapshotEndorser;

    fn endorse(
        contract: &dyn SmartContract,
        store: &MultiVersionStore,
    ) -> eov_common::txn::Transaction {
        let mgr = SnapshotManager::new();
        mgr.register_block(store.last_block());
        let endorser = SnapshotEndorser::new(mgr);
        endorser.simulate(store, TxnId(1), |ctx| contract.run(ctx))
    }

    #[test]
    fn noop_contract_produces_empty_sets() {
        let store = MultiVersionStore::new();
        let txn = endorse(&NoOpContract, &store);
        assert!(txn.read_set.is_empty());
        assert!(txn.write_set.is_empty());
        assert_eq!(NoOpContract.name(), "no-op");
    }

    #[test]
    fn kv_update_reads_then_increments() {
        let mut store = MultiVersionStore::new();
        store.seed_genesis([(Key::new("kv:7"), Value::from_i64(41))]);
        let contract = KvUpdateContract::for_index(7);
        let txn = endorse(&contract, &store);
        assert_eq!(txn.read_set.len(), 1);
        assert_eq!(
            txn.write_set.value_of(&Key::new("kv:7")).unwrap().as_i64(),
            Some(42)
        );
        assert_eq!(contract.name(), "kv-update");
    }

    #[test]
    fn kv_update_on_missing_key_starts_from_zero() {
        let store = MultiVersionStore::new();
        let contract = KvUpdateContract::for_index(3);
        let txn = endorse(&contract, &store);
        assert_eq!(
            txn.write_set.value_of(&Key::new("kv:3")).unwrap().as_i64(),
            Some(1)
        );
    }
}
