//! [`GraphEngine`]: the orderer-facing dispatch between the unsharded reference graph and the
//! key-space sharded graph.
//!
//! `FabricSharpCC` holds one of these; `CcConfig::store_shards` selects the variant at
//! construction time. Both variants answer every query identically (the sharded one by
//! construction — see [`crate::sharded`]), so the concurrency control's algorithms are written
//! once against this surface.

use crate::graph::{CycleCheck, DependencyGraph, InsertReport, PendingTxnSpec, TxnNode};
use crate::sharded::{ShardDeps, ShardedDependencyGraph};
use eov_common::config::CcConfig;
use eov_common::txn::TxnId;
use eov_common::version::SeqNo;

/// The dependency-graph engine behind the FabricSharp orderer: global or sharded.
#[derive(Clone, Debug)]
pub enum GraphEngine {
    /// One global graph — the unsharded reference engine (`store_shards == 0`).
    Global(DependencyGraph),
    /// Per-shard graphs with the cross-shard coordinator (`store_shards >= 1`).
    Sharded(ShardedDependencyGraph),
}

impl GraphEngine {
    /// Builds the engine selected by `config.store_shards`; `config.formation_threads` attaches
    /// the sharded engine's worker pool (inert for the flat engine, which has no per-shard
    /// decomposition to fan out).
    pub fn new(config: CcConfig) -> Self {
        if config.store_shards == 0 {
            GraphEngine::Global(DependencyGraph::new(config))
        } else {
            GraphEngine::Sharded(
                ShardedDependencyGraph::new(config, config.store_shards)
                    .with_formation_threads(config.formation_threads),
            )
        }
    }

    /// Number of worker threads the sharded engine fans per-shard work out on (0 = inline,
    /// and always 0 for the flat engine).
    pub fn formation_threads(&self) -> usize {
        match self {
            GraphEngine::Global(_) => 0,
            GraphEngine::Sharded(g) => g.formation_threads(),
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &CcConfig {
        match self {
            GraphEngine::Global(g) => g.config(),
            GraphEngine::Sharded(g) => g.config(),
        }
    }

    /// Number of key-space shards (1 for the global engine).
    pub fn shard_count(&self) -> usize {
        match self {
            GraphEngine::Global(_) => 1,
            GraphEngine::Sharded(g) => g.shard_count(),
        }
    }

    /// Number of live border (multi-shard) transactions; always 0 for the global engine.
    pub fn border_count(&self) -> usize {
        match self {
            GraphEngine::Global(_) => 0,
            GraphEngine::Sharded(g) => g.border_count(),
        }
    }

    /// Number of distinct transactions currently tracked.
    pub fn len(&self) -> usize {
        match self {
            GraphEngine::Global(g) => g.len(),
            GraphEngine::Sharded(g) => g.len(),
        }
    }

    /// Whether no transaction is tracked.
    pub fn is_empty(&self) -> bool {
        match self {
            GraphEngine::Global(g) => g.is_empty(),
            GraphEngine::Sharded(g) => g.is_empty(),
        }
    }

    /// Whether `id` is currently tracked.
    pub fn contains(&self, id: TxnId) -> bool {
        match self {
            GraphEngine::Global(g) => g.contains(id),
            GraphEngine::Sharded(g) => g.contains(id),
        }
    }

    /// Immutable access to a node (for the sharded engine: one of its copies — all copies
    /// agree on timestamps, age and the reach set).
    pub fn node(&self, id: TxnId) -> Option<&TxnNode> {
        match self {
            GraphEngine::Global(g) => g.node(id),
            GraphEngine::Sharded(g) => g.node(id),
        }
    }

    /// The immediate successors of `id` (union across shards for border transactions).
    pub fn successors(&self, id: TxnId) -> Vec<TxnId> {
        match self {
            GraphEngine::Global(g) => g.successors(id),
            GraphEngine::Sharded(g) => g.successors_global(id),
        }
    }

    /// Number of pending transactions.
    pub fn pending_len(&self) -> usize {
        match self {
            GraphEngine::Global(g) => g.pending_len(),
            GraphEngine::Sharded(g) => g.pending_len(),
        }
    }

    /// Section 4.4's arrival-time cycle probe.
    pub fn would_close_cycle(&self, preds: &[TxnId], succs: &[TxnId]) -> CycleCheck {
        match self {
            GraphEngine::Global(g) => g.would_close_cycle(preds, succs),
            GraphEngine::Sharded(g) => g.would_close_cycle(preds, succs),
        }
    }

    /// Algorithm 4: inserts a pending transaction. The global engine uses the flat dependency
    /// lists; the sharded engine uses `per_shard` (or, when it is empty, treats the spec as a
    /// single-shard transaction homed on shard 0 with the flat lists).
    pub fn insert_pending(
        &mut self,
        spec: PendingTxnSpec,
        global_preds: &[TxnId],
        global_succs: &[TxnId],
        per_shard: &[ShardDeps],
        next_block: u64,
    ) -> InsertReport {
        match self {
            GraphEngine::Global(g) => {
                g.insert_pending(spec, global_preds, global_succs, next_block)
            }
            GraphEngine::Sharded(g) => {
                g.insert_pending(spec, global_preds, global_succs, per_shard, next_block)
            }
        }
    }

    /// Marks a transaction committed at `end_ts`.
    pub fn mark_committed(&mut self, id: TxnId, end_ts: SeqNo) {
        match self {
            GraphEngine::Global(g) => g.mark_committed(id, end_ts),
            GraphEngine::Sharded(g) => g.mark_committed(id, end_ts),
        }
    }

    /// Removes a transaction entirely (withdrawals).
    pub fn remove(&mut self, id: TxnId) {
        match self {
            GraphEngine::Global(g) => g.remove(id),
            GraphEngine::Sharded(g) => g.remove(id),
        }
    }

    /// Algorithm 3, line 1: the deterministic topological order of the pending set.
    pub fn topo_sort_pending(&self) -> Vec<TxnId> {
        match self {
            GraphEngine::Global(g) => g.topo_sort_pending(),
            GraphEngine::Sharded(g) => g.topo_sort_pending(),
        }
    }

    /// Worker-pool variant of [`GraphEngine::topo_sort_pending`]: the sharded engine fans its
    /// per-shard sorts out when a pool is attached; output is bit-identical either way. This
    /// is what block formation calls.
    pub fn topo_sort_pending_par(&mut self) -> Vec<TxnId> {
        match self {
            GraphEngine::Global(g) => g.topo_sort_pending(),
            GraphEngine::Sharded(g) => g.topo_sort_pending_par(),
        }
    }

    /// Whether Algorithm 5's ww restoration may be decomposed per shard and fanned out on the
    /// worker pool ([`GraphEngine::restore_ww_chains`]); always false for the flat engine.
    pub fn can_restore_ww_per_shard(&self) -> bool {
        match self {
            GraphEngine::Global(_) => false,
            GraphEngine::Sharded(g) => g.can_restore_ww_per_shard(),
        }
    }

    /// Algorithm 5 decomposed per shard (valid only when
    /// [`GraphEngine::can_restore_ww_per_shard`] holds): restores the per-key writer chains
    /// grouped by owning shard and propagates downstream inside each shard, fanning the
    /// independent shards out on the worker pool.
    pub fn restore_ww_chains(&mut self, chains_by_shard: Vec<(usize, Vec<Vec<TxnId>>)>) {
        match self {
            GraphEngine::Global(_) => {
                unreachable!("callers gate on can_restore_ww_per_shard, which is false here")
            }
            GraphEngine::Sharded(g) => g.restore_ww_chains(chains_by_shard),
        }
    }

    /// Whether `earlier` already reaches `later` (Algorithm 5's redundant-edge skip).
    pub fn already_connected(&self, earlier: TxnId, later: TxnId) -> bool {
        match self {
            GraphEngine::Global(g) => g.already_connected(earlier, later),
            GraphEngine::Sharded(g) => g.already_connected(earlier, later),
        }
    }

    /// Algorithm 5's restored ww edge; `shard` is the shard owning the restored key (ignored
    /// by the global engine).
    pub fn add_ww_edge(&mut self, shard: usize, from: TxnId, to: TxnId) {
        match self {
            GraphEngine::Global(g) => g.add_edge_with_union(from, to),
            GraphEngine::Sharded(g) => g.add_ww_edge(shard, from, to),
        }
    }

    /// The tail of Algorithm 5: propagates the restored reachability downstream of `heads`
    /// exactly once per node, in topological order.
    pub fn propagate_from(&mut self, heads: &[TxnId]) {
        match self {
            GraphEngine::Global(g) => {
                let iteration = g.reachable_in_topo_order(heads);
                for txn in iteration {
                    for s in g.successors(txn) {
                        g.propagate_reachability(txn, s);
                    }
                }
            }
            GraphEngine::Sharded(g) => g.propagate_from(heads),
        }
    }

    /// Section 4.6 pruning. Returns the number of transactions removed.
    pub fn prune_for_next_block(&mut self, next_block: u64) -> usize {
        match self {
            GraphEngine::Global(g) => g.prune_for_next_block(next_block),
            GraphEngine::Sharded(g) => g.prune_for_next_block(next_block),
        }
    }

    /// Exact reachability query (test oracles, false-positive classification).
    pub fn reaches_exact(&self, from: TxnId, to: TxnId) -> bool {
        match self {
            GraphEngine::Global(g) => g.reaches_exact(from, to),
            GraphEngine::Sharded(g) => g.reaches_exact(from, to),
        }
    }

    /// Exact whole-graph acyclicity (test oracle).
    pub fn is_acyclic_exact(&self) -> bool {
        match self {
            GraphEngine::Global(g) => g.is_acyclic_exact(),
            GraphEngine::Sharded(g) => g.is_acyclic_exact(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_variant_follows_the_store_shards_knob() {
        let global = GraphEngine::new(CcConfig::default());
        assert!(matches!(global, GraphEngine::Global(_)));
        assert_eq!(global.shard_count(), 1);
        assert_eq!(global.border_count(), 0);

        let sharded = GraphEngine::new(CcConfig {
            store_shards: 4,
            ..CcConfig::default()
        });
        assert!(matches!(sharded, GraphEngine::Sharded(_)));
        assert_eq!(sharded.shard_count(), 4);
        assert!(sharded.is_empty());
    }

    #[test]
    fn both_variants_agree_on_a_tiny_workload() {
        let mut engines = [
            GraphEngine::new(CcConfig {
                track_exact_reachability: true,
                ..CcConfig::default()
            }),
            GraphEngine::new(CcConfig {
                track_exact_reachability: true,
                store_shards: 2,
                ..CcConfig::default()
            }),
        ];
        for engine in &mut engines {
            let spec = |id: u64| PendingTxnSpec {
                id: TxnId(id),
                start_ts: SeqNo::snapshot_after(0),
                read_keys: vec![],
                write_keys: vec![],
            };
            engine.insert_pending(spec(1), &[], &[], &[], 1);
            engine.insert_pending(spec(2), &[TxnId(1)], &[], &[], 1);
            assert!(engine.contains(TxnId(2)));
            assert_eq!(engine.len(), 2);
            assert_eq!(engine.pending_len(), 2);
            assert!(engine.reaches_exact(TxnId(1), TxnId(2)));
            assert!(engine.is_acyclic_exact());
            assert!(!engine
                .would_close_cycle(&[TxnId(2)], &[TxnId(1)])
                .is_acyclic());
            assert_eq!(engine.topo_sort_pending(), vec![TxnId(1), TxnId(2)]);
            engine.mark_committed(TxnId(1), SeqNo::new(1, 1));
            assert_eq!(engine.pending_len(), 1);
            assert_eq!(engine.successors(TxnId(1)), vec![TxnId(2)]);
        }
    }
}
