//! Static conflict-matrix report: per-mix template×template conflict table plus sampled
//! instance safe-rates from the key-granular conflict analyzer.
//!
//! ```text
//! cargo run --release -p eov-bench --bin conflict_matrix
//! ```
//!
//! For every workload mix this prints the symbolic template catalog with its static class
//! (template granularity), the conflict matrix computed by expression unification (`·` = the
//! pair can never conflict, `X` = some instantiation may), and the *instance* safe-rate over
//! 2 000 sampled arrivals — the fraction whose bound key footprints provably miss every write
//! expression in the mix. The gap between template and instance safe-rates is exactly what
//! the key-granular analysis buys: on write-partitioned YCSB-B the read template conflicts
//! with the writer template (their domains overlap symbolically), yet ~3/4 of concrete read
//! instances sample only keys below the write partition and ride the fast path.

use eov_common::config::WorkloadParams;
use eov_workload::generator::{WorkloadGenerator, WorkloadKind};
use eov_workload::YcsbProfile;

const SAMPLES: usize = 2_000;
const NUM_ACCOUNTS: usize = 2_000;

fn report(name: &str, kind: WorkloadKind) {
    let params = WorkloadParams {
        num_accounts: NUM_ACCOUNTS,
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(kind, params, 7);
    let analyzer = generator.analyzer();
    let matrix = analyzer.matrix();

    println!("== {name} ==");
    if matrix.templates.is_empty() {
        println!("  (no templates with key accesses)\n");
        return;
    }
    let width = matrix
        .templates
        .iter()
        .map(|t| t.len())
        .max()
        .unwrap_or(0)
        .max(8);
    println!("  {:width$}  class    conflicts-with", "template");
    for (i, tname) in matrix.templates.iter().enumerate() {
        let class = if matrix.classes[i].is_safe() {
            "safe"
        } else {
            "unknown"
        };
        let row: String = matrix.conflicts[i]
            .iter()
            .map(|&c| if c { " X" } else { " ·" })
            .collect();
        println!("  {tname:width$}  {class:7} {row}");
    }

    let mut safe = 0usize;
    let mut template_safe = 0usize;
    for _ in 0..SAMPLES {
        let template = generator.next_template();
        if analyzer.classify_template(&template).is_safe() {
            template_safe += 1;
        }
        if analyzer.classify_instance(&template).is_safe() {
            safe += 1;
        }
    }
    println!(
        "  instance safe-rate: {:.1}% ({safe}/{SAMPLES}); template safe-rate: {:.1}%; \
         instance rescue possible: {}",
        100.0 * safe as f64 / SAMPLES as f64,
        100.0 * template_safe as f64 / SAMPLES as f64,
        analyzer.any_safe_possible(),
    );
    println!();
}

fn main() {
    println!(
        "Key-granular conflict analysis, {NUM_ACCOUNTS} accounts, {SAMPLES} sampled instances \
         per mix\n"
    );
    let mixes: Vec<(&str, WorkloadKind)> = vec![
        ("kv-update θ=0.5", WorkloadKind::KvUpdate { theta: 0.5 }),
        ("ycsb-a", WorkloadKind::Ycsb(YcsbProfile::a())),
        ("ycsb-b", WorkloadKind::Ycsb(YcsbProfile::b())),
        (
            "ycsb-a part. 1/8",
            WorkloadKind::Ycsb(YcsbProfile::a().with_write_partition(0.125)),
        ),
        (
            "ycsb-b part. 1/8",
            WorkloadKind::Ycsb(YcsbProfile::b().with_write_partition(0.125)),
        ),
        ("ycsb-c", WorkloadKind::Ycsb(YcsbProfile::c())),
        ("ycsb-f", WorkloadKind::Ycsb(YcsbProfile::f())),
        ("modified-smallbank", WorkloadKind::ModifiedSmallbank),
        (
            "mixed-smallbank θ=0.7",
            WorkloadKind::MixedSmallbank { theta: 0.7 },
        ),
        ("create-account", WorkloadKind::CreateAccount),
    ];
    for (name, kind) in mixes {
        report(name, kind);
    }
}
