//! Fabric++ (Sharma et al., SIGMOD 2019).
//!
//! Fabric++ keeps Fabric's architecture but adds two optimisations:
//!
//! 1. **Early abort of cross-block reads** — the read-write lock is removed from the execute
//!    phase, and any simulation that observed a block commit while it was running (i.e. whose
//!    snapshot is older than the latest block at submission time) is aborted immediately
//!    ("simulation abort" in Figure 14).
//! 2. **Within-block reordering** — just before a block is cut, the orderer (a) drops
//!    transactions whose reads are already stale with respect to the committed state (they
//!    could never pass validation no matter the order), (b) builds the conflict graph among the
//!    block's transactions, (c) breaks cycles by greedily aborting the most-conflicting
//!    transactions, and (d) emits the rest in an order that puts readers before the writers
//!    that would invalidate them.
//!
//! The crucial limitation the paper exploits: the reordering scope is a *single block*, and
//! dependencies on transactions in earlier blocks (which are still concurrent, Proposition 3)
//! are not considered.

use crate::api::{ConcurrencyControl, SystemKind};
use eov_common::abort::AbortReason;
use eov_common::rwset::Key;
use eov_common::txn::{CommitDecision, Transaction, TxnStatus};
use eov_common::version::SeqNo;
use std::collections::{BTreeSet, HashMap};
use std::time::{Duration, Instant};

/// The Fabric++ orderer-side concurrency control.
#[derive(Debug, Default)]
pub struct FabricPlusPlusCC {
    pending: Vec<Transaction>,
    next_block: u64,
    /// Latest committed version per key, learnt from `on_block_committed`; used for the
    /// early-abort-of-stale-reads step of the reordering.
    latest_versions: HashMap<Key, SeqNo>,
    early_aborts: HashMap<AbortReason, u64>,
    reorder_time: Duration,
}

impl FabricPlusPlusCC {
    /// Creates a new instance starting at block 1.
    pub fn new() -> Self {
        FabricPlusPlusCC {
            pending: Vec::new(),
            next_block: 1,
            latest_versions: HashMap::new(),
            early_aborts: HashMap::new(),
            reorder_time: Duration::ZERO,
        }
    }

    fn record_abort(&mut self, reason: AbortReason) {
        *self.early_aborts.entry(reason).or_insert(0) += 1;
    }

    /// The within-block reordering of Fabric++: returns the surviving transactions in their
    /// new order; the dropped ones are counted as early aborts.
    fn reorder_block(&mut self, txns: Vec<Transaction>) -> Vec<Transaction> {
        // Step (a): drop transactions whose reads are already stale against committed state.
        let mut candidates: Vec<Transaction> = Vec::with_capacity(txns.len());
        for txn in txns {
            let stale = txn.read_set.iter().any(|read| {
                self.latest_versions
                    .get(&read.key)
                    .map(|latest| *latest > read.version)
                    .unwrap_or(false)
            });
            if stale {
                self.record_abort(AbortReason::StaleRead);
            } else {
                candidates.push(txn);
            }
        }

        // Step (b): conflict graph. Edge reader → writer whenever a transaction in the block
        // writes a key another transaction in the block read: the reader must be ordered
        // before the writer or it becomes invalid.
        let n = candidates.len();
        // Deterministic (ordered) edge sets: the cycle-finding DFS below iterates these,
        // and which cycle it reports decides the abort victim. A `HashSet` here made the
        // victim depend on the per-instance hash seed — two identically-fed orderers could
        // cut different blocks, violating the Section 3.5 agreement property (caught by the
        // pipeline determinism harness).
        let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
        for (w_idx, writer) in candidates.iter().enumerate() {
            for write in writer.write_set.iter() {
                for (r_idx, reader) in candidates.iter().enumerate() {
                    if r_idx != w_idx && reader.read_set.contains(&write.key) {
                        edges[r_idx].insert(w_idx);
                    }
                }
            }
        }

        // Step (c): break cycles greedily — while the graph has a cycle, abort the transaction
        // with the highest total degree among nodes on some cycle.
        let mut alive: Vec<bool> = vec![true; n];
        while let Some(cycle_nodes) = find_cycle_nodes(&edges, &alive) {
            let victim = cycle_nodes
                .iter()
                .copied()
                .max_by_key(|&i| {
                    let out = edges[i].iter().filter(|j| alive[**j]).count();
                    let inc = (0..n)
                        .filter(|&j| alive[j] && edges[j].contains(&i))
                        .count();
                    (out + inc, i)
                })
                .expect("cycle is non-empty");
            alive[victim] = false;
            self.record_abort(AbortReason::InBlockCycle);
        }

        // Step (d): topological order of the survivors (readers before writers), falling back
        // to original position for ties so replicas agree.
        let mut indegree: Vec<usize> = vec![0; n];
        for (i, targets) in edges.iter().enumerate() {
            if !alive[i] {
                continue;
            }
            for &j in targets {
                if alive[j] {
                    indegree[j] += 1;
                }
            }
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| alive[i] && indegree[i] == 0).collect();
        let mut order: Vec<usize> = Vec::new();
        while let Some(&i) = ready.first() {
            ready.remove(0);
            order.push(i);
            for &j in &edges[i] {
                if alive[j] {
                    indegree[j] -= 1;
                    if indegree[j] == 0 {
                        let pos = ready.binary_search(&j).unwrap_or_else(|p| p);
                        ready.insert(pos, j);
                    }
                }
            }
        }

        let mut by_index: HashMap<usize, Transaction> =
            candidates.into_iter().enumerate().collect();
        order
            .into_iter()
            .filter_map(|i| by_index.remove(&i))
            .collect()
    }
}

/// Returns the set of alive nodes that sit on at least one cycle, or `None` if the alive
/// sub-graph is acyclic. Uses a DFS colouring and reports the grey stack when a back edge is
/// found.
fn find_cycle_nodes(edges: &[BTreeSet<usize>], alive: &[bool]) -> Option<Vec<usize>> {
    #[derive(Clone, Copy, PartialEq)]
    enum C {
        White,
        Grey,
        Black,
    }
    let n = edges.len();
    let mut colour = vec![C::White; n];
    for start in 0..n {
        if !alive[start] || colour[start] != C::White {
            continue;
        }
        // Iterative DFS with explicit path tracking.
        let mut stack: Vec<(usize, Vec<usize>)> =
            vec![(start, edges[start].iter().copied().collect())];
        colour[start] = C::Grey;
        let mut path = vec![start];
        while let Some((node, children)) = stack.last_mut() {
            if let Some(child) = children.pop() {
                if !alive[child] {
                    continue;
                }
                match colour[child] {
                    C::Grey => {
                        // Found a cycle: everything on the current path from `child` onward.
                        let pos = path.iter().position(|&x| x == child).unwrap_or(0);
                        return Some(path[pos..].to_vec());
                    }
                    C::White => {
                        colour[child] = C::Grey;
                        path.push(child);
                        stack.push((child, edges[child].iter().copied().collect()));
                    }
                    C::Black => {}
                }
            } else {
                colour[*node] = C::Black;
                path.pop();
                stack.pop();
            }
        }
    }
    None
}

impl ConcurrencyControl for FabricPlusPlusCC {
    fn kind(&self) -> SystemKind {
        SystemKind::FabricPlusPlus
    }

    fn on_endorsement(&mut self, txn: &Transaction, latest_block: u64) -> CommitDecision {
        // Simulations that observed a block commit while running are aborted (Fabric++ removes
        // the execute-phase lock but refuses cross-block reads). Read-free transactions have
        // nothing to read across blocks, so they are exempt.
        if latest_block > txn.snapshot_block && !txn.read_set.is_empty() {
            self.record_abort(AbortReason::CrossBlockRead);
            CommitDecision::Reject(AbortReason::CrossBlockRead)
        } else {
            CommitDecision::Accept
        }
    }

    fn on_arrival(&mut self, txn: Transaction) -> CommitDecision {
        self.pending.push(txn);
        CommitDecision::Accept
    }

    fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn cut_block(&mut self) -> Vec<Transaction> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let block_no = self.next_block;
        let batch = std::mem::take(&mut self.pending);
        let started = Instant::now();
        let reordered = self.reorder_block(batch);
        self.reorder_time += started.elapsed();
        if reordered.is_empty() {
            // Every transaction was dropped; no block is produced and the number is not
            // consumed (matching the cutter semantics of never emitting empty blocks).
            return Vec::new();
        }
        self.next_block += 1;
        reordered
            .into_iter()
            .enumerate()
            .map(|(i, mut txn)| {
                txn.end_ts = Some(SeqNo::new(block_no, i as u32 + 1));
                txn
            })
            .collect()
    }

    fn on_block_committed(&mut self, block_no: u64, outcome: &[(Transaction, TxnStatus)]) {
        self.next_block = self.next_block.max(block_no + 1);
        for (txn, status) in outcome {
            if status.is_committed() {
                let slot = txn.end_ts.expect("committed transactions carry a slot");
                for write in txn.write_set.iter() {
                    self.latest_versions.insert(write.key.clone(), slot);
                }
            }
        }
    }

    fn early_aborts(&self) -> Vec<(AbortReason, u64)> {
        self.early_aborts.iter().map(|(r, c)| (*r, *c)).collect()
    }

    fn reorder_time(&self) -> Duration {
        self.reorder_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::rwset::Value;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn txn(id: u64, snapshot: u64, reads: &[(&str, (u64, u32))], writes: &[&str]) -> Transaction {
        Transaction::from_parts(
            id,
            snapshot,
            reads.iter().map(|(key, v)| (k(key), SeqNo::new(v.0, v.1))),
            writes
                .iter()
                .map(|key| (k(key), Value::from_i64(id as i64))),
        )
    }

    #[test]
    fn cross_block_reads_are_aborted_at_endorsement() {
        let mut cc = FabricPlusPlusCC::new();
        let t = txn(1, 3, &[("A", (1, 1))], &["B"]);
        assert!(cc.on_endorsement(&t, 3).is_accept());
        assert_eq!(
            cc.on_endorsement(&t, 4),
            CommitDecision::Reject(AbortReason::CrossBlockRead)
        );
        assert_eq!(cc.early_aborts(), vec![(AbortReason::CrossBlockRead, 1)]);
    }

    #[test]
    fn table1_reordering_commits_txn4_and_txn5_instead_of_txn3() {
        // The paper's Table 1: within block 3, Fabric++ reorders Txn3 behind Txn4 and Txn5,
        // committing those two and aborting Txn3 (Txn2 is already stale and dropped outright
        // once the committed state is known).
        let mut cc = FabricPlusPlusCC::new();
        // Teach the CC the committed state after block 2 (B and C at version (2,1)).
        let mut block2_writer = txn(90, 1, &[], &["B", "C"]);
        block2_writer.end_ts = Some(SeqNo::new(2, 1));
        cc.on_block_committed(2, &[(block2_writer, TxnStatus::Committed)]);
        cc.next_block = 3;

        let txn2 = txn(2, 1, &[("A", (1, 1)), ("B", (1, 2))], &["C"]);
        let txn3 = txn(3, 2, &[("B", (2, 1))], &["C"]);
        let txn4 = txn(4, 2, &[("C", (2, 1))], &["B"]);
        let txn5 = txn(5, 2, &[("C", (2, 1))], &["A"]);
        for t in [txn2, txn3, txn4, txn5] {
            assert!(cc.on_arrival(t).is_accept());
        }
        let block = cc.cut_block();
        let ids: Vec<u64> = block.iter().map(|t| t.id.0).collect();
        // Txn2 dropped (stale read of B); one of {3} aborted to break the cycle with 4
        // (3 writes C which 4/5 read; 4 writes B which 3 reads).
        assert!(
            !ids.contains(&2),
            "stale Txn2 must be dropped before reordering"
        );
        assert!(
            ids.contains(&4) && ids.contains(&5),
            "Txn4 and Txn5 must survive, got {ids:?}"
        );
        assert!(
            !ids.contains(&3),
            "Txn3 is the cycle-breaking victim, got {ids:?}"
        );
        // Readers of C (4, 5) must come before any writer of C — trivially true since 3 was
        // dropped; the block is just [4, 5] in some order with slots assigned.
        assert_eq!(block.len(), 2);
        assert_eq!(block[0].end_ts.unwrap().block, 3);
    }

    #[test]
    fn readers_are_ordered_before_writers_within_a_block() {
        let mut cc = FabricPlusPlusCC::new();
        // Arrival order: writer of X first, then a reader of X — reordering must flip them so
        // the reader survives validation.
        assert!(cc.on_arrival(txn(1, 0, &[], &["X"])).is_accept());
        assert!(cc
            .on_arrival(txn(2, 0, &[("X", (0, 1))], &["Y"]))
            .is_accept());
        let block = cc.cut_block();
        let ids: Vec<u64> = block.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![2, 1]);
    }

    #[test]
    fn unbreakable_two_txn_cycle_aborts_one_victim() {
        let mut cc = FabricPlusPlusCC::new();
        // t1 reads A writes B, t2 reads B writes A → reader-before-writer constraints both
        // ways → cycle → exactly one of them is aborted.
        assert!(cc
            .on_arrival(txn(1, 0, &[("A", (0, 1))], &["B"]))
            .is_accept());
        assert!(cc
            .on_arrival(txn(2, 0, &[("B", (0, 2))], &["A"]))
            .is_accept());
        let block = cc.cut_block();
        assert_eq!(block.len(), 1);
        let aborted: u64 = cc.early_aborts().iter().map(|(_, c)| c).sum();
        assert_eq!(aborted, 1);
    }

    /// Regression test: two independently constructed orderers fed the same arrival stream
    /// must cut byte-identical blocks. With hash-seeded edge sets the cycle-breaking victim
    /// depended on the per-instance hash seed, so replicas could disagree (a Section 3.5
    /// agreement violation surfaced by the pipeline determinism harness).
    #[test]
    fn replicated_instances_break_cycles_identically() {
        // A batch with several overlapping rw cycles so the victim choice is genuinely
        // contested: t_i reads k_{i} and writes k_{i+1 mod 5}.
        let batch: Vec<Transaction> = (0..5u64)
            .map(|i| {
                let read_key = format!("k{i}");
                let write_key = format!("k{}", (i + 1) % 5);
                txn(
                    i + 1,
                    0,
                    &[(read_key.as_str(), (0, 1))],
                    &[write_key.as_str()],
                )
            })
            .collect();
        let cut = |mut cc: FabricPlusPlusCC| -> Vec<u64> {
            for t in batch.clone() {
                assert!(cc.on_arrival(t).is_accept());
            }
            cc.cut_block().iter().map(|t| t.id.0).collect()
        };
        let reference = cut(FabricPlusPlusCC::new());
        for _ in 0..10 {
            assert_eq!(cut(FabricPlusPlusCC::new()), reference);
        }
    }

    fn txn_with_key_refs(id: u64, reads: &[&str], writes: &[&str]) -> Transaction {
        Transaction::from_parts(
            id,
            0,
            reads.iter().map(|key| (k(key), SeqNo::new(0, 1))),
            writes
                .iter()
                .map(|key| (k(key), Value::from_i64(id as i64))),
        )
    }

    #[test]
    fn replicated_instances_agree_on_dense_conflict_batches() {
        let keys = ["A", "B", "C", "D"];
        let batch: Vec<Transaction> = (0..8u64)
            .map(|i| {
                let r = keys[(i % 4) as usize];
                let w = keys[((i + 1) % 4) as usize];
                txn_with_key_refs(i + 1, &[r], &[w])
            })
            .collect();
        let cut = |mut cc: FabricPlusPlusCC| -> Vec<u64> {
            for t in batch.clone() {
                let _ = cc.on_arrival(t);
            }
            cc.cut_block().iter().map(|t| t.id.0).collect()
        };
        let reference = cut(FabricPlusPlusCC::new());
        for _ in 0..10 {
            assert_eq!(cut(FabricPlusPlusCC::new()), reference);
        }
    }

    #[test]
    fn empty_cut_and_all_dropped_cut_produce_no_block() {
        let mut cc = FabricPlusPlusCC::new();
        assert!(cc.cut_block().is_empty());
        // A single transaction that is already stale: dropped, no block.
        let mut writer = txn(9, 0, &[], &["A"]);
        writer.end_ts = Some(SeqNo::new(1, 1));
        cc.on_block_committed(1, &[(writer, TxnStatus::Committed)]);
        assert!(cc
            .on_arrival(txn(1, 0, &[("A", (0, 1))], &["B"]))
            .is_accept());
        assert!(cc.cut_block().is_empty());
        assert_eq!(cc.early_aborts(), vec![(AbortReason::StaleRead, 1)]);
    }
}
