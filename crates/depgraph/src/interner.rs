//! Transaction-id interning: `TxnId` → dense `u32` slot.
//!
//! The dependency graph's hot paths (reachability walks, cycle tests, the pending-set
//! topological sort) used to address nodes through `HashMap<u64, TxnNode>` lookups. Interning
//! every tracked transaction into a dense slot turns those into direct `Vec` indexing:
//! adjacency lists store `u32` slots, visited sets become epoch-tagged arrays
//! ([`crate::visited::EpochVisited`]) and per-block closure sets become dense bitsets over
//! pending indices. Slots of removed transactions are recycled through a free list, so the
//! slot space stays as small as the peak number of live nodes — the property the pruning of
//! Section 4.6 already guarantees is bounded.

use eov_common::txn::TxnId;
use std::collections::HashMap;

/// A slab-style interner with a free list. `intern` hands out the smallest recycled slot if
/// one is available, otherwise appends a fresh one; `release` returns a slot to the free list.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    map: HashMap<u64, u32>,
    /// Raw transaction id stored per slot; stale for vacant slots (callers only index live
    /// slots, which the graph guarantees by cleaning adjacency on removal).
    ids: Vec<u64>,
    free: Vec<u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Number of live (interned, not released) ids.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no id is interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total slot space ever allocated (live + recyclable). Dense per-slot side tables are
    /// sized by this.
    pub fn capacity(&self) -> usize {
        self.ids.len()
    }

    /// The slot of `id`, if interned.
    #[inline]
    pub fn get(&self, id: TxnId) -> Option<u32> {
        self.map.get(&id.0).copied()
    }

    /// Interns `id`, returning its (possibly pre-existing) slot. Recycles released slots
    /// before growing the slot space.
    pub fn intern(&mut self, id: TxnId) -> u32 {
        if let Some(&slot) = self.map.get(&id.0) {
            return slot;
        }
        let slot = match self.free.pop() {
            Some(slot) => {
                self.ids[slot as usize] = id.0;
                slot
            }
            None => {
                let slot = u32::try_from(self.ids.len()).expect("slot space exceeds u32");
                self.ids.push(id.0);
                slot
            }
        };
        self.map.insert(id.0, slot);
        slot
    }

    /// Releases `id`, returning its now-recyclable slot (or `None` if it was not interned).
    pub fn release(&mut self, id: TxnId) -> Option<u32> {
        let slot = self.map.remove(&id.0)?;
        self.free.push(slot);
        Some(slot)
    }

    /// The transaction id stored at a **live** slot.
    #[inline]
    pub fn id_at(&self, slot: u32) -> TxnId {
        TxnId(self.ids[slot as usize])
    }

    /// Iterates every live interned id, in arbitrary order (order-insensitive consumers only,
    /// e.g. whole-graph test oracles).
    pub fn live_ids(&self) -> impl Iterator<Item = TxnId> + '_ {
        // lint-determinism: allow (documented arbitrary order; consumers must not sequence on it)
        self.map.keys().map(|&id| TxnId(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern(TxnId(100));
        let b = i.intern(TxnId(200));
        assert_eq!(i.intern(TxnId(100)), a);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.capacity(), 2);
        assert_eq!(i.get(TxnId(200)), Some(b));
        assert_eq!(i.id_at(a), TxnId(100));
    }

    #[test]
    fn release_recycles_slots_before_growing() {
        let mut i = Interner::new();
        let a = i.intern(TxnId(1));
        i.intern(TxnId(2));
        assert_eq!(i.release(TxnId(1)), Some(a));
        assert_eq!(i.get(TxnId(1)), None);
        assert_eq!(i.len(), 1);
        // The freed slot is handed out again; capacity does not grow.
        let c = i.intern(TxnId(3));
        assert_eq!(c, a);
        assert_eq!(i.capacity(), 2);
        assert_eq!(i.id_at(c), TxnId(3));
        // Releasing an unknown id is a no-op.
        assert_eq!(i.release(TxnId(77)), None);
    }

    #[test]
    fn heavy_churn_keeps_capacity_at_peak_live() {
        let mut i = Interner::new();
        for round in 0..50u64 {
            for k in 0..10 {
                i.intern(TxnId(round * 10 + k));
            }
            for k in 0..10 {
                i.release(TxnId(round * 10 + k));
            }
        }
        assert!(i.is_empty());
        assert_eq!(i.capacity(), 10, "free-list reuse must cap the slot space");
    }
}
