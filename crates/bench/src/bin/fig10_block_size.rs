//! Figure 10 — throughput and end-to-end latency of the five systems as the block size sweeps
//! 50 … 500 transactions (modified Smallbank, Table 2 defaults).
//!
//! ```text
//! cargo run --release -p eov-bench --bin fig10_block_size
//! ```

use eov_baselines::api::SystemKind;
use eov_bench::{
    banner, print_commit_table, print_formation_table, print_occupancy_table,
    print_throughput_table, run_all_systems,
};
use eov_common::config::ExperimentGrid;
use eov_sim::SimulationConfig;
use eov_workload::generator::WorkloadKind;

fn main() {
    banner(
        "Figure 10",
        "throughput (left) and latency (right) under varying block size, modified Smallbank",
    );
    let grid = ExperimentGrid::default();
    let mut rows = Vec::new();
    for &block_size in &grid.block_sizes {
        let mut base = SimulationConfig::new(SystemKind::Fabric, WorkloadKind::ModifiedSmallbank);
        base.block.max_txns_per_block = block_size;
        rows.push((block_size, run_all_systems(base)));
    }

    print_throughput_table(
        "# txns per block",
        &rows,
        |r| r.effective_tps(),
        "effective tps",
    );
    print_throughput_table(
        "# txns per block",
        &rows,
        |r| r.avg_latency_ms,
        "latency, ms",
    );
    print_formation_table("# txns per block", &rows);
    print_commit_table("# txns per block", &rows);
    print_occupancy_table("# txns per block", &rows);

    println!(
        "Paper's shape: Fabric# peaks at 100-txn blocks (542 tps) and stays highest everywhere;\n\
         Fabric/Fabric++/Focc-s peak at 200 (411/437/327 tps) and Focc-l at 400 (415 tps);\n\
         latency grows with block size and is worst for the systems that ship doomed transactions\n\
         into the validation phase."
    );
}
