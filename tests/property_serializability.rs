//! Property-based end-to-end tests: for randomly generated contended workloads, every history
//! committed by FabricSharp (which skips peer validation entirely) is serializable according to
//! the independent multi-version serialization-graph oracle, and the validating systems never
//! commit a non-serializable history either.

use fabricsharp::prelude::*;
use proptest::prelude::*;

/// A compact description of one generated transaction: which of 6 keys it reads and writes.
#[derive(Clone, Debug)]
struct TxnShape {
    reads: Vec<u8>,
    writes: Vec<u8>,
}

fn txn_shape_strategy() -> impl Strategy<Value = TxnShape> {
    (
        proptest::collection::vec(0u8..6, 0..3),
        proptest::collection::vec(0u8..6, 1..3),
    )
        .prop_map(|(reads, writes)| TxnShape { reads, writes })
}

/// Runs the generated workload through a `SimpleChain` of the given system, sealing a block
/// every `block_size` submissions, and returns the chain.
fn run_workload(kind: SystemKind, shapes: &[TxnShape], block_size: usize) -> SimpleChain {
    let mut chain = SimpleChain::new(kind);
    let keys: Vec<Key> = (0..6).map(|i| Key::new(format!("k{i}"))).collect();
    chain.seed(keys.iter().map(|k| (k.clone(), Value::from_i64(100))));

    for (i, shape) in shapes.iter().enumerate() {
        let reads: Vec<Key> = shape
            .reads
            .iter()
            .map(|r| keys[*r as usize].clone())
            .collect();
        let writes: Vec<Key> = shape
            .writes
            .iter()
            .map(|w| keys[*w as usize].clone())
            .collect();
        let txn = chain.execute(|ctx| {
            let mut acc = 0i64;
            for key in &reads {
                acc += ctx.read_balance(key);
            }
            for key in &writes {
                ctx.write(key.clone(), Value::from_i64(acc + 1));
            }
        });
        let _ = chain.submit(txn);
        if (i + 1) % block_size == 0 {
            chain.seal_block();
        }
    }
    chain.seal_block();
    chain
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// FabricSharp never commits a non-serializable history, even though its peers skip the
    /// MVCC validation entirely.
    #[test]
    fn fabricsharp_histories_are_always_serializable(
        shapes in proptest::collection::vec(txn_shape_strategy(), 1..60),
        block_size in 2usize..12,
    ) {
        let chain = run_workload(SystemKind::FabricSharp, &shapes, block_size);
        prop_assert!(is_serializable(chain.committed_history()));
        prop_assert!(chain.ledger().verify_integrity().is_ok());
        // FabricSharp places only guaranteed-serializable transactions in blocks, so raw and
        // effective counts coincide.
        prop_assert_eq!(chain.ledger().raw_txn_count(), chain.ledger().committed_txn_count());
    }

    /// The validating baselines also always produce serializable (indeed strongly serializable)
    /// histories — their MVCC check is the safety net.
    #[test]
    fn validating_baselines_are_strongly_serializable(
        shapes in proptest::collection::vec(txn_shape_strategy(), 1..40),
        block_size in 2usize..10,
    ) {
        for kind in [SystemKind::Fabric, SystemKind::FabricPlusPlus, SystemKind::FoccS, SystemKind::FoccL] {
            let chain = run_workload(kind, &shapes, block_size);
            prop_assert!(is_strongly_serializable(chain.committed_history()),
                "{} committed a non-strongly-serializable history", kind);
        }
    }

    /// FabricSharp commits at least as many transactions as vanilla Fabric on the same input —
    /// the paper's core claim, at the level of a single-node pipeline.
    #[test]
    fn fabricsharp_never_commits_fewer_than_fabric(
        shapes in proptest::collection::vec(txn_shape_strategy(), 1..60),
        block_size in 2usize..12,
    ) {
        let fabric = run_workload(SystemKind::Fabric, &shapes, block_size);
        let sharp = run_workload(SystemKind::FabricSharp, &shapes, block_size);
        prop_assert!(
            sharp.ledger().committed_txn_count() >= fabric.ledger().committed_txn_count(),
            "Fabric# committed {} but Fabric committed {}",
            sharp.ledger().committed_txn_count(),
            fabric.ledger().committed_txn_count()
        );
    }
}
