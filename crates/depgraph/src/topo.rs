//! Topological ordering of the pending transaction set (Algorithm 3, line 1).
//!
//! On block formation, FabricSharp retrieves a commit order for the pending transactions that
//! respects every dependency recorded in the graph. Two pending transactions may be ordered
//! through committed intermediaries (`a → committed → b`), so the ordering is computed from
//! *reachability* over successor edges, not just direct edges within the pending set.
//!
//! Determinism matters: every honest orderer must produce the same order from the same input
//! (the agreement property of Section 3.5). Ties are therefore broken by arrival order, which
//! is itself replicated because it is derived from the consensus stream.
//!
//! The closure is computed in O(V + E) set-union work instead of one DFS per pending
//! transaction: a single postorder sweep over the sub-graph reachable from the pending set
//! unions dense pending-bitsets bottom-up (each node's "reachable pending set" is the OR of
//! its successors' sets plus the pending successors themselves), and Kahn's algorithm then
//! runs on a `BinaryHeap` keyed by arrival index instead of a shift-on-pop sorted vector.
//! The result is bit-for-bit the order the per-pair DFS produced (same closure edges, same
//! tie-break), which the `equivalence` proptest suite pins against the retained naive
//! reference implementation.

use crate::graph::DependencyGraph;
use eov_common::txn::TxnId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "slot is not a pending transaction" in the dense arrival-index table.
const NOT_PENDING: u32 = u32::MAX;

impl DependencyGraph {
    /// Returns the pending transactions in a topological order consistent with reachability in
    /// the full graph, breaking ties by arrival order. The pending sub-graph is acyclic by
    /// construction (Algorithm 2 rejects cycle-closing transactions), so an order always
    /// exists; if the exact structure were ever cyclic (which would indicate a bug), the
    /// remaining transactions are appended in arrival order so the orderer still makes
    /// progress deterministically.
    pub fn topo_sort_pending(&self) -> Vec<TxnId> {
        let pending = self.pending_ids();
        let p = pending.len();
        if p <= 1 {
            return pending;
        }
        let capacity = self.capacity();

        // Dense side tables over the slot space: arrival index per pending slot.
        let mut arrival: Vec<u32> = vec![NOT_PENDING; capacity];
        let mut pending_slots: Vec<u32> = Vec::with_capacity(p);
        for (i, id) in pending.iter().enumerate() {
            let slot = self.slot_of(*id).expect("pending ids are tracked");
            arrival[slot as usize] = i as u32;
            pending_slots.push(slot);
        }

        // Postorder DFS over everything reachable from the pending set (committed
        // intermediaries included). On a DAG, every node's successors finish before it does.
        let mut postorder: Vec<u32> = Vec::with_capacity(p);
        {
            let mut scratch = self.scratch().borrow_mut();
            scratch.visited.reset(capacity);
            let mut dfs: Vec<(u32, u32)> = Vec::new();
            for &root in &pending_slots {
                if !scratch.visited.insert(root) {
                    continue;
                }
                dfs.push((root, 0));
                while let Some((slot, child_idx)) = dfs.last_mut() {
                    let node = self.node_at(*slot).expect("visited slots are live");
                    if let Some(&child) = node.succ.get(*child_idx as usize) {
                        *child_idx += 1;
                        if scratch.visited.insert(child) {
                            dfs.push((child, 0));
                        }
                    } else {
                        postorder.push(*slot);
                        dfs.pop();
                    }
                }
            }
        }

        // Bottom-up closure: row i (a bitset over arrival indices) holds the pending
        // transactions reachable from postorder[i]. Successors precede their parents in a
        // DAG's postorder, so each row is the OR of already-final successor rows plus the
        // pending successors' own bits — every edge is visited exactly once.
        let words = p.div_ceil(64);
        let mut row_of: Vec<u32> = vec![NOT_PENDING; capacity];
        for (i, &slot) in postorder.iter().enumerate() {
            row_of[slot as usize] = i as u32;
        }
        let mut reach: Vec<u64> = vec![0u64; postorder.len() * words];
        for (i, &slot) in postorder.iter().enumerate() {
            let node = self.node_at(slot).expect("visited slots are live");
            let (done, rest) = reach.split_at_mut(i * words);
            let row = &mut rest[..words];
            for &s in &node.succ {
                let s_row = row_of[s as usize] as usize;
                // `s_row < i` always holds on a DAG; the guard only matters for the
                // defensive-cyclic case, where the fallback below still emits everything.
                if s_row < i {
                    for (w, src) in row.iter_mut().zip(&done[s_row * words..]) {
                        *w |= src;
                    }
                }
                let a = arrival[s as usize];
                if a != NOT_PENDING {
                    row[(a / 64) as usize] |= 1u64 << (a % 64);
                }
            }
        }

        // Closure in-degrees: pending `b` has one incoming closure edge per pending `a` that
        // reaches it.
        let mut indegree: Vec<u32> = vec![0; p];
        for &slot in &pending_slots {
            let row = &reach[row_of[slot as usize] as usize * words..][..words];
            for (wi, &word) in row.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = wi * 64 + bits.trailing_zeros() as usize;
                    indegree[b] += 1;
                    bits &= bits - 1;
                }
            }
        }

        // Kahn's algorithm with arrival-order tie-breaking: among ready transactions always
        // emit the earliest-arrived one (min-heap on arrival index).
        let mut heap: BinaryHeap<Reverse<u32>> = indegree
            .iter()
            .enumerate()
            .filter(|(_, d)| **d == 0)
            .map(|(i, _)| Reverse(i as u32))
            .collect();
        let mut order: Vec<TxnId> = Vec::with_capacity(p);
        let mut emitted = vec![false; p];
        while let Some(Reverse(next)) = heap.pop() {
            emitted[next as usize] = true;
            order.push(pending[next as usize]);
            let slot = pending_slots[next as usize];
            let row = &reach[row_of[slot as usize] as usize * words..][..words];
            for (wi, &word) in row.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = wi * 64 + bits.trailing_zeros() as usize;
                    let d = &mut indegree[b];
                    *d -= 1;
                    if *d == 0 {
                        heap.push(Reverse(b as u32));
                    }
                    bits &= bits - 1;
                }
            }
        }

        // Defensive fallback: if anything was left (exact cycle — should be impossible), append
        // it in arrival order so every pending transaction still receives a slot.
        if order.len() < p {
            for (i, &t) in pending.iter().enumerate() {
                if !emitted[i] {
                    order.push(t);
                }
            }
        }
        order
    }

    /// Every transaction reachable from `roots` (roots excluded unless re-reachable), returned
    /// in a topological order over successor edges. Used by Algorithm 5 to propagate restored
    /// ww reachability downstream exactly once per node.
    pub fn reachable_in_topo_order(&self, roots: &[TxnId]) -> Vec<TxnId> {
        // Iterative DFS with post-order collection; reversing the post-order of a DAG yields a
        // topological order. The reachable sub-graph is acyclic because the whole graph is.
        // The visited set is the reusable epoch scratch — no per-call allocation beyond the
        // result itself.
        let mut scratch = self.scratch().borrow_mut();
        scratch.visited.reset(self.capacity());
        let mut postorder: Vec<TxnId> = Vec::new();
        let mut dfs: Vec<(u32, u32)> = Vec::new();

        for &root in roots {
            let Some(root_slot) = self.slot_of(root) else {
                continue;
            };
            if !scratch.visited.insert(root_slot) {
                continue;
            }
            // Stack of (slot, next-child-index).
            dfs.push((root_slot, 0));
            while let Some((slot, child_idx)) = dfs.last_mut() {
                let node = self.node_at(*slot).expect("visited slots are live");
                if let Some(&child) = node.succ.get(*child_idx as usize) {
                    *child_idx += 1;
                    if scratch.visited.insert(child) {
                        dfs.push((child, 0));
                    }
                } else {
                    postorder.push(self.id_at(*slot));
                    dfs.pop();
                }
            }
        }
        postorder.reverse();
        postorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PendingTxnSpec;
    use eov_common::config::CcConfig;
    use eov_common::version::SeqNo;

    fn spec(id: u64) -> PendingTxnSpec {
        PendingTxnSpec {
            id: TxnId(id),
            start_ts: SeqNo::snapshot_after(0),
            read_keys: vec![],
            write_keys: vec![],
        }
    }

    fn exact_graph() -> DependencyGraph {
        DependencyGraph::new(CcConfig {
            track_exact_reachability: true,
            ..CcConfig::default()
        })
    }

    #[test]
    fn topo_respects_direct_dependencies() {
        let mut g = exact_graph();
        // Arrival order 3, 2, 1 but dependencies 1 → 2 → 3.
        g.insert_pending(spec(3), &[], &[], 1);
        g.insert_pending(spec(2), &[], &[TxnId(3)], 1);
        g.insert_pending(spec(1), &[], &[TxnId(2)], 1);

        let order = g.topo_sort_pending();
        let pos = |id: u64| order.iter().position(|t| t.0 == id).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn topo_breaks_ties_by_arrival_order() {
        let mut g = exact_graph();
        for id in [7, 5, 9] {
            g.insert_pending(spec(id), &[], &[], 1);
        }
        // No dependencies at all: the order must be exactly the arrival order.
        assert_eq!(g.topo_sort_pending(), vec![TxnId(7), TxnId(5), TxnId(9)]);
    }

    #[test]
    fn topo_orders_through_committed_intermediaries() {
        let mut g = exact_graph();
        // committed node 100 sits between pending 1 and pending 2: 1 → 100 → 2.
        g.insert_pending(spec(100), &[], &[], 1);
        g.mark_committed(TxnId(100), SeqNo::new(1, 1));
        g.insert_pending(spec(2), &[TxnId(100)], &[], 2);
        g.insert_pending(spec(1), &[], &[TxnId(100)], 2);

        let order = g.topo_sort_pending();
        assert_eq!(order, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn empty_and_singleton_pending_sets() {
        let mut g = exact_graph();
        assert!(g.topo_sort_pending().is_empty());
        g.insert_pending(spec(1), &[], &[], 1);
        assert_eq!(g.topo_sort_pending(), vec![TxnId(1)]);
    }

    /// More pending transactions than one bitset word, with dependencies crossing the word
    /// boundary — exercises the multi-word OR path of the closure sweep.
    #[test]
    fn topo_handles_more_than_64_pending_transactions() {
        let mut g = exact_graph();
        // 100 transactions in a chain: 99 → 98 → ... → 0 by id, inserted in reverse order so
        // arrival order disagrees with dependency order everywhere.
        for id in (0..100u64).rev() {
            let succs: Vec<TxnId> = if id == 99 {
                vec![]
            } else {
                vec![TxnId(id + 1)]
            };
            g.insert_pending(spec(id), &[], &succs, 1);
        }
        let order = g.topo_sort_pending();
        let expected: Vec<TxnId> = (0..100u64).map(TxnId).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn reachable_in_topo_order_visits_each_node_once_in_dependency_order() {
        let mut g = exact_graph();
        // Diamond: 1 → {2, 3} → 4.
        g.insert_pending(spec(1), &[], &[], 1);
        g.insert_pending(spec(2), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(3), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(4), &[TxnId(2), TxnId(3)], &[], 1);

        let order = g.reachable_in_topo_order(&[TxnId(1)]);
        assert_eq!(order.len(), 4);
        let pos = |id: u64| order.iter().position(|t| t.0 == id).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(4));
        assert!(pos(3) < pos(4));

        // Starting from the middle only visits the downstream part.
        let partial = g.reachable_in_topo_order(&[TxnId(2)]);
        assert_eq!(partial.len(), 2);
        assert_eq!(partial[0], TxnId(2));
        assert_eq!(partial[1], TxnId(4));
    }

    #[test]
    fn reachable_in_topo_order_ignores_unknown_roots() {
        let g = exact_graph();
        assert!(g.reachable_in_topo_order(&[TxnId(42)]).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::PendingTxnSpec;
    use eov_common::config::CcConfig;
    use eov_common::version::SeqNo;
    use proptest::prelude::*;

    proptest! {
        /// The topological order always respects exact reachability between pending
        /// transactions, for random DAGs built by only adding edges from older to newer ids.
        #[test]
        fn topo_order_respects_every_dependency(
            edges in proptest::collection::vec((0u64..12, 0u64..12), 0..40)
        ) {
            let mut g = DependencyGraph::new(CcConfig {
                track_exact_reachability: true,
                ..CcConfig::default()
            });
            // Insert 12 pending transactions; edge (a, b) with a < b becomes a dependency
            // a → b expressed as "b's predecessors include a" at insert time.
            let mut preds: std::collections::HashMap<u64, Vec<TxnId>> = Default::default();
            for (a, b) in edges {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if lo != hi {
                    preds.entry(hi).or_default().push(TxnId(lo));
                }
            }
            for id in 0u64..12 {
                let p = preds.remove(&id).unwrap_or_default();
                g.insert_pending(
                    PendingTxnSpec {
                        id: TxnId(id),
                        start_ts: SeqNo::snapshot_after(0),
                        read_keys: vec![],
                        write_keys: vec![],
                    },
                    &p,
                    &[],
                    1,
                );
            }

            let order = g.topo_sort_pending();
            prop_assert_eq!(order.len(), 12);
            let pos: std::collections::HashMap<TxnId, usize> =
                order.iter().enumerate().map(|(i, t)| (*t, i)).collect();
            for a in 0u64..12 {
                for b in 0u64..12 {
                    if a != b && g.reaches_exact(TxnId(a), TxnId(b)) {
                        prop_assert!(pos[&TxnId(a)] < pos[&TxnId(b)],
                            "order violates {} -> {}", a, b);
                    }
                }
            }
        }
    }
}
