//! Epoch-tagged visited sets for allocation-free graph traversals.
//!
//! Every reachability query used to allocate a fresh `HashSet<u64>` per call — the dominant
//! arrival-path cost after PR 2 removed the per-insert `ReachSet` clone. [`EpochVisited`]
//! replaces that with one reusable array of epoch marks over the interned slot space
//! ([`crate::interner::Interner`]): "clearing" the set is a single epoch-counter bump, and
//! membership is one array read, so a DFS costs exactly its touched edges with no hashing and
//! no per-query allocation once the array has grown to the slab's capacity.

/// A visited set over dense `u32` slots, cleared in O(1) by bumping an epoch counter.
#[derive(Clone, Debug, Default)]
pub struct EpochVisited {
    marks: Vec<u32>,
    epoch: u32,
}

impl EpochVisited {
    /// Creates an empty set. [`EpochVisited::reset`] must be called (with the current slot
    /// capacity) before each traversal.
    pub fn new() -> Self {
        EpochVisited::default()
    }

    /// Starts a new traversal over `capacity` slots: grows the mark array if the slot space
    /// grew and invalidates every previous mark by bumping the epoch. On the (practically
    /// unreachable) epoch wrap-around the marks are hard-cleared so stale marks from 4 billion
    /// traversals ago cannot alias the new epoch.
    pub fn reset(&mut self, capacity: usize) {
        if self.marks.len() < capacity {
            self.marks.resize(capacity, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.marks.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `slot` visited; returns `true` if it was not already visited in this traversal.
    #[inline]
    pub fn insert(&mut self, slot: u32) -> bool {
        let mark = &mut self.marks[slot as usize];
        if *mark == self.epoch {
            false
        } else {
            *mark = self.epoch;
            true
        }
    }

    /// Whether `slot` was visited in the current traversal.
    #[inline]
    pub fn contains(&self, slot: u32) -> bool {
        self.marks[slot as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_within_one_epoch() {
        let mut v = EpochVisited::new();
        v.reset(4);
        assert!(v.insert(2));
        assert!(!v.insert(2), "second insert reports already-visited");
        assert!(v.contains(2));
        assert!(!v.contains(0));
    }

    #[test]
    fn reset_clears_in_constant_time() {
        let mut v = EpochVisited::new();
        v.reset(8);
        for slot in 0..8 {
            assert!(v.insert(slot));
        }
        v.reset(8);
        for slot in 0..8 {
            assert!(
                !v.contains(slot),
                "marks from the previous epoch must be gone"
            );
            assert!(v.insert(slot));
        }
    }

    #[test]
    fn reset_grows_with_the_slot_space() {
        let mut v = EpochVisited::new();
        v.reset(2);
        v.insert(1);
        v.reset(10);
        assert!(!v.contains(1));
        assert!(v.insert(9));
    }

    #[test]
    fn epoch_wraparound_hard_clears() {
        let mut v = EpochVisited {
            marks: vec![u32::MAX - 1, u32::MAX],
            epoch: u32::MAX,
        };
        // Slot 1 is visited in the current (u32::MAX) epoch.
        assert!(v.contains(1));
        v.reset(2);
        // The epoch wrapped: nothing may appear visited, including marks that happen to equal
        // small epoch values from the distant past.
        assert!(!v.contains(0));
        assert!(!v.contains(1));
        assert!(v.insert(0));
    }
}
