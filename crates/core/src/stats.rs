//! Concurrency-control statistics.
//!
//! The paper's evaluation reports several internal metrics besides throughput: the breakdown
//! of per-transaction arrival processing (Figure 12 right — identify conflict / update graph /
//! index record), the breakdown of the block-formation reordering latency (Figure 11 right —
//! compute order / restore ww / persist to storage / prune G), the number of reachability hops
//! traversed per arrival and the transaction block span (Figure 13 right), and the abort-rate
//! breakdown by cause (Figure 14 right). [`CcStats`] accumulates all of them.

use eov_common::abort::AbortReason;
use std::collections::HashMap;
use std::time::Duration;

/// Cumulative statistics of a concurrency-control instance.
#[derive(Clone, Debug, Default)]
pub struct CcStats {
    /// Transactions presented to the arrival path.
    pub arrivals: u64,
    /// Transactions accepted into the pending set.
    pub accepted: u64,
    /// Of the accepted transactions, how many were admitted through the template fast path
    /// (`CcConfig::template_fastpath` + a [`TemplateClass::Safe`] tag) and therefore skipped
    /// dependency resolution, the cycle probe and the graph entirely. The simulator exports
    /// this so benches can check it against the static conflict analyzer's predicted safe
    /// count — the two must agree exactly.
    ///
    /// [`TemplateClass::Safe`]: eov_common::txn::TemplateClass::Safe
    pub fastpath_accepted: u64,
    /// Early aborts by reason (before the transaction was sequenced into a block).
    pub early_aborts: HashMap<AbortReason, u64>,
    /// Of the early aborts, how many were bloom-filter false positives (only known when exact
    /// reachability tracking is enabled).
    pub bloom_false_positive_aborts: u64,
    /// Blocks formed.
    pub blocks_formed: u64,
    /// Transactions committed into blocks.
    pub committed: u64,
    /// Total reachability-update hops across all arrivals (Figure 13, "# of hops").
    pub total_hops: u64,
    /// Largest single-arrival hop count observed.
    pub max_hops: u64,
    /// Sum of block spans of committed transactions (Figure 13, "Txn blk span").
    pub block_span_sum: u64,
    /// Peak number of nodes in the dependency graph.
    pub graph_size_peak: usize,

    /// Arrival-path latency: dependency resolution + cycle test (Figure 12 "Identify conflict").
    pub arrival_identify_conflict: Duration,
    /// Arrival-path latency: reachability maintenance (Figure 12 "Update graph").
    pub arrival_update_graph: Duration,
    /// Arrival-path latency: PW/PR/pending bookkeeping (Figure 12 "Index record").
    pub arrival_index_record: Duration,

    /// Block-formation latency: topological sort (Figure 11 "Compute order").
    pub reorder_compute_order: Duration,
    /// Block-formation latency: ww restoration (Figure 11 "Restore ww").
    pub reorder_restore_ww: Duration,
    /// Block-formation latency: committed-index updates (Figure 11 "Persist to storage").
    pub reorder_persist: Duration,
    /// Block-formation latency: graph/index pruning (Figure 11 "Prune G").
    pub reorder_prune: Duration,

    /// Pipelined formation only: arrivals (or commit notifications) that could not be proved
    /// independent of the in-flight formation snapshot and had to wait for the cut to land.
    pub forced_formation_joins: u64,
    /// Pipelined formation only: cumulative wall-clock time the driver spent stalled waiting
    /// for the formation worker inside [`CcStats::forced_formation_joins`] joins.
    pub formation_join_wait: Duration,
}

impl CcStats {
    /// Records an early abort.
    pub fn record_abort(&mut self, reason: AbortReason) {
        *self.early_aborts.entry(reason).or_insert(0) += 1;
    }

    /// Total early aborts across all reasons.
    pub fn early_abort_total(&self) -> u64 {
        // lint-determinism: allow (commutative sum)
        self.early_aborts.values().sum()
    }

    /// Early aborts for one reason.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        self.early_aborts.get(&reason).copied().unwrap_or(0)
    }

    /// Mean reachability hops per arrival.
    pub fn avg_hops(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.arrivals as f64
        }
    }

    /// Mean block span per committed transaction.
    pub fn avg_block_span(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.block_span_sum as f64 / self.committed as f64
        }
    }

    /// Total arrival-path processing time.
    pub fn arrival_latency_total(&self) -> Duration {
        self.arrival_identify_conflict + self.arrival_update_graph + self.arrival_index_record
    }

    /// Total block-formation (reordering) time.
    pub fn reorder_latency_total(&self) -> Duration {
        self.reorder_compute_order
            + self.reorder_restore_ww
            + self.reorder_persist
            + self.reorder_prune
    }

    /// Mean arrival-path latency per transaction.
    pub fn arrival_latency_per_txn(&self) -> Duration {
        if self.arrivals == 0 {
            Duration::ZERO
        } else {
            self.arrival_latency_total() / self.arrivals as u32
        }
    }

    /// Mean reordering latency per block.
    pub fn reorder_latency_per_block(&self) -> Duration {
        if self.blocks_formed == 0 {
            Duration::ZERO
        } else {
            self.reorder_latency_total() / self.blocks_formed as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_accounting() {
        let mut stats = CcStats::default();
        stats.record_abort(AbortReason::UnreorderableCycle);
        stats.record_abort(AbortReason::UnreorderableCycle);
        stats.record_abort(AbortReason::SnapshotTooOld);
        assert_eq!(stats.early_abort_total(), 3);
        assert_eq!(stats.aborts_for(AbortReason::UnreorderableCycle), 2);
        assert_eq!(stats.aborts_for(AbortReason::StaleRead), 0);
    }

    #[test]
    fn averages_handle_zero_denominators() {
        let stats = CcStats::default();
        assert_eq!(stats.avg_hops(), 0.0);
        assert_eq!(stats.avg_block_span(), 0.0);
        assert_eq!(stats.arrival_latency_per_txn(), Duration::ZERO);
        assert_eq!(stats.reorder_latency_per_block(), Duration::ZERO);
    }

    #[test]
    fn averages_and_totals() {
        let stats = CcStats {
            arrivals: 4,
            total_hops: 12,
            committed: 2,
            block_span_sum: 6,
            blocks_formed: 2,
            arrival_identify_conflict: Duration::from_micros(100),
            arrival_update_graph: Duration::from_micros(200),
            arrival_index_record: Duration::from_micros(100),
            reorder_compute_order: Duration::from_micros(500),
            reorder_restore_ww: Duration::from_micros(300),
            ..CcStats::default()
        };
        assert_eq!(stats.avg_hops(), 3.0);
        assert_eq!(stats.avg_block_span(), 3.0);
        assert_eq!(stats.arrival_latency_total(), Duration::from_micros(400));
        assert_eq!(stats.arrival_latency_per_txn(), Duration::from_micros(100));
        assert_eq!(stats.reorder_latency_total(), Duration::from_micros(800));
        assert_eq!(
            stats.reorder_latency_per_block(),
            Duration::from_micros(400)
        );
    }
}
