//! Topological ordering of the pending transaction set (Algorithm 3, line 1).
//!
//! On block formation, FabricSharp retrieves a commit order for the pending transactions that
//! respects every dependency recorded in the graph. Two pending transactions may be ordered
//! through committed intermediaries (`a → committed → b`), so the ordering is computed from
//! *reachability* over successor edges, not just direct edges within the pending set.
//!
//! Determinism matters: every honest orderer must produce the same order from the same input
//! (the agreement property of Section 3.5). Ties are therefore broken by arrival order, which
//! is itself replicated because it is derived from the consensus stream.

use crate::graph::DependencyGraph;
use eov_common::txn::TxnId;
use std::collections::{HashMap, HashSet};

impl DependencyGraph {
    /// Returns the pending transactions in a topological order consistent with reachability in
    /// the full graph, breaking ties by arrival order. The pending sub-graph is acyclic by
    /// construction (Algorithm 2 rejects cycle-closing transactions), so an order always
    /// exists; if the exact structure were ever cyclic (which would indicate a bug), the
    /// remaining transactions are appended in arrival order so the orderer still makes
    /// progress deterministically.
    pub fn topo_sort_pending(&self) -> Vec<TxnId> {
        let pending = self.pending_ids();
        if pending.len() <= 1 {
            return pending;
        }
        let index_of: HashMap<TxnId, usize> =
            pending.iter().enumerate().map(|(i, t)| (*t, i)).collect();

        // Edge a → b between pending transactions iff a reaches b through the graph.
        // Reachability is computed exactly (DFS over successor edges); the bloom filters are
        // only used for the arrival-time cycle test where false positives merely over-abort.
        let mut edges: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        let mut indegree: HashMap<TxnId, usize> = pending.iter().map(|t| (*t, 0)).collect();
        for &a in &pending {
            let reachable = self.pending_reachable_from(a, &index_of);
            for b in reachable {
                edges.entry(a).or_default().push(b);
                *indegree.get_mut(&b).expect("pending node") += 1;
            }
        }

        // Kahn's algorithm with arrival-order tie-breaking: among ready nodes always pick the
        // earliest-arrived one.
        let mut ready: Vec<TxnId> = pending
            .iter()
            .filter(|t| indegree[t] == 0)
            .copied()
            .collect();
        ready.sort_by_key(|t| index_of[t]);

        let mut order = Vec::with_capacity(pending.len());
        let mut emitted: HashSet<TxnId> = HashSet::new();
        while let Some(&next) = ready.first() {
            ready.remove(0);
            order.push(next);
            emitted.insert(next);
            if let Some(succs) = edges.get(&next) {
                for &b in succs {
                    let d = indegree.get_mut(&b).expect("pending node");
                    *d -= 1;
                    if *d == 0 {
                        // Insert keeping `ready` sorted by arrival index.
                        let pos = ready
                            .binary_search_by_key(&index_of[&b], |t| index_of[t])
                            .unwrap_or_else(|p| p);
                        ready.insert(pos, b);
                    }
                }
            }
        }

        // Defensive fallback: if anything was left (exact cycle — should be impossible), append
        // it in arrival order so every pending transaction still receives a slot.
        if order.len() < pending.len() {
            for &t in &pending {
                if !emitted.contains(&t) {
                    order.push(t);
                }
            }
        }
        order
    }

    /// The set of *pending* transactions reachable from `from` (excluding `from` itself),
    /// walking successor edges through committed and pending nodes alike.
    fn pending_reachable_from(
        &self,
        from: TxnId,
        pending_index: &HashMap<TxnId, usize>,
    ) -> Vec<TxnId> {
        let mut result = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack = vec![from];
        visited.insert(from.0);
        while let Some(current) = stack.pop() {
            let Some(node) = self.node(current) else {
                continue;
            };
            for &s in &node.succ {
                if visited.insert(s.0) {
                    if s != from && pending_index.contains_key(&s) {
                        result.push(s);
                    }
                    stack.push(s);
                }
            }
        }
        result
    }

    /// Every transaction reachable from `roots` (roots excluded unless re-reachable), returned
    /// in a topological order over successor edges. Used by Algorithm 5 to propagate restored
    /// ww reachability downstream exactly once per node.
    pub fn reachable_in_topo_order(&self, roots: &[TxnId]) -> Vec<TxnId> {
        // Iterative DFS with post-order collection; reversing the post-order of a DAG yields a
        // topological order. The reachable sub-graph is acyclic because the whole graph is.
        let mut visited: HashSet<u64> = HashSet::new();
        let mut postorder: Vec<TxnId> = Vec::new();

        for &root in roots {
            if visited.contains(&root.0) || !self.contains(root) {
                continue;
            }
            // Stack of (node, next-child-index).
            let mut stack: Vec<(TxnId, usize)> = vec![(root, 0)];
            visited.insert(root.0);
            while let Some((current, child_idx)) = stack.last_mut() {
                let node = self.node(*current).expect("visited nodes exist");
                if let Some(&child) = node.succ.get(*child_idx) {
                    *child_idx += 1;
                    if !visited.contains(&child.0) && self.contains(child) {
                        visited.insert(child.0);
                        stack.push((child, 0));
                    }
                } else {
                    postorder.push(*current);
                    stack.pop();
                }
            }
        }
        postorder.reverse();
        postorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PendingTxnSpec;
    use eov_common::config::CcConfig;
    use eov_common::version::SeqNo;

    fn spec(id: u64) -> PendingTxnSpec {
        PendingTxnSpec {
            id: TxnId(id),
            start_ts: SeqNo::snapshot_after(0),
            read_keys: vec![],
            write_keys: vec![],
        }
    }

    fn exact_graph() -> DependencyGraph {
        DependencyGraph::new(CcConfig {
            track_exact_reachability: true,
            ..CcConfig::default()
        })
    }

    #[test]
    fn topo_respects_direct_dependencies() {
        let mut g = exact_graph();
        // Arrival order 3, 2, 1 but dependencies 1 → 2 → 3.
        g.insert_pending(spec(3), &[], &[], 1);
        g.insert_pending(spec(2), &[], &[TxnId(3)], 1);
        g.insert_pending(spec(1), &[], &[TxnId(2)], 1);

        let order = g.topo_sort_pending();
        let pos = |id: u64| order.iter().position(|t| t.0 == id).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(2) < pos(3));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn topo_breaks_ties_by_arrival_order() {
        let mut g = exact_graph();
        for id in [7, 5, 9] {
            g.insert_pending(spec(id), &[], &[], 1);
        }
        // No dependencies at all: the order must be exactly the arrival order.
        assert_eq!(g.topo_sort_pending(), vec![TxnId(7), TxnId(5), TxnId(9)]);
    }

    #[test]
    fn topo_orders_through_committed_intermediaries() {
        let mut g = exact_graph();
        // committed node 100 sits between pending 1 and pending 2: 1 → 100 → 2.
        g.insert_pending(spec(100), &[], &[], 1);
        g.mark_committed(TxnId(100), SeqNo::new(1, 1));
        g.insert_pending(spec(2), &[TxnId(100)], &[], 2);
        g.insert_pending(spec(1), &[], &[TxnId(100)], 2);

        let order = g.topo_sort_pending();
        assert_eq!(order, vec![TxnId(1), TxnId(2)]);
    }

    #[test]
    fn empty_and_singleton_pending_sets() {
        let mut g = exact_graph();
        assert!(g.topo_sort_pending().is_empty());
        g.insert_pending(spec(1), &[], &[], 1);
        assert_eq!(g.topo_sort_pending(), vec![TxnId(1)]);
    }

    #[test]
    fn reachable_in_topo_order_visits_each_node_once_in_dependency_order() {
        let mut g = exact_graph();
        // Diamond: 1 → {2, 3} → 4.
        g.insert_pending(spec(1), &[], &[], 1);
        g.insert_pending(spec(2), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(3), &[TxnId(1)], &[], 1);
        g.insert_pending(spec(4), &[TxnId(2), TxnId(3)], &[], 1);

        let order = g.reachable_in_topo_order(&[TxnId(1)]);
        assert_eq!(order.len(), 4);
        let pos = |id: u64| order.iter().position(|t| t.0 == id).unwrap();
        assert!(pos(1) < pos(2));
        assert!(pos(1) < pos(3));
        assert!(pos(2) < pos(4));
        assert!(pos(3) < pos(4));

        // Starting from the middle only visits the downstream part.
        let partial = g.reachable_in_topo_order(&[TxnId(2)]);
        assert_eq!(partial.len(), 2);
        assert_eq!(partial[0], TxnId(2));
        assert_eq!(partial[1], TxnId(4));
    }

    #[test]
    fn reachable_in_topo_order_ignores_unknown_roots() {
        let g = exact_graph();
        assert!(g.reachable_in_topo_order(&[TxnId(42)]).is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::graph::PendingTxnSpec;
    use eov_common::config::CcConfig;
    use eov_common::version::SeqNo;
    use proptest::prelude::*;

    proptest! {
        /// The topological order always respects exact reachability between pending
        /// transactions, for random DAGs built by only adding edges from older to newer ids.
        #[test]
        fn topo_order_respects_every_dependency(
            edges in proptest::collection::vec((0u64..12, 0u64..12), 0..40)
        ) {
            let mut g = DependencyGraph::new(CcConfig {
                track_exact_reachability: true,
                ..CcConfig::default()
            });
            // Insert 12 pending transactions; edge (a, b) with a < b becomes a dependency
            // a → b expressed as "b's predecessors include a" at insert time.
            let mut preds: std::collections::HashMap<u64, Vec<TxnId>> = Default::default();
            for (a, b) in edges {
                let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                if lo != hi {
                    preds.entry(hi).or_default().push(TxnId(lo));
                }
            }
            for id in 0u64..12 {
                let p = preds.remove(&id).unwrap_or_default();
                g.insert_pending(
                    PendingTxnSpec {
                        id: TxnId(id),
                        start_ts: SeqNo::snapshot_after(0),
                        read_keys: vec![],
                        write_keys: vec![],
                    },
                    &p,
                    &[],
                    1,
                );
            }

            let order = g.topo_sort_pending();
            prop_assert_eq!(order.len(), 12);
            let pos: std::collections::HashMap<TxnId, usize> =
                order.iter().enumerate().map(|(i, t)| (*t, i)).collect();
            for a in 0u64..12 {
                for b in 0u64..12 {
                    if a != b && g.reaches_exact(TxnId(a), TxnId(b)) {
                        prop_assert!(pos[&TxnId(a)] < pos[&TxnId(b)],
                            "order violates {} -> {}", a, b);
                    }
                }
            }
        }
    }
}
