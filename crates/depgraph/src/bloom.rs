//! Bloom filters for reachability tracking (Section 4.4).
//!
//! FabricSharp represents "all transactions that can reach `txn`" with a bloom filter
//! (`txn.anti_reachable`), because the dominant operation — unioning a predecessor's
//! reachability into a successor's (Algorithm 4) — becomes a bitwise OR over the underlying
//! bit vectors. False positives are possible and lead to preventive aborts; false negatives
//! are impossible, which is what the serializability guarantee relies on.
//!
//! The module provides:
//!
//! * [`BloomFilter`] — a fixed-size double-hashing bloom filter with O(words) union.
//! * [`RelayBloom`] — the paper's two-filter relay that bounds the false-positive rate over a
//!   long-running orderer: one filter covers transactions from block `M` onward, the standby
//!   covers transactions from a later block `N`, and when every transaction still tracked in
//!   the dependency graph postdates `N` the roles rotate and the stale filter is cleared.

/// A fixed-size bloom filter over `u64` items (transaction identifiers).
///
/// Two filters can be unioned only if they share the same geometry (bit count and hash count);
/// the dependency graph always builds them from one [`eov_common::CcConfig`], so this holds by
/// construction and is checked with a debug assertion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BloomFilter {
    words: Vec<u64>,
    num_bits: usize,
    num_hashes: usize,
    /// Number of direct `insert` calls (unions do not count); used to estimate saturation.
    insertions: usize,
}

impl BloomFilter {
    /// Creates an empty filter with `num_bits` bits (rounded up to a multiple of 64) and
    /// `num_hashes` probes per item.
    pub fn new(num_bits: usize, num_hashes: usize) -> Self {
        let num_bits = num_bits.max(64);
        let words = vec![0u64; num_bits.div_ceil(64)];
        BloomFilter {
            words,
            num_bits,
            num_hashes: num_hashes.clamp(1, 16),
            insertions: 0,
        }
    }

    /// Inserts an item.
    pub fn insert(&mut self, item: u64) {
        let (h1, h2) = Self::hash_pair(item);
        for i in 0..self.num_hashes {
            let bit = self.probe(h1, h2, i);
            self.words[bit / 64] |= 1u64 << (bit % 64);
        }
        self.insertions += 1;
    }

    /// Tests membership. May return a false positive, never a false negative.
    pub fn contains(&self, item: u64) -> bool {
        self.contains_prehashed(Self::hash_pair(item))
    }

    /// Membership test with the double-hashing pair already computed by
    /// [`BloomFilter::hash_pair`]. Identical to [`BloomFilter::contains`]; callers probing one
    /// item against many filters (the arrival-time cycle test) hash once and probe N times.
    #[inline]
    pub(crate) fn contains_prehashed(&self, (h1, h2): (u64, u64)) -> bool {
        (0..self.num_hashes).all(|i| {
            let bit = self.probe(h1, h2, i);
            self.words[bit / 64] & (1u64 << (bit % 64)) != 0
        })
    }

    /// Unions `other` into `self` (bitwise OR). Both filters must share the same geometry.
    ///
    /// # Panics
    ///
    /// Panics — in release builds too — when the geometries differ. A mismatched union would
    /// silently zip over the shorter word vector and drop set bits, i.e. manufacture bloom
    /// *false negatives*, which is the one failure mode the serializability guarantee cannot
    /// tolerate (false positives merely cause preventive aborts).
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(
            (self.num_bits, self.num_hashes),
            (other.num_bits, other.num_hashes),
            "bloom geometry mismatch: unioning filters of different geometry loses set bits"
        );
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.insertions = 0;
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Number of set bits (diagnostics / saturation metrics).
    pub fn popcount(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Fraction of bits set, in `[0, 1]`; a crude saturation estimate used to decide when the
    /// relay should rotate in stress tests.
    pub fn fill_ratio(&self) -> f64 {
        self.popcount() as f64 / self.num_bits as f64
    }

    /// Number of direct insert operations performed (unions excluded).
    pub fn insertions(&self) -> usize {
        self.insertions
    }

    /// Geometry: `(num_bits, num_hashes)`.
    pub fn geometry(&self) -> (usize, usize) {
        (self.num_bits, self.num_hashes)
    }

    #[inline]
    fn probe(&self, h1: u64, h2: u64, i: usize) -> usize {
        // Kirsch–Mitzenmacher double hashing: g_i(x) = h1 + i * h2.
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.num_bits as u64) as usize
    }

    #[inline]
    pub(crate) fn hash_pair(item: u64) -> (u64, u64) {
        (
            splitmix64(item ^ 0x9e37_79b9_7f4a_7c15),
            splitmix64(item.wrapping_add(0x2545_f491_4f6c_dd1d)) | 1,
        )
    }
}

/// The 64-bit finaliser of SplitMix64; a cheap, well-mixed hash for integer keys.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The two-filter relay of Section 4.4.
///
/// A long-lived orderer inserts every arriving transaction into the reachability filters, and
/// a single filter's false-positive rate would grow without bound. The relay keeps two
/// filters: the *active* one (covering every transaction inserted since block `starts[active]`)
/// answers queries; the *standby* one covers transactions since a later block. Once the
/// earliest block still referenced by the dependency graph (`earliest_live_block`) passes the
/// standby's start block, the standby covers everything that still matters, so the roles swap
/// and the stale filter is cleared. Honest orderers must rotate at the same blocks to stay
/// deterministic, which callers ensure by driving rotation from replicated state only.
#[derive(Clone, Debug)]
pub struct RelayBloom {
    filters: [BloomFilter; 2],
    starts: [u64; 2],
    active: usize,
}

impl RelayBloom {
    /// Creates a relay whose two filters both start covering at block 0.
    pub fn new(num_bits: usize, num_hashes: usize) -> Self {
        RelayBloom {
            filters: [
                BloomFilter::new(num_bits, num_hashes),
                BloomFilter::new(num_bits, num_hashes),
            ],
            starts: [0, 0],
            active: 0,
        }
    }

    /// Inserts an item into both filters.
    pub fn insert(&mut self, item: u64) {
        self.filters[0].insert(item);
        self.filters[1].insert(item);
    }

    /// Tests membership against the active filter.
    pub fn contains(&self, item: u64) -> bool {
        self.filters[self.active].contains(item)
    }

    /// Rotates if every transaction still tracked by the graph (earliest block
    /// `earliest_live_block`) postdates the standby filter's start block. The cleared filter
    /// restarts its coverage at `current_block`. Returns `true` if a rotation happened.
    pub fn maybe_rotate(&mut self, earliest_live_block: u64, current_block: u64) -> bool {
        let standby = 1 - self.active;
        if earliest_live_block > self.starts[standby] {
            self.filters[self.active].clear();
            self.starts[self.active] = current_block;
            self.active = standby;
            true
        } else {
            false
        }
    }

    /// Fill ratio of the filter currently answering queries.
    pub fn active_fill_ratio(&self) -> f64 {
        self.filters[self.active].fill_ratio()
    }

    /// Index (0 or 1) of the active filter; exposed for determinism tests across replicas.
    pub fn active_index(&self) -> usize {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains_never_false_negative() {
        let mut f = BloomFilter::new(1024, 3);
        for i in 0..200u64 {
            f.insert(i * 7 + 1);
        }
        for i in 0..200u64 {
            assert!(f.contains(i * 7 + 1), "false negative for {}", i * 7 + 1);
        }
        assert_eq!(f.insertions(), 200);
        assert!(!f.is_empty());
    }

    #[test]
    fn union_is_superset_of_both() {
        let mut a = BloomFilter::new(512, 3);
        let mut b = BloomFilter::new(512, 3);
        for i in 0..50u64 {
            a.insert(i);
            b.insert(1000 + i);
        }
        a.union_with(&b);
        for i in 0..50u64 {
            assert!(a.contains(i));
            assert!(a.contains(1000 + i));
        }
    }

    #[test]
    fn false_positive_rate_is_reasonable_when_sized_properly() {
        // 4096 bits / 3 hashes / 200 items → theoretical FPR well under 2%.
        let mut f = BloomFilter::new(4096, 3);
        for i in 0..200u64 {
            f.insert(i);
        }
        let false_positives = (10_000u64..20_000).filter(|i| f.contains(*i)).count();
        assert!(
            false_positives < 300,
            "false positive rate too high: {false_positives}/10000"
        );
    }

    /// Regression test: geometry mismatches must abort in *release* builds too. The previous
    /// `debug_assert` compiled away under `--release`, and a mismatched union silently zipped
    /// to the shorter word vector — dropping set bits and producing bloom false negatives.
    #[test]
    #[should_panic(expected = "bloom geometry mismatch")]
    fn union_with_mismatched_bit_count_panics() {
        let mut a = BloomFilter::new(512, 3);
        let b = BloomFilter::new(1024, 3);
        a.union_with(&b);
    }

    #[test]
    #[should_panic(expected = "bloom geometry mismatch")]
    fn union_with_mismatched_hash_count_panics() {
        let mut a = BloomFilter::new(512, 3);
        let b = BloomFilter::new(512, 4);
        a.union_with(&b);
    }

    #[test]
    fn clear_and_fill_ratio() {
        let mut f = BloomFilter::new(256, 2);
        assert!(f.is_empty());
        assert_eq!(f.fill_ratio(), 0.0);
        f.insert(42);
        assert!(f.fill_ratio() > 0.0);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.insertions(), 0);
    }

    #[test]
    fn geometry_is_rounded_and_clamped() {
        let f = BloomFilter::new(10, 99);
        let (bits, hashes) = f.geometry();
        assert_eq!(bits, 64);
        assert_eq!(hashes, 16);
    }

    #[test]
    fn relay_rotation_clears_the_stale_filter() {
        let mut relay = RelayBloom::new(512, 3);
        for i in 0..100u64 {
            relay.insert(i);
        }
        assert!(relay.contains(5));
        assert_eq!(relay.active_index(), 0);

        // The graph's earliest live block is now 10 > standby start (0): rotate.
        assert!(relay.maybe_rotate(10, 12));
        assert_eq!(relay.active_index(), 1);
        // Items inserted before rotation are still covered by the (new) active filter because
        // both filters receive every insert.
        assert!(relay.contains(5));

        // Insert more, then rotate again once the graph has moved past block 12.
        for i in 100..150u64 {
            relay.insert(i);
        }
        assert!(relay.maybe_rotate(13, 20));
        assert_eq!(relay.active_index(), 0);
        // The filter that was cleared at the first rotation only covers inserts made after it,
        // so old items may or may not appear — but recent ones must.
        assert!(relay.contains(120));
        // No rotation while the earliest live block has not passed the standby start.
        assert!(!relay.maybe_rotate(15, 25));
    }

    #[test]
    fn relay_keeps_false_positive_rate_bounded() {
        // Without rotation a 1024-bit filter absorbing 2000 items would be nearly saturated.
        // With periodic rotation the active filter only ever covers a bounded window.
        let mut relay = RelayBloom::new(1024, 3);
        let mut max_fill: f64 = 0.0;
        for batch in 0..20u64 {
            for i in 0..100u64 {
                relay.insert(batch * 100 + i);
            }
            // The graph only keeps the last two batches alive.
            relay.maybe_rotate(batch.saturating_sub(1), batch);
            max_fill = max_fill.max(relay.active_fill_ratio());
        }
        assert!(
            max_fill < 0.95,
            "active filter should not saturate under rotation, fill={max_fill}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// No false negatives, ever.
        #[test]
        fn no_false_negatives(items in proptest::collection::hash_set(any::<u64>(), 1..300)) {
            let mut f = BloomFilter::new(2048, 4);
            for &i in &items {
                f.insert(i);
            }
            for &i in &items {
                prop_assert!(f.contains(i));
            }
        }

        /// Union never loses members from either side.
        #[test]
        fn union_preserves_membership(
            left in proptest::collection::hash_set(any::<u64>(), 0..100),
            right in proptest::collection::hash_set(any::<u64>(), 0..100),
        ) {
            let mut a = BloomFilter::new(2048, 3);
            let mut b = BloomFilter::new(2048, 3);
            for &i in &left { a.insert(i); }
            for &i in &right { b.insert(i); }
            a.union_with(&b);
            for &i in left.iter().chain(right.iter()) {
                prop_assert!(a.contains(i));
            }
        }
    }
}
