//! The retained naive reference implementation of the dependency graph.
//!
//! This is (essentially) the pre-interning engine: nodes in a `HashMap<u64, _>`, adjacency as
//! `Vec<TxnId>`, a fresh `HashSet` visited set per reachability query, per-insert `ReachSet`
//! clones, and a per-pair DFS topological sort. It exists for two reasons:
//!
//! 1. **Equivalence oracle** — the `equivalence` proptest suite drives random
//!    build/commit/remove/prune/rebuild interleavings through this module and the production
//!    [`DependencyGraph`](crate::graph::DependencyGraph) side by side and asserts bit-for-bit
//!    identical `topo_sort_pending` output, `would_close_cycle` verdicts (bloom false
//!    positives included — both sides share the same filter geometry and insertion sets),
//!    `reaches_exact` answers and insert hop counts.
//! 2. **Speedup baseline** — the `reachability_engine` bench group and the `bench_gate`
//!    binary measure the dense engine against this module on identical graphs, which keeps
//!    the claimed complexity win honest on every machine the benches run on.
//!
//! It is deliberately *not* optimised; do not use it outside tests and benchmarks.

use crate::graph::{CycleCheck, PendingTxnSpec, ReachSet};
use eov_common::config::CcConfig;
use eov_common::txn::TxnId;
use eov_common::version::SeqNo;
use std::collections::{HashMap, HashSet};

/// A node of the naive graph.
#[derive(Clone, Debug)]
pub struct NaiveNode {
    /// The transaction this node represents.
    pub id: TxnId,
    /// Start timestamp.
    pub start_ts: SeqNo,
    /// End timestamp once committed.
    pub end_ts: Option<SeqNo>,
    /// Immediate successors in dependency order.
    pub succ: Vec<TxnId>,
    /// Immediate predecessors (mirror of `succ`).
    pub pred: Vec<TxnId>,
    /// Every transaction that can reach this node.
    pub anti_reachable: ReachSet,
    /// Pruning age (Section 4.6).
    pub age: u64,
}

impl NaiveNode {
    /// Whether the node is still pending.
    pub fn is_pending(&self) -> bool {
        self.end_ts.is_none()
    }
}

/// The naive-DFS dependency graph: same semantics as the production engine, seed-era data
/// structures.
#[derive(Clone, Debug)]
pub struct NaiveGraph {
    nodes: HashMap<u64, NaiveNode>,
    /// Pending transactions in arrival order (seed representation: `Vec::retain` removal).
    pending: Vec<TxnId>,
    config: CcConfig,
}

impl NaiveGraph {
    /// Creates an empty graph.
    pub fn new(config: CcConfig) -> Self {
        NaiveGraph {
            nodes: HashMap::new(),
            pending: Vec::new(),
            config,
        }
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `id` is tracked.
    pub fn contains(&self, id: TxnId) -> bool {
        self.nodes.contains_key(&id.0)
    }

    /// Immutable access to a node.
    pub fn node(&self, id: TxnId) -> Option<&NaiveNode> {
        self.nodes.get(&id.0)
    }

    /// The pending transactions in arrival order.
    pub fn pending_ids(&self) -> Vec<TxnId> {
        self.pending.clone()
    }

    /// Section 4.4's pair-wise cycle test, seed-style: one hash lookup and one full bloom
    /// probe per (pred, succ) pair.
    pub fn would_close_cycle(&self, preds: &[TxnId], succs: &[TxnId]) -> CycleCheck {
        for &p in preds {
            for &s in succs {
                if p == s {
                    return CycleCheck::Cycle {
                        confirmed_exact: Some(true),
                    };
                }
                let Some(p_node) = self.nodes.get(&p.0) else {
                    continue;
                };
                if !self.nodes.contains_key(&s.0) {
                    continue;
                }
                if p_node.anti_reachable.contains(s) {
                    let confirmed = p_node
                        .anti_reachable
                        .contains_exact(s)
                        .map(|exact| exact || self.reaches_exact(s, p));
                    return CycleCheck::Cycle {
                        confirmed_exact: confirmed,
                    };
                }
            }
        }
        CycleCheck::Acyclic
    }

    /// Algorithm 4, seed-style: clones the new node's reach set and walks downstream with a
    /// fresh `HashSet` visited set. Returns the hop count (which the equivalence harness pins
    /// against the engine's). Re-inserting a tracked id is a no-op, matching the production
    /// engine's contract.
    pub fn insert_pending(
        &mut self,
        spec: PendingTxnSpec,
        preds: &[TxnId],
        succs: &[TxnId],
        next_block: u64,
    ) -> usize {
        let id = spec.id;
        if self.nodes.contains_key(&id.0) {
            return 0;
        }
        let mut node = NaiveNode {
            id,
            start_ts: spec.start_ts,
            end_ts: None,
            succ: Vec::new(),
            pred: Vec::new(),
            anti_reachable: ReachSet::new(&self.config),
            age: next_block,
        };

        for &p in preds {
            if p == id {
                continue;
            }
            let Some(p_node) = self.nodes.get_mut(&p.0) else {
                continue;
            };
            if !p_node.succ.contains(&id) {
                p_node.succ.push(id);
                node.pred.push(p);
            }
            node.anti_reachable.insert(p);
            let p_reach = &self.nodes[&p.0].anti_reachable;
            node.anti_reachable.union_with(p_reach);
        }

        for &s in succs {
            if s == id || node.succ.contains(&s) {
                continue;
            }
            if let Some(s_node) = self.nodes.get_mut(&s.0) {
                node.succ.push(s);
                s_node.pred.push(id);
            }
        }

        let succ_roots = node.succ.clone();
        let delta = node.anti_reachable.clone();
        self.nodes.insert(id.0, node);
        if !self.pending.contains(&id) {
            self.pending.push(id);
        }

        let mut hops = 0usize;
        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(id.0);
        let mut stack: Vec<TxnId> = succ_roots;
        while let Some(current) = stack.pop() {
            if !visited.insert(current.0) {
                continue;
            }
            let Some(n) = self.nodes.get_mut(&current.0) else {
                continue;
            };
            hops += 1;
            n.anti_reachable.union_with(&delta);
            n.anti_reachable.insert(id);
            n.age = n.age.max(next_block);
            stack.extend(n.succ.iter().copied());
        }
        hops
    }

    /// Adds `from → to` and unions `from`'s reachability (plus `from`) into `to`.
    pub fn add_edge_with_union(&mut self, from: TxnId, to: TxnId) {
        if from == to || !self.nodes.contains_key(&from.0) || !self.nodes.contains_key(&to.0) {
            return;
        }
        let from_node = self.nodes.get_mut(&from.0).expect("checked above");
        if !from_node.succ.contains(&to) {
            from_node.succ.push(to);
            self.nodes
                .get_mut(&to.0)
                .expect("checked above")
                .pred
                .push(from);
        }
        self.union_through(from, to);
    }

    /// Unions `source`'s reachability (plus `source`) into `target` without adding an edge.
    pub fn propagate_reachability(&mut self, source: TxnId, target: TxnId) {
        if source == target
            || !self.nodes.contains_key(&source.0)
            || !self.nodes.contains_key(&target.0)
        {
            return;
        }
        self.union_through(source, target);
    }

    fn union_through(&mut self, source: TxnId, target: TxnId) {
        let delta = self.nodes[&source.0].anti_reachable.clone();
        let t = self.nodes.get_mut(&target.0).expect("caller checked");
        t.anti_reachable.union_with(&delta);
        t.anti_reachable.insert(source);
    }

    /// Whether `earlier` is recorded as reaching `later`.
    pub fn already_connected(&self, earlier: TxnId, later: TxnId) -> bool {
        self.nodes
            .get(&later.0)
            .map(|n| n.anti_reachable.contains(earlier))
            .unwrap_or(false)
    }

    /// Marks a pending transaction committed.
    pub fn mark_committed(&mut self, id: TxnId, end_ts: SeqNo) {
        if let Some(node) = self.nodes.get_mut(&id.0) {
            node.end_ts = Some(end_ts);
        }
        self.pending.retain(|t| *t != id);
    }

    /// Removes a transaction and cleans its neighbours' edge lists.
    pub fn remove(&mut self, id: TxnId) {
        self.pending.retain(|t| *t != id);
        let Some(node) = self.nodes.remove(&id.0) else {
            return;
        };
        for p in node.pred {
            if let Some(p_node) = self.nodes.get_mut(&p.0) {
                p_node.succ.retain(|s| *s != id);
            }
        }
        for s in node.succ {
            if let Some(s_node) = self.nodes.get_mut(&s.0) {
                s_node.pred.retain(|p| *p != id);
            }
        }
    }

    /// Removes every committed node with `age < threshold`; returns the victims (sorted by id
    /// for deterministic comparison — the engine's return order is slot order).
    pub fn prune_stale(&mut self, threshold: u64) -> Vec<TxnId> {
        let victims: Vec<TxnId> = self
            .nodes
            .values()
            .filter(|n| !n.is_pending() && n.age < threshold)
            .map(|n| n.id)
            .collect();
        for v in &victims {
            self.remove(*v);
        }
        let mut sorted = victims;
        sorted.sort();
        sorted
    }

    /// Exact reachability by per-query DFS with a fresh `HashSet`.
    pub fn reaches_exact(&self, from: TxnId, to: TxnId) -> bool {
        if from == to {
            return true;
        }
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack = vec![from];
        while let Some(current) = stack.pop() {
            if !visited.insert(current.0) {
                continue;
            }
            let Some(node) = self.nodes.get(&current.0) else {
                continue;
            };
            for &s in &node.succ {
                if s == to {
                    return true;
                }
                stack.push(s);
            }
        }
        false
    }

    /// The seed topological sort: one reachability DFS per pending transaction (O(pending²)
    /// pair work), then Kahn's algorithm over the closure edges with a shift-on-pop sorted
    /// ready queue.
    pub fn topo_sort_pending(&self) -> Vec<TxnId> {
        let pending = self.pending_ids();
        if pending.len() <= 1 {
            return pending;
        }
        let index_of: HashMap<TxnId, usize> =
            pending.iter().enumerate().map(|(i, t)| (*t, i)).collect();

        let mut edges: HashMap<TxnId, Vec<TxnId>> = HashMap::new();
        let mut indegree: HashMap<TxnId, usize> = pending.iter().map(|t| (*t, 0)).collect();
        for &a in &pending {
            let reachable = self.pending_reachable_from(a, &index_of);
            for b in reachable {
                edges.entry(a).or_default().push(b);
                *indegree.get_mut(&b).expect("pending node") += 1;
            }
        }

        let mut ready: Vec<TxnId> = pending
            .iter()
            .filter(|t| indegree[t] == 0)
            .copied()
            .collect();
        ready.sort_by_key(|t| index_of[t]);

        let mut order = Vec::with_capacity(pending.len());
        let mut emitted: HashSet<TxnId> = HashSet::new();
        while let Some(&next) = ready.first() {
            ready.remove(0);
            order.push(next);
            emitted.insert(next);
            if let Some(succs) = edges.get(&next) {
                for &b in succs {
                    let d = indegree.get_mut(&b).expect("pending node");
                    *d -= 1;
                    if *d == 0 {
                        let pos = ready
                            .binary_search_by_key(&index_of[&b], |t| index_of[t])
                            .unwrap_or_else(|p| p);
                        ready.insert(pos, b);
                    }
                }
            }
        }

        if order.len() < pending.len() {
            for &t in &pending {
                if !emitted.contains(&t) {
                    order.push(t);
                }
            }
        }
        order
    }

    fn pending_reachable_from(
        &self,
        from: TxnId,
        pending_index: &HashMap<TxnId, usize>,
    ) -> Vec<TxnId> {
        let mut result = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        let mut stack = vec![from];
        visited.insert(from.0);
        while let Some(current) = stack.pop() {
            let Some(node) = self.nodes.get(&current.0) else {
                continue;
            };
            for &s in &node.succ {
                if visited.insert(s.0) {
                    if s != from && pending_index.contains_key(&s) {
                        result.push(s);
                    }
                    stack.push(s);
                }
            }
        }
        result
    }

    /// Every transaction reachable from `roots` in topological order (reverse postorder).
    pub fn reachable_in_topo_order(&self, roots: &[TxnId]) -> Vec<TxnId> {
        let mut visited: HashSet<u64> = HashSet::new();
        let mut postorder: Vec<TxnId> = Vec::new();
        for &root in roots {
            if visited.contains(&root.0) || !self.contains(root) {
                continue;
            }
            let mut stack: Vec<(TxnId, usize)> = vec![(root, 0)];
            visited.insert(root.0);
            while let Some((current, child_idx)) = stack.last_mut() {
                let node = self.node(*current).expect("visited nodes exist");
                if let Some(&child) = node.succ.get(*child_idx) {
                    *child_idx += 1;
                    if !visited.contains(&child.0) && self.contains(child) {
                        visited.insert(child.0);
                        stack.push((child, 0));
                    }
                } else {
                    postorder.push(*current);
                    stack.pop();
                }
            }
        }
        postorder.reverse();
        postorder
    }

    /// Rebuilds every reach set from the current successor edges (the maintenance counterpart
    /// of the two-filter relay, naive edition).
    pub fn rebuild_reachability(&mut self) -> usize {
        // lint-determinism: allow (sorted immediately below)
        let mut ids: Vec<TxnId> = self.nodes.values().map(|n| n.id).collect();
        ids.sort_unstable();
        if ids.is_empty() {
            return 0;
        }
        let config = self.config;
        for &id in &ids {
            if let Some(node) = self.nodes.get_mut(&id.0) {
                node.anti_reachable = ReachSet::new(&config);
            }
        }
        let order = self.reachable_in_topo_order(&ids);
        for &from in &order {
            let succs: Vec<TxnId> = self.node(from).map(|n| n.succ.clone()).unwrap_or_default();
            for to in succs {
                self.propagate_reachability(from, to);
            }
        }
        order.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_exact() -> CcConfig {
        CcConfig {
            track_exact_reachability: true,
            ..CcConfig::default()
        }
    }

    fn spec(id: u64) -> PendingTxnSpec {
        PendingTxnSpec {
            id: TxnId(id),
            start_ts: SeqNo::snapshot_after(0),
            read_keys: vec![],
            write_keys: vec![],
        }
    }

    #[test]
    fn naive_graph_basic_semantics() {
        let mut g = NaiveGraph::new(cfg_exact());
        g.insert_pending(spec(1), &[], &[], 1);
        g.insert_pending(spec(2), &[TxnId(1)], &[], 1);
        assert_eq!(g.len(), 2);
        assert!(g.reaches_exact(TxnId(1), TxnId(2)));
        assert!(!g.reaches_exact(TxnId(2), TxnId(1)));
        assert!(!g.would_close_cycle(&[TxnId(2)], &[TxnId(1)]).is_acyclic());
        assert_eq!(g.topo_sort_pending(), vec![TxnId(1), TxnId(2)]);

        g.mark_committed(TxnId(1), SeqNo::new(1, 1));
        assert_eq!(g.pending_ids(), vec![TxnId(2)]);
        let mut pruned = g.prune_stale(10);
        pruned.sort();
        assert_eq!(pruned, vec![TxnId(1)]);
        assert!(!g.contains(TxnId(1)));
        assert!(g.node(TxnId(2)).unwrap().pred.is_empty());
        assert_eq!(g.rebuild_reachability(), 1);
    }
}
