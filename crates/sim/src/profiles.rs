//! Pipeline cost profiles: the calibration constants that stand in for the paper's testbed.
//!
//! The paper runs on a cluster of Xeon E5-1650 machines where vanilla Fabric saturates at
//! ≈677 raw tps (Figure 1) and FastFabric at ≈3114 raw tps (Section 5.4). The simulator
//! reproduces those ceilings with a small set of per-phase costs; the *relative* behaviour of
//! the five systems then follows entirely from their concurrency-control decisions, which are
//! the real implementations, not models.
//!
//! Two aspects are modelled rather than measured, and both are documented here:
//!
//! * **Validation cost** — validation is Fabric's bottleneck phase; each block pays a fixed
//!   overhead (crypto, state commit, gossip) plus a per-transaction cost (endorsement policy
//!   check + MVCC check + write).
//! * **Reordering cost** — the wall-clock cost of the orderer-side reordering, calibrated to
//!   the paper's measurements (Fabric++: 4.3 ms at 50-txn blocks, 401 ms at 500; Focc-l:
//!   0.12 ms and 5.19 ms; FabricSharp: small, shifted to the arrival path).

use eov_baselines::api::SystemKind;

/// Per-phase simulated costs of the EOV pipeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineProfile {
    /// Human-readable profile name ("Fabric testbed", "FastFabric testbed").
    pub name: &'static str,
    /// Fixed endorsement cost per transaction (contract execution, signing), in ms.
    pub endorse_base_ms: f64,
    /// Network + consensus latency between the client broadcast and the orderer seeing the
    /// transaction, in ms.
    pub ordering_latency_ms: f64,
    /// Fixed per-block validation/commit overhead (block crypto, state DB commit), in ms.
    pub per_block_overhead_ms: f64,
    /// Per-transaction validation cost (endorsement policy + MVCC check + write apply), in ms.
    pub per_txn_validate_ms: f64,
    /// Whether the execute phase holds Fabric's read-write lock against block commit. When
    /// `true` (vanilla Fabric only), validation of a block additionally waits for in-flight
    /// simulations to drain.
    pub endorsement_lock: bool,
}

impl PipelineProfile {
    /// The Fabric testbed of Sections 5.1–5.3: saturates at ≈677 raw tps with 100-txn blocks.
    pub fn fabric() -> Self {
        PipelineProfile {
            name: "Fabric testbed",
            endorse_base_ms: 3.0,
            ordering_latency_ms: 15.0,
            per_block_overhead_ms: 40.0,
            per_txn_validate_ms: 1.08,
            endorsement_lock: false,
        }
    }

    /// The same testbed but for the vanilla-Fabric execute-phase lock semantics. Only the
    /// vanilla system uses this; every other system removed the lock.
    pub fn fabric_with_lock() -> Self {
        PipelineProfile {
            endorsement_lock: true,
            ..Self::fabric()
        }
    }

    /// The FastFabric testbed of Section 5.4: endorsers, storage and validators are split, so
    /// the per-transaction validation cost drops by roughly the paper's 4.5× speedup.
    pub fn fast_fabric() -> Self {
        PipelineProfile {
            name: "FastFabric testbed",
            endorse_base_ms: 1.0,
            ordering_latency_ms: 8.0,
            per_block_overhead_ms: 12.0,
            per_txn_validate_ms: 0.20,
            endorsement_lock: false,
        }
    }

    /// The profile a given system runs on top of a base profile: vanilla Fabric keeps the
    /// execute-phase lock, every other system removes it (Fabric++/FabricSharp replace it with
    /// snapshot reads).
    pub fn for_system(base: PipelineProfile, system: SystemKind) -> PipelineProfile {
        PipelineProfile {
            endorsement_lock: base.endorsement_lock || system == SystemKind::Fabric,
            ..base
        }
    }

    /// Validation service time for a block of `txns` transactions, in ms.
    pub fn validation_ms(&self, txns: usize) -> f64 {
        self.per_block_overhead_ms + self.per_txn_validate_ms * txns as f64
    }

    /// Modelled orderer-side reordering cost for a batch of `batch` transactions, in ms,
    /// calibrated to the measurements reported in Section 5.3.
    pub fn reorder_ms(&self, system: SystemKind, batch: usize) -> f64 {
        let b = batch as f64;
        match system {
            // Fabric and Focc-s do nothing at block formation.
            SystemKind::Fabric | SystemKind::FoccS => 0.0,
            // Fabric++ enumerates cycles over the block's conflict graph: ~4.3 ms at 50 txns,
            // ~401 ms at 500 — roughly quadratic in the batch size.
            SystemKind::FabricPlusPlus => 4.3 * (b / 50.0) * (b / 50.0),
            // Focc-l's sort-based greedy pass: 0.12 ms at 50, 5.19 ms at 500.
            SystemKind::FoccL => 0.12 * (b / 50.0) * (b / 50.0) * 0.65 + 0.04 * (b / 50.0),
            // FabricSharp shifts the heavy lifting to the arrival path; block formation is a
            // topological sort plus ww restoration, linear with a small constant.
            SystemKind::FabricSharp => 0.5 + 0.02 * b,
        }
    }

    /// The raw-throughput ceiling implied by the validation bottleneck for a given block size,
    /// in transactions per second. Used by calibration tests and the experiment harness to
    /// sanity-check the profile.
    pub fn raw_ceiling_tps(&self, block_size: usize) -> f64 {
        1_000.0 * block_size as f64 / self.validation_ms(block_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabric_profile_saturates_near_the_papers_677_tps() {
        let p = PipelineProfile::fabric();
        let ceiling = p.raw_ceiling_tps(100);
        assert!(
            (600.0..750.0).contains(&ceiling),
            "Fabric raw ceiling at 100-txn blocks should be ≈677 tps, got {ceiling:.0}"
        );
    }

    #[test]
    fn fast_fabric_profile_is_roughly_4_5x_faster() {
        let fabric = PipelineProfile::fabric();
        let fast = PipelineProfile::fast_fabric();
        let speedup = fast.raw_ceiling_tps(100) / fabric.raw_ceiling_tps(100);
        assert!(
            (3.5..6.0).contains(&speedup),
            "FastFabric speedup should be ≈4.5x, got {speedup:.2}"
        );
    }

    #[test]
    fn small_blocks_lower_the_validation_ceiling() {
        let p = PipelineProfile::fabric();
        assert!(p.raw_ceiling_tps(50) < p.raw_ceiling_tps(200));
        assert!(p.raw_ceiling_tps(200) < p.raw_ceiling_tps(500));
    }

    #[test]
    fn reorder_costs_match_the_papers_measurements() {
        let p = PipelineProfile::fabric();
        let fpp_50 = p.reorder_ms(SystemKind::FabricPlusPlus, 50);
        let fpp_500 = p.reorder_ms(SystemKind::FabricPlusPlus, 500);
        assert!((3.0..6.0).contains(&fpp_50), "{fpp_50}");
        assert!((350.0..450.0).contains(&fpp_500), "{fpp_500}");

        let foccl_500 = p.reorder_ms(SystemKind::FoccL, 500);
        assert!(foccl_500 < 10.0, "{foccl_500}");
        assert!(p.reorder_ms(SystemKind::Fabric, 500) == 0.0);
        assert!(p.reorder_ms(SystemKind::FabricSharp, 500) < 15.0);
    }

    #[test]
    fn only_vanilla_fabric_keeps_the_lock() {
        let base = PipelineProfile::fabric();
        assert!(PipelineProfile::for_system(base, SystemKind::Fabric).endorsement_lock);
        assert!(!PipelineProfile::for_system(base, SystemKind::FabricSharp).endorsement_lock);
        assert!(!PipelineProfile::for_system(base, SystemKind::FabricPlusPlus).endorsement_lock);
        assert!(PipelineProfile::fabric_with_lock().endorsement_lock);
    }
}
