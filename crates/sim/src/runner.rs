//! The discrete-event simulation of the EOV pipeline.
//!
//! One [`Simulator::run`] call plays a single system (one of the five concurrency controls) on
//! one workload for a configured simulated duration and returns a [`SimReport`]. The pipeline
//! stages and their costs come from the [`PipelineProfile`]; the commit/abort decisions come
//! from the *actual* concurrency-control implementations — nothing about serializability is
//! modelled statistically.
//!
//! The event flow mirrors Figure 2 of the paper: clients submit at a fixed request rate →
//! endorsing peers simulate against a block snapshot (taking `endorse_base + read_interval ×
//! reads` simulated ms) → after the client delay and consensus latency the transaction reaches
//! the ordering service, which runs the system's arrival logic → the block-formation condition
//! (size or timeout) cuts a block, paying the system's reordering cost → the block enters the
//! single validator, which is the pipeline's bottleneck → validation applies the MVCC check
//! (except under FabricSharp) and commits the writes, advancing the chain that subsequent
//! endorsements read from.
//!
//! The *execution* of the two heavy stages is pluggable
//! ([`SimulationConfig::endorser_shards`]): with 0 shards everything runs inline on the driver
//! thread (the reference mode); with `N ≥ 1` shards endorsements fan out to `N`
//! [`fabricsharp_core::pipeline::EndorserPool`] workers and commits run on the dedicated
//! committer thread, overlapping real CPU work with the driver. Simulated time, the consensus
//! arrival order and the commit order stay owned by the driver, so both modes produce
//! block-for-block identical ledgers for the same seed — asserted by the
//! `pipeline_determinism` integration tests.

use crate::events::{ms, Event, EventQueue, SimTime};
use crate::metrics::{FormationTiming, PipelineOccupancy, SimReport};
use crate::pipeline::{CommitStage, EndorseStage};
use crate::profiles::PipelineProfile;
use eov_baselines::api::{ConcurrencyControl, SystemKind};
use eov_common::abort::AbortReason;
use eov_common::config::{BlockConfig, CcConfig, WorkloadParams};
use eov_common::rwset::ReadSet;
use eov_common::txn::{TemplateClass, Transaction, TxnId, TxnStatus};
use eov_common::version::SeqNo;
use eov_ledger::durable::{DurableOptions, LedgerBackend};
use eov_ledger::{write_checkpoint, Block, Ledger};
use eov_vstore::{
    into_shared_backend, SharedStore, SnapshotManager, StateRead, StateStore, StoreBackend,
};
use eov_workload::generator::{WorkloadGenerator, WorkloadKind};
use fabricsharp_core::endorser::SnapshotEndorser;
use fabricsharp_core::scheduler::{CommitScheduler, WideningTable};
use std::collections::HashMap;
use std::sync::Arc;

/// Everything one simulation run needs.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// Which concurrency control to run.
    pub system: SystemKind,
    /// Which workload to generate.
    pub workload: WorkloadKind,
    /// Workload parameters (Table 2).
    pub params: WorkloadParams,
    /// Block-formation parameters.
    pub block: BlockConfig,
    /// FabricSharp concurrency-control parameters (ignored by the baselines).
    pub cc: CcConfig,
    /// Pipeline cost profile (Fabric or FastFabric testbed).
    pub profile: PipelineProfile,
    /// Simulated run length in seconds (clients stop submitting after this; the pipeline then
    /// drains).
    pub duration_s: f64,
    /// RNG seed for the workload generator.
    pub seed: u64,
    /// Number of sharded endorser worker threads executing the pipeline's heavy stages.
    /// `0` (the default) runs every stage inline on the driver thread — the reference
    /// single-threaded mode; `N ≥ 1` spawns `N` endorser shards plus the committer thread.
    /// Both modes produce identical ledgers for the same seed.
    pub endorser_shards: usize,
    /// Number of key-space shards for the state store, the CW/CR/PW/PR indices and the
    /// dependency graph. `0` (the default) runs the unsharded reference engine; `S ≥ 1`
    /// partitions the key space across `S` stores and graph shards behind the cross-shard
    /// coordinator. Every value produces identical ledgers for the same seed — asserted
    /// block for block by `tests/sharding_determinism.rs`.
    pub store_shards: usize,
    /// Number of worker threads the sharded dependency-graph engine fans its per-shard
    /// arrival and formation work out on (border node-copy inserts, per-shard formation topo
    /// sorts, ww restoration, pruning). `0` (the default) runs the inline reference path;
    /// the knob is inert when `store_shards == 0`. Every value produces identical ledgers
    /// for the same seed — asserted block for block by
    /// `tests/parallel_formation_determinism.rs`.
    pub formation_threads: usize,
    /// Number of worker threads the parallel commit scheduler executes delivered blocks on:
    /// conflict-free waves of the committed order (widened by the workload's static conflict
    /// matrix) validate and apply concurrently against the state store. `0` (the default)
    /// commits every block through the inline serial reference. Every value produces
    /// identical ledgers, stores and reports for the same seed — asserted over the full
    /// S×W×E grid by `tests/scheduler_determinism.rs`.
    pub execution_threads: usize,
    /// Run block formation as a pipeline stage overlapping arrival processing (FabricSharp
    /// only; the knob is inert for systems without seal/join support). When the cut trigger
    /// fires, the pending set is sealed onto the CC's formation worker and the driver keeps
    /// processing arrivals; the formed block is claimed when its modelled reordering delay
    /// elapses. Back-pressure keeps at most one block in formation: a second trigger joins
    /// the in-flight cut before sealing (the driver stalls rather than queueing
    /// unboundedly). `false` (the default) cuts blocks inline — the phased reference. Both
    /// settings produce bit-identical ledgers, stores and reports for the same seed —
    /// asserted over the full grid by `tests/pipelined_formation_determinism.rs`.
    pub pipelined_formation: bool,
    /// Persist the run's chain of record: when set, every appended block is also written to
    /// CRC-framed segment files under this directory (rotation and fsync per
    /// [`CcConfig::segment_rotate_kib`] / [`CcConfig::durable_fsync`]), a genesis store
    /// checkpoint is written at seeding time, and — in inline-stage mode
    /// (`endorser_shards == 0`) — further checkpoints every
    /// [`CcConfig::checkpoint_interval`] blocks. `None` (the default) keeps the run fully
    /// in-memory; the produced ledger is bit-identical either way. The directory must be
    /// fresh: resuming is the recovery path's job
    /// (`fabricsharp_core::recovery::recover_from_disk`), not the simulator's.
    pub durability_dir: Option<std::path::PathBuf>,
}

impl SimulationConfig {
    /// A configuration with the paper's defaults (Fabric testbed, Table 2 defaults, 15
    /// simulated seconds, inline stage execution).
    pub fn new(system: SystemKind, workload: WorkloadKind) -> Self {
        SimulationConfig {
            system,
            workload,
            params: WorkloadParams::default(),
            block: BlockConfig::default(),
            cc: CcConfig::default(),
            profile: PipelineProfile::fabric(),
            duration_s: 15.0,
            seed: 42,
            endorser_shards: 0,
            store_shards: 0,
            formation_threads: 0,
            execution_threads: 0,
            pipelined_formation: false,
            durability_dir: None,
        }
    }

    /// Same as [`SimulationConfig::new`] but on the FastFabric testbed profile (Section 5.4).
    pub fn fast_fabric(system: SystemKind, workload: WorkloadKind) -> Self {
        SimulationConfig {
            profile: PipelineProfile::fast_fabric(),
            ..Self::new(system, workload)
        }
    }

    /// Same as [`SimulationConfig::new`] but with the concurrent pipeline (`shards` endorser
    /// workers plus the committer thread).
    pub fn concurrent(system: SystemKind, workload: WorkloadKind, shards: usize) -> Self {
        SimulationConfig {
            endorser_shards: shards,
            ..Self::new(system, workload)
        }
    }

    /// Same as [`SimulationConfig::new`] but with the key space partitioned across
    /// `store_shards` store/graph shards.
    pub fn sharded_store(system: SystemKind, workload: WorkloadKind, store_shards: usize) -> Self {
        SimulationConfig {
            store_shards,
            ..Self::new(system, workload)
        }
    }

    /// Same as [`SimulationConfig::sharded_store`] but with the per-shard formation and
    /// arrival work fanned out across `formation_threads` graph workers.
    pub fn parallel_formation(
        system: SystemKind,
        workload: WorkloadKind,
        store_shards: usize,
        formation_threads: usize,
    ) -> Self {
        SimulationConfig {
            store_shards,
            formation_threads,
            ..Self::new(system, workload)
        }
    }

    /// Same as [`SimulationConfig::sharded_store`] but committing delivered blocks through
    /// the parallel wave scheduler with `execution_threads` workers (`0` = inline serial
    /// reference).
    pub fn parallel_commit(
        system: SystemKind,
        workload: WorkloadKind,
        store_shards: usize,
        execution_threads: usize,
    ) -> Self {
        SimulationConfig {
            store_shards,
            execution_threads,
            ..Self::new(system, workload)
        }
    }

    /// Same as [`SimulationConfig::new`] but with block formation running as a pipeline
    /// stage overlapping arrival processing (see
    /// [`SimulationConfig::pipelined_formation`]).
    pub fn pipelined(system: SystemKind, workload: WorkloadKind) -> Self {
        SimulationConfig {
            pipelined_formation: true,
            ..Self::new(system, workload)
        }
    }
}

/// The simulator. Stateless — all state lives inside a single `run` call.
#[derive(Clone, Copy, Debug, Default)]
pub struct Simulator;

impl Simulator {
    /// Runs one configuration to completion and reports the metrics.
    pub fn run(config: &SimulationConfig) -> SimReport {
        Self::run_with_ledger(config).0
    }

    /// Runs one configuration to completion, returning the metrics *and* the ledger the run
    /// produced — the artefact the determinism harness compares block for block across stage
    /// backends.
    pub fn run_with_ledger(config: &SimulationConfig) -> (SimReport, Ledger) {
        let (report, ledger, _) = Self::run_full(config);
        (report, ledger)
    }

    /// Runs one configuration to completion, returning the metrics, the ledger *and* the
    /// final state-store backend — the store is what the scheduler determinism harness
    /// compares byte for byte (via `Debug` formatting) across execution-thread counts.
    pub fn run_full(config: &SimulationConfig) -> (SimReport, Ledger, StoreBackend) {
        let profile = PipelineProfile::for_system(config.profile, config.system);
        let mut generator =
            WorkloadGenerator::new(config.workload.clone(), config.params, config.seed);

        // Substrate: state store (shared with the stage backends; unsharded or key-space
        // partitioned per the `store_shards` knob), ledger, snapshot manager, endorser,
        // concurrency control. The same knob flows into the CC so FabricSharp's graph and
        // indices shard alongside the store.
        let store: SharedStore = {
            let mut s = StoreBackend::for_shards(config.store_shards);
            s.seed_genesis(generator.genesis());
            into_shared_backend(s)
        };
        let snapshots = SnapshotManager::new();
        snapshots.register_block(0);
        let endorser = SnapshotEndorser::new(snapshots.clone());
        let cc_config = CcConfig {
            store_shards: config.store_shards,
            formation_threads: config.formation_threads,
            execution_threads: config.execution_threads,
            pipelined_formation: config.pipelined_formation || config.cc.pipelined_formation,
            ..config.cc
        };
        // Chain of record: in-memory reference, or segment files when a durability directory
        // is configured. The genesis checkpoint is written eagerly because seeded genesis
        // values live in no block — replay alone cannot recreate them on a cold start.
        let mut ledger = match &config.durability_dir {
            None => LedgerBackend::memory(),
            Some(dir) => {
                let (backend, open) =
                    LedgerBackend::durable(dir, DurableOptions::from_cc_config(&cc_config))
                        .expect("open durable ledger directory");
                assert_eq!(
                    open.blocks_recovered, 0,
                    "durability_dir must be fresh for a simulation run"
                );
                write_checkpoint(dir, &store.read(), cc_config.durable_fsync)
                    .expect("write genesis checkpoint");
                backend
            }
        };
        let mut cc: Box<dyn ConcurrencyControl> = config.system.build(cc_config);
        let needs_validation = cc.needs_peer_validation();

        // Key-granular conflict analyzer (see `eov_workload::conflict`). The class of every
        // generated *instance* is computed here — identically whether `cc.template_fastpath`
        // is on or off — and stamped on the transaction before it reaches the CC, so the
        // knob alone decides whether the fast path activates.
        let analyzer = generator.analyzer();
        let mut class_by_request: HashMap<u64, (TemplateClass, Option<u16>)> = HashMap::new();
        let mut safe_tagged: u64 = 0;

        // Stage backends (inline for endorser_shards == 0, threaded otherwise). The commit
        // scheduler gets the workload's static widening table: statically conflict-free
        // template pairs share execution waves without key checks.
        let widening = WideningTable::from_conflicts(&analyzer.matrix().conflicts);
        let scheduler = CommitScheduler::with_widening(config.execution_threads, widening);
        let mut endorse_stage =
            EndorseStage::new(config.endorser_shards, SharedStore::clone(&store), endorser);
        let mut commit_stage = CommitStage::new(
            config.endorser_shards > 0,
            SharedStore::clone(&store),
            scheduler,
        );

        // Event loop state.
        let mut queue = EventQueue::new();
        let horizon: SimTime = ms(config.duration_s * 1_000.0);
        let interarrival_us: SimTime = (1_000_000f64 / config.params.request_rate_tps as f64)
            .round()
            .max(1.0) as SimTime;
        let mut last_event_at: SimTime = 0;

        // Counters.
        let mut offered: u64 = 0;
        let mut in_ledger: u64 = 0;
        let mut committed: u64 = 0;
        let mut committed_with_anti_rw: u64 = 0;
        let mut arrivals_since_cut: usize = 0;
        let mut latency_sum_us: u128 = 0;
        let mut block_span_sum: u64 = 0;
        let mut validation_aborts: HashMap<AbortReason, u64> = HashMap::new();
        let mut submitted_at_by_txn: HashMap<TxnId, SimTime> = HashMap::new();
        // All block-cut state (trigger counters, formation samples, the pipelined seal/join
        // bookkeeping and the formation-stage occupancy windows) lives in one driver so both
        // cut triggers — batch-size and cadence — share a single code path.
        let mut cut = CutDriver::new(config.pipelined_formation && cc.pipelined_formation());
        let mut validator_windows: Vec<(SimTime, SimTime)> = Vec::new();
        let mut validator_free_at: SimTime = 0;
        // The chain height at the driver's *logical* time. In concurrent mode the committer
        // thread may have applied further blocks physically; the driver must never observe
        // them early, so it mirrors the height itself instead of asking the store.
        let mut last_committed: u64 = 0;
        // Height assigned to the next delivered block (delivery order == commit order).
        let mut next_commit_block: u64 = 1;
        // For the vanilla-Fabric execute-phase lock: before a block can commit (write lock),
        // the in-flight simulations holding the read lock must drain, which on average costs
        // one full simulation duration per block. Every other system replaced the lock with
        // snapshot reads and pays nothing.
        let lock_penalty_ms: f64 = if profile.endorsement_lock {
            profile.endorse_base_ms
                + config.params.read_interval_ms as f64 * config.params.reads_per_txn as f64
        } else {
            0.0
        };

        queue.schedule(0, Event::ClientSubmit { request_no: 1 });

        while let Some((at, event)) = queue.pop() {
            let now = at;
            last_event_at = last_event_at.max(now);
            match event {
                Event::ClientSubmit { request_no } => {
                    if now >= horizon {
                        continue;
                    }
                    offered += 1;
                    let template = generator.next_template();
                    let class = analyzer.classify_instance(&template);
                    if class.is_safe() {
                        safe_tagged += 1;
                    }
                    class_by_request
                        .insert(request_no, (class, analyzer.template_index(&template)));
                    let endorse_ms = profile.endorse_base_ms
                        + config.params.read_interval_ms as f64 * template.read_count() as f64;
                    let done_at = now + ms(endorse_ms);
                    // Kick the simulation off on the endorsement stage; the result is consumed
                    // (deterministically) when the EndorseDone event fires.
                    endorse_stage.dispatch(
                        request_no,
                        last_committed,
                        Box::new(move |ctx| template.run(ctx)),
                    );
                    queue.schedule(
                        done_at,
                        Event::EndorseDone {
                            request_no,
                            submitted_at: now,
                        },
                    );
                    // Next client request.
                    queue.schedule(
                        now + interarrival_us,
                        Event::ClientSubmit {
                            request_no: request_no + 1,
                        },
                    );
                }

                Event::EndorseDone {
                    request_no,
                    submitted_at,
                } => {
                    let mut txn = endorse_stage.collect(request_no);
                    let (class, template_id) = class_by_request
                        .remove(&request_no)
                        .unwrap_or((TemplateClass::Unknown, None));
                    txn.template_class = class;
                    txn.template_id = template_id;
                    // Under the vanilla-Fabric lock the simulation effectively ran against the
                    // latest block at completion time; re-simulate if the chain advanced.
                    if profile.endorsement_lock && txn.snapshot_block < last_committed {
                        txn = {
                            let guard = store.read();
                            Self::resimulate(&guard, &txn, last_committed)
                        };
                    }
                    if cc.on_endorsement(&txn, last_committed).is_accept() {
                        let broadcast_ms =
                            config.params.client_delay_ms as f64 + profile.ordering_latency_ms;
                        queue.schedule(
                            now + ms(broadcast_ms),
                            Event::OrdererReceive { txn, submitted_at },
                        );
                    }
                }

                Event::OrdererReceive { txn, submitted_at } => {
                    let id = txn.id;
                    // The orderer's batching policy counts every delivered transaction,
                    // exactly like Fabric's MaxMessageCount: an early abort still consumes a
                    // slot in the current batch window. (Counting only accepted transactions
                    // would stretch Fabric#'s batch windows under contention and starve hot
                    // keys of commit opportunities — a cadence artifact, not a CC property.)
                    arrivals_since_cut += 1;
                    let accepted = cc.on_arrival(txn).is_accept();
                    if accepted {
                        submitted_at_by_txn.insert(id, submitted_at);
                        if cc.pending_len() == 1 {
                            queue.schedule(
                                now + ms(config.block.block_timeout_ms as f64),
                                Event::BlockTimeout {
                                    blocks_formed_at_arming: cut.blocks_formed,
                                },
                            );
                        }
                    }
                    if arrivals_since_cut >= config.block.max_txns_per_block {
                        arrivals_since_cut = 0;
                        cut.trigger(
                            &mut cc,
                            &profile,
                            config.system,
                            &mut submitted_at_by_txn,
                            &mut queue,
                            now,
                        );
                    }
                }

                Event::BlockTimeout {
                    blocks_formed_at_arming,
                } => {
                    if cut.blocks_formed == blocks_formed_at_arming && cc.pending_len() > 0 {
                        arrivals_since_cut = 0;
                        cut.trigger(
                            &mut cc,
                            &profile,
                            config.system,
                            &mut submitted_at_by_txn,
                            &mut queue,
                            now,
                        );
                    }
                }

                Event::BlockDelivered {
                    txns,
                    submitted_at,
                    formed_at: _,
                } => {
                    Self::deliver_block(
                        txns,
                        submitted_at,
                        now,
                        &profile,
                        lock_penalty_ms,
                        needs_validation,
                        &mut validator_free_at,
                        &mut next_commit_block,
                        &mut commit_stage,
                        &mut validator_windows,
                        &mut queue,
                    );
                }

                Event::PipelinedBlockReady {
                    formation_no,
                    formed_at,
                } => {
                    let txns = cut.take_ready(&mut cc, formation_no);
                    let submitted_at: Vec<SimTime> = txns
                        .iter()
                        .map(|t| submitted_at_by_txn.remove(&t.id).unwrap_or(formed_at))
                        .collect();
                    // Delivery runs inline: re-scheduling a same-timestamp BlockDelivered
                    // here would give it a later insertion number than the phased mode's
                    // (scheduled at seal time), shifting FIFO tie-breaks and with them the
                    // whole downstream schedule.
                    Self::deliver_block(
                        Arc::new(txns),
                        submitted_at,
                        now,
                        &profile,
                        lock_penalty_ms,
                        needs_validation,
                        &mut validator_free_at,
                        &mut next_commit_block,
                        &mut commit_stage,
                        &mut validator_windows,
                        &mut queue,
                    );
                }

                Event::BlockValidated {
                    block_no,
                    txns,
                    submitted_at,
                } => {
                    debug_assert_eq!(block_no, ledger.height() + 1, "commit order violation");
                    let outcome = commit_stage.finish(block_no, &txns, needs_validation);
                    // Count commits that tolerate an anti-rw dependency (a
                    // Strong-Serializability system would have aborted them); only systems
                    // without peer validation actually commit them.
                    if !needs_validation {
                        committed_with_anti_rw += outcome.anti_rw_commits;
                    }

                    // The commit stage has finished with the block, so the driver usually
                    // holds the last Arc reference and unwraps for free; a straggling clone
                    // (scheduler worker mid-drop) falls back to a copy.
                    let txns = Arc::try_unwrap(txns).unwrap_or_else(|shared| (*shared).clone());
                    let mut block = Block::build(block_no, ledger.as_ledger().tip_hash(), txns);
                    let mut block_outcome: Vec<(Transaction, TxnStatus)> =
                        Vec::with_capacity(block.entries.len());
                    for ((entry, status), submitted) in block
                        .entries
                        .iter_mut()
                        .zip(outcome.statuses)
                        .zip(submitted_at)
                    {
                        entry.status = status;
                        in_ledger += 1;
                        match status {
                            TxnStatus::Committed => {
                                committed += 1;
                                latency_sum_us += (now.saturating_sub(submitted)) as u128;
                                block_span_sum += entry
                                    .txn
                                    .end_ts
                                    .map(|e| e.block)
                                    .unwrap_or(block_no)
                                    .saturating_sub(entry.txn.snapshot_block);
                            }
                            TxnStatus::Aborted(reason) => {
                                *validation_aborts.entry(reason).or_insert(0) += 1;
                            }
                            TxnStatus::Pending => unreachable!("validation assigns final statuses"),
                        }
                        block_outcome.push((entry.txn.clone(), status));
                    }
                    ledger.append(block).expect("simulator blocks always chain");
                    snapshots.register_block(block_no);
                    cc.on_block_committed(block_no, &block_outcome);
                    last_committed = block_no;
                    // Periodic store checkpoints, inline-stage mode only: with a committer
                    // thread running, the store could be mid-block when cloned for
                    // serialization, so concurrent runs keep the genesis checkpoint alone
                    // and recover by full replay.
                    if let Some(dir) = &config.durability_dir {
                        if cc_config.checkpoint_interval > 0
                            && config.endorser_shards == 0
                            && block_no % cc_config.checkpoint_interval == 0
                        {
                            write_checkpoint(dir, &store.read(), cc_config.durable_fsync)
                                .expect("write periodic checkpoint");
                        }
                    }
                }
            }
        }

        // Assemble the report.
        let mut aborts = validation_aborts;
        for (reason, count) in cc.early_aborts() {
            *aborts.entry(reason).or_insert(0) += count;
        }
        let (mut commit_us, wave) = commit_stage.commit_metrics();
        let duration_s = (last_event_at as f64 / 1_000_000.0).max(config.duration_s);
        let committed_f = committed.max(1) as f64;
        let occupancy = PipelineOccupancy::from_windows(
            &cut.formation_windows,
            &validator_windows,
            cc.formation_stalls(),
        );
        let mut formation_us = cut.formation_us;
        let report = SimReport {
            system: config.system,
            duration_s,
            offered,
            in_ledger,
            committed,
            aborts,
            blocks: ledger.height(),
            avg_latency_ms: latency_sum_us as f64 / 1_000.0 / committed_f,
            avg_block_span: block_span_sum as f64 / committed_f,
            avg_hops: cc.avg_hops(),
            measured_reorder_ms_per_block: cc.reorder_time().as_secs_f64() * 1_000.0
                / ledger.height().max(1) as f64,
            measured_arrival_us_per_txn: cc.arrival_time().as_secs_f64() * 1_000_000.0
                / offered.max(1) as f64,
            committed_with_anti_rw,
            formation: FormationTiming::from_samples(&mut formation_us),
            commit: FormationTiming::from_samples(&mut commit_us),
            wave,
            safe_tagged,
            fastpath_accepted: cc.fastpath_accepted(),
            conflict_matrix: analyzer.matrix().clone(),
            occupancy,
        };
        // Tear down the pipeline stages (joining their worker threads) so the driver holds
        // the only remaining reference to the store and can hand the backend out by value.
        drop(endorse_stage);
        drop(commit_stage);
        let backend = Arc::try_unwrap(store)
            .map(|lock| lock.into_inner())
            .unwrap_or_else(|shared| shared.read().clone());
        (report, ledger.into_ledger(), backend)
    }

    /// Runs the same configuration for every system and returns the reports in
    /// [`SystemKind::all`] order — the shape of every multi-system figure.
    pub fn run_all_systems(base: &SimulationConfig) -> Vec<SimReport> {
        SystemKind::all()
            .into_iter()
            .map(|system| {
                let config = SimulationConfig {
                    system,
                    ..base.clone()
                };
                Self::run(&config)
            })
            .collect()
    }

    /// Re-simulates a transaction against a newer snapshot (vanilla Fabric's lock semantics:
    /// the simulation always completes against the latest block). The original template is not
    /// retained, so the re-simulation simply refreshes the read versions in place — the write
    /// values are recomputed from the refreshed reads only for balance-style single-key
    /// updates; for everything else the key sets are what matter to the concurrency analysis.
    fn resimulate(store: &StoreBackend, txn: &Transaction, latest_block: u64) -> Transaction {
        let mut refreshed = txn.clone();
        refreshed.snapshot_block = latest_block;
        let mut reads = ReadSet::new();
        for item in txn.read_set.iter() {
            let version = store
                .read_at(&item.key, latest_block)
                .ok()
                .flatten()
                .map(|vv| vv.version)
                .unwrap_or(SeqNo::zero());
            reads.record(item.key.clone(), version);
        }
        refreshed.read_set = reads;
        refreshed
    }

    /// Moves a cut block into the validator: assigns the next commit height, occupies the
    /// validator for the modelled service time, hands the block to the commit stage and
    /// schedules the `BlockValidated` event. Shared verbatim by the phased `BlockDelivered`
    /// arm and the pipelined `PipelinedBlockReady` arm, so the two modes cannot drift.
    #[allow(clippy::too_many_arguments)]
    fn deliver_block(
        txns: Arc<Vec<Transaction>>,
        submitted_at: Vec<SimTime>,
        now: SimTime,
        profile: &PipelineProfile,
        lock_penalty_ms: f64,
        needs_validation: bool,
        validator_free_at: &mut SimTime,
        next_commit_block: &mut u64,
        commit_stage: &mut CommitStage,
        validator_windows: &mut Vec<(SimTime, SimTime)>,
        queue: &mut EventQueue,
    ) {
        let start = now.max(*validator_free_at);
        let service = profile.validation_ms(txns.len()) + lock_penalty_ms;
        *validator_free_at = start + ms(service);
        validator_windows.push((start, *validator_free_at));
        let block_no = *next_commit_block;
        *next_commit_block += 1;
        // Hand the block to the commit stage now (the committer thread can overlap with the
        // driver); its effects become visible to the driver at the BlockValidated event.
        commit_stage.begin(block_no, &txns, needs_validation);
        queue.schedule(
            *validator_free_at,
            Event::BlockValidated {
                block_no,
                txns,
                submitted_at,
            },
        );
    }
}

/// Driver-side owner of the block-cut path: the trigger counters, the measured formation
/// samples, the formation-stage occupancy windows and — in pipelined mode — the seal/join
/// bookkeeping. Both cut triggers (batch size and cadence timeout) funnel through
/// [`CutDriver::trigger`], the single place a block leaves the pending set.
struct CutDriver {
    /// Run block formation as an overlapped pipeline stage (seal/join) instead of inline.
    pipelined: bool,
    /// Blocks cut so far (pipelined: sealed so far) — the cadence trigger's staleness guard.
    blocks_formed: u64,
    /// Measured wall-clock per formed block, in µs (one sample per non-empty block).
    formation_us: Vec<u64>,
    /// `(seal, delivery-ready)` simulated windows of the formation stage, for occupancy.
    formation_windows: Vec<(SimTime, SimTime)>,
    /// Pipelined: seal-order number of the formation currently on the CC's worker.
    inflight: Option<u64>,
    /// Pipelined: blocks force-joined by back-pressure before their ready event fired,
    /// keyed by seal-order number until the event claims them.
    finished_early: HashMap<u64, Vec<Transaction>>,
    /// Pipelined: seal-order number the next `begin_cut` takes.
    next_formation_no: u64,
}

impl CutDriver {
    fn new(pipelined: bool) -> Self {
        CutDriver {
            pipelined,
            blocks_formed: 0,
            formation_us: Vec::new(),
            formation_windows: Vec::new(),
            inflight: None,
            finished_early: HashMap::new(),
            next_formation_no: 0,
        }
    }

    /// Fires the block-cut condition. Phased mode cuts inline and schedules the delivery
    /// after the modelled reordering delay. Pipelined mode seals the pending set onto the
    /// CC's formation worker and schedules `PipelinedBlockReady` at the *same* timestamp —
    /// back-pressure first joins any formation still in flight (at most one block forms at a
    /// time; the driver stalls rather than queueing seals unboundedly).
    fn trigger(
        &mut self,
        cc: &mut Box<dyn ConcurrencyControl>,
        profile: &PipelineProfile,
        system: SystemKind,
        submitted_at_by_txn: &mut HashMap<TxnId, SimTime>,
        queue: &mut EventQueue,
        now: SimTime,
    ) {
        if cc.pending_len() == 0 {
            return;
        }
        if self.pipelined {
            if let Some(no) = self.inflight.take() {
                let (txns, us) = cc.finish_cut();
                self.formation_us.push(us);
                self.finished_early.insert(no, txns);
            }
            let sealed = cc.begin_cut();
            if sealed == 0 {
                return;
            }
            self.blocks_formed += 1;
            let formation_no = self.next_formation_no;
            self.next_formation_no += 1;
            self.inflight = Some(formation_no);
            let ready_at = now + ms(profile.reorder_ms(system, sealed) + 2.0);
            self.formation_windows.push((now, ready_at));
            queue.schedule(
                ready_at,
                Event::PipelinedBlockReady {
                    formation_no,
                    formed_at: now,
                },
            );
            return;
        }
        let formation_started = std::time::Instant::now();
        let txns = cc.cut_block();
        if txns.is_empty() {
            return;
        }
        self.formation_us.push(
            formation_started
                .elapsed()
                .as_micros()
                .min(u64::MAX as u128) as u64,
        );
        self.blocks_formed += 1;
        let submitted_at: Vec<SimTime> = txns
            .iter()
            .map(|t| submitted_at_by_txn.remove(&t.id).unwrap_or(now))
            .collect();
        let delay = profile.reorder_ms(system, txns.len()) + 2.0;
        self.formation_windows.push((now, now + ms(delay)));
        queue.schedule(
            now + ms(delay),
            Event::BlockDelivered {
                txns: Arc::new(txns),
                submitted_at,
                formed_at: now,
            },
        );
    }

    /// Claims formation `formation_no` when its ready event fires: either the block was
    /// already force-joined by back-pressure, or it is the one still in flight and the
    /// driver joins it now.
    fn take_ready(
        &mut self,
        cc: &mut Box<dyn ConcurrencyControl>,
        formation_no: u64,
    ) -> Vec<Transaction> {
        if let Some(txns) = self.finished_early.remove(&formation_no) {
            return txns;
        }
        debug_assert_eq!(
            self.inflight,
            Some(formation_no),
            "ready events fire in seal order"
        );
        self.inflight = None;
        let (txns, us) = cc.finish_cut();
        self.formation_us.push(us);
        txns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(system: SystemKind) -> SimulationConfig {
        let mut config = SimulationConfig::new(system, WorkloadKind::ModifiedSmallbank);
        config.duration_s = 3.0;
        config.params.num_accounts = 1_000;
        config.params.request_rate_tps = 400;
        config.block.max_txns_per_block = 50;
        config
    }

    #[test]
    fn noop_workload_commits_everything_for_every_system() {
        for system in SystemKind::all() {
            let mut config = quick_config(system);
            config.workload = WorkloadKind::NoOp;
            let report = Simulator::run(&config);
            assert!(report.offered > 0, "{system}");
            assert_eq!(
                report.aborted(),
                0,
                "{system}: no-op transactions never conflict"
            );
            assert_eq!(report.committed, report.in_ledger, "{system}");
            assert!(report.effective_tps() > 0.0, "{system}");
            assert!(report.blocks > 0, "{system}");
        }
    }

    #[test]
    fn skewed_kv_updates_abort_under_fabric_but_not_under_fabricsharp_raw() {
        let mut fabric_cfg = quick_config(SystemKind::Fabric);
        fabric_cfg.workload = WorkloadKind::KvUpdate { theta: 1.0 };
        let fabric = Simulator::run(&fabric_cfg);

        let mut sharp_cfg = quick_config(SystemKind::FabricSharp);
        sharp_cfg.workload = WorkloadKind::KvUpdate { theta: 1.0 };
        let sharp = Simulator::run(&sharp_cfg);

        // Under skew Fabric loses a visible fraction of its raw throughput to validation
        // aborts, while FabricSharp's effective throughput stays at (or above) Fabric's.
        assert!(
            fabric.aborted() > 0,
            "skewed updates must abort under Fabric"
        );
        assert!(fabric.effective_tps() < fabric.raw_tps());
        assert!(
            sharp.effective_tps() >= fabric.effective_tps() * 0.95,
            "Fabric# {:.0} tps should not trail Fabric {:.0} tps",
            sharp.effective_tps(),
            fabric.effective_tps()
        );
    }

    #[test]
    fn reports_are_deterministic_for_a_seed() {
        let config = quick_config(SystemKind::FabricSharp);
        let a = Simulator::run(&config);
        let b = Simulator::run(&config);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.in_ledger, b.in_ledger);
        assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn concurrent_pipeline_matches_the_inline_reference() {
        let mut config = quick_config(SystemKind::FabricSharp);
        config.duration_s = 2.0;
        let (inline_report, inline_ledger) = Simulator::run_with_ledger(&config);
        config.endorser_shards = 2;
        let (sharded_report, sharded_ledger) = Simulator::run_with_ledger(&config);
        assert_eq!(inline_report.offered, sharded_report.offered);
        assert_eq!(inline_report.committed, sharded_report.committed);
        assert_eq!(inline_report.blocks, sharded_report.blocks);
        assert_eq!(inline_ledger.tip_hash(), sharded_ledger.tip_hash());
    }

    #[test]
    fn pipelined_formation_matches_the_phased_reference() {
        let mut config = quick_config(SystemKind::FabricSharp);
        config.duration_s = 2.0;
        let (phased_report, phased_ledger) = Simulator::run_with_ledger(&config);
        config.pipelined_formation = true;
        let (pipelined_report, pipelined_ledger) = Simulator::run_with_ledger(&config);
        assert_eq!(phased_report.offered, pipelined_report.offered);
        assert_eq!(phased_report.committed, pipelined_report.committed);
        assert_eq!(phased_report.in_ledger, pipelined_report.in_ledger);
        assert_eq!(phased_report.blocks, pipelined_report.blocks);
        assert_eq!(phased_ledger.tip_hash(), pipelined_ledger.tip_hash());
    }

    #[test]
    fn cadence_and_count_triggered_cuts_produce_identical_ledgers() {
        // Both block-cut triggers funnel through the single `CutDriver::trigger` path; this
        // pins that the *trigger reason* is invisible to the cut itself. A no-op workload at
        // exactly 100 tps arrives on a fixed 10 ms cadence (constant endorsement cost, no
        // conflicts), so a 10-txn count trigger and a 95 ms cadence trigger partition the
        // arrival stream into the very same blocks — the ledgers must be bit-identical, in
        // both the phased and the pipelined formation modes.
        for pipelined in [false, true] {
            let mut count_cfg = SimulationConfig::new(SystemKind::FabricSharp, WorkloadKind::NoOp);
            count_cfg.duration_s = 1.0;
            count_cfg.params.request_rate_tps = 100;
            count_cfg.block.max_txns_per_block = 10;
            count_cfg.block.block_timeout_ms = 60_000;
            count_cfg.pipelined_formation = pipelined;

            let mut cadence_cfg = count_cfg.clone();
            cadence_cfg.block.max_txns_per_block = 10_000;
            cadence_cfg.block.block_timeout_ms = 95;

            let (count_report, count_ledger) = Simulator::run_with_ledger(&count_cfg);
            let (cadence_report, cadence_ledger) = Simulator::run_with_ledger(&cadence_cfg);
            assert!(count_report.blocks > 1, "pipelined={pipelined}: blocks cut");
            assert_eq!(
                count_report.blocks, cadence_report.blocks,
                "pipelined={pipelined}: block count"
            );
            assert_eq!(
                count_report.in_ledger, cadence_report.in_ledger,
                "pipelined={pipelined}: committed-to-ledger count"
            );
            assert_eq!(
                count_ledger.tip_hash(),
                cadence_ledger.tip_hash(),
                "pipelined={pipelined}: cadence- and count-triggered cuts must agree"
            );
        }
    }

    #[test]
    fn run_all_systems_returns_one_report_per_system() {
        let mut base = quick_config(SystemKind::Fabric);
        base.duration_s = 1.0;
        let reports = Simulator::run_all_systems(&base);
        assert_eq!(reports.len(), 5);
        let kinds: Vec<SystemKind> = reports.iter().map(|r| r.system).collect();
        assert_eq!(kinds, SystemKind::all().to_vec());
    }

    #[test]
    fn fast_fabric_profile_reaches_a_much_higher_ceiling() {
        let mut slow = SimulationConfig::new(SystemKind::Fabric, WorkloadKind::CreateAccount);
        slow.duration_s = 3.0;
        slow.params.request_rate_tps = 4_000;
        slow.params.num_accounts = 1_000;

        let mut fast =
            SimulationConfig::fast_fabric(SystemKind::Fabric, WorkloadKind::CreateAccount);
        fast.duration_s = 3.0;
        fast.params.request_rate_tps = 4_000;
        fast.params.num_accounts = 1_000;

        let slow_report = Simulator::run(&slow);
        let fast_report = Simulator::run(&fast);
        assert!(
            fast_report.effective_tps() > 2.0 * slow_report.effective_tps(),
            "FastFabric ({:.0} tps) should far exceed Fabric ({:.0} tps)",
            fast_report.effective_tps(),
            slow_report.effective_tps()
        );
    }
}
