//! Pipelined-formation sweep — end-to-end blocks/sec of the phased vs the pipelined driver.
//!
//! ```text
//! cargo run --release -p eov-bench --bin pipeline_sweep
//! ```
//!
//! For FabricSharp on modified Smallbank, YCSB-B and YCSB-C at every `S` (store shards) ×
//! `W` (formation threads) × `E` (execution threads) point, the same simulation runs with
//! `pipelined_formation` off and on. The *simulated* outcome is bit-identical between the two
//! modes (`tests/pipelined_formation_determinism.rs` pins ledgers, stores and reports), so
//! the sweep reports what actually moves:
//!
//! * wall-clock **blocks/sec** of driving the whole orderer loop on this machine (median of
//!   `RUNS`) — on a multi-core host the pipelined driver wins by overlapping next-block
//!   arrivals with the formation worker; on a single-core host it can only pay the handoff
//!   overhead, which is exactly what the cores-guarded `bench_gate` check encodes;
//! * the simulated formation/commit **occupancy overlap** and the **forced-join** count
//!   (back-pressure events where a new cut had to join the previous formation early).

use eov_baselines::api::SystemKind;
use eov_sim::{SimReport, SimulationConfig, Simulator};
use eov_workload::generator::WorkloadKind;
use eov_workload::YcsbProfile;
use std::time::Instant;

/// Timed runs per point (one extra warm-up excluded); the reported number is the median.
const RUNS: usize = 5;

const STORE_SHARDS: [usize; 2] = [0, 4];
const FORMATION_THREADS: [usize; 2] = [0, 2];
const EXECUTION_THREADS: [usize; 2] = [0, 2];

/// Simulated seconds per run (`FABRICSHARP_BENCH_SECS` overrides; kept short because every
/// grid point is measured `RUNS + 1` times in both modes).
fn duration_s() -> f64 {
    std::env::var("FABRICSHARP_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(2.0)
}

fn workloads() -> Vec<(&'static str, WorkloadKind)> {
    vec![
        ("modified-smallbank", WorkloadKind::ModifiedSmallbank),
        (
            "ycsb-b (95r/5u)",
            WorkloadKind::Ycsb(YcsbProfile::b().with_write_partition(0.2)),
        ),
        ("ycsb-c (100r)", WorkloadKind::Ycsb(YcsbProfile::c())),
    ]
}

/// Median wall-clock blocks/sec of `RUNS` full simulator runs, plus the (deterministic)
/// report of the last run for occupancy inspection.
fn measure(config: &SimulationConfig) -> (f64, SimReport) {
    let mut samples: Vec<f64> = Vec::with_capacity(RUNS + 1);
    let mut report = None;
    for _ in 0..=RUNS {
        let start = Instant::now();
        let r = Simulator::run(config);
        let wall = start.elapsed().as_secs_f64().max(1e-9);
        samples.push(r.blocks as f64 / wall);
        report = Some(r);
    }
    samples.remove(0); // warm-up
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    (
        samples[samples.len() / 2],
        report.expect("ran at least once"),
    )
}

fn main() {
    println!("==================================================================");
    println!(
        "pipeline_sweep: phased vs pipelined block formation: end-to-end blocks/sec at S x W x E"
    );
    println!("==================================================================");
    println!(
        "detected parallelism on this machine: {} (simulated {}s per run, median of {RUNS})\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        duration_s()
    );

    for (name, workload) in workloads() {
        println!("FabricSharp, {name}");
        println!(
            "{:<4}{:<4}{:<4}{:>16}{:>18}{:>12}{:>14}{:>14}",
            "S",
            "W",
            "E",
            "phased bl/s",
            "pipelined bl/s",
            "pipe/phase",
            "overlap %",
            "forced joins"
        );
        for shards in STORE_SHARDS {
            for formation in FORMATION_THREADS {
                for execution in EXECUTION_THREADS {
                    let mut config =
                        SimulationConfig::new(SystemKind::FabricSharp, workload.clone());
                    config.duration_s = duration_s();
                    config.store_shards = shards;
                    config.formation_threads = formation;
                    config.execution_threads = execution;

                    let (phased_bps, _) = measure(&config);
                    config.pipelined_formation = true;
                    let (pipelined_bps, report) = measure(&config);
                    println!(
                        "{:<4}{:<4}{:<4}{:>16.1}{:>18.1}{:>11.2}x{:>13.0}%{:>14}",
                        shards,
                        formation,
                        execution,
                        phased_bps,
                        pipelined_bps,
                        pipelined_bps / phased_bps,
                        report.occupancy.overlap_fraction() * 100.0,
                        report.occupancy.forced_joins,
                    );
                }
            }
        }
        println!();
    }
    println!(
        "Ledger, store and report are bit-identical between the two modes at every point\n\
         (tests/pipelined_formation_determinism.rs). blocks/sec is wall-clock on this machine:\n\
         on a single-core runner the pipelined driver can only pay the worker handoff, so the\n\
         ratio sits at or below 1.0x there; bench_gate's throughput check therefore arms only\n\
         on >= 2 cores and reports SKIP otherwise."
    );
}
