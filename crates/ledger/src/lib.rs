//! # eov-ledger
//!
//! The blockchain ledger substrate: a hash-chained sequence of blocks, each batching the
//! ordered transactions delivered by the ordering service, together with the per-transaction
//! validity flags set during the validation phase (Fabric marks invalid transactions in the
//! block rather than removing them, so the raw ledger throughput counts them too — this is
//! exactly the raw-vs-effective distinction of Figure 1).
//!
//! * [`sha256`] — a dependency-free SHA-256 implementation used for block hashing.
//! * [`block`] — block headers, block bodies, and per-transaction commit flags.
//! * [`chain`] — the append-only hash-chained block store with integrity verification
//!   (the safety properties of Section 3.5: hash-chain integrity, no skipping, no creation).

#![forbid(unsafe_code)]

pub mod block;
pub mod chain;
pub mod sha256;

pub use block::{Block, BlockHeader, TxnEntry};
pub use chain::Ledger;
pub use sha256::{sha256, Digest};
