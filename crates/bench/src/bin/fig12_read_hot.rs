//! Figure 12 — throughput and per-transaction arrival-processing latency as the read hot ratio
//! sweeps 0 … 50 % (modified Smallbank).
//!
//! ```text
//! cargo run --release -p eov-bench --bin fig12_read_hot
//! ```

use eov_baselines::api::SystemKind;
use eov_bench::{banner, print_throughput_table, run_all_systems};
use eov_common::config::ExperimentGrid;
use eov_sim::SimulationConfig;
use eov_workload::generator::WorkloadKind;

fn main() {
    banner(
        "Figure 12",
        "throughput (left) and measured per-txn arrival latency (right) under varying read hot ratio",
    );
    let grid = ExperimentGrid::default();
    let mut rows = Vec::new();
    for &ratio in &grid.read_hot_ratios {
        let mut base = SimulationConfig::new(SystemKind::Fabric, WorkloadKind::ModifiedSmallbank);
        base.params.read_hot_ratio = ratio;
        rows.push((format!("{:.0}%", ratio * 100.0), run_all_systems(base)));
    }

    print_throughput_table(
        "read hot ratio",
        &rows,
        |r| r.effective_tps(),
        "effective tps",
    );
    print_throughput_table(
        "read hot ratio",
        &rows,
        |r| r.measured_arrival_us_per_txn,
        "measured arrival µs/txn (this machine)",
    );

    println!(
        "Paper's shape: read-write cycles cannot be rescued by reordering (Theorem 2), so every\n\
         system's throughput falls at a similar rate — except Focc-s, whose stricter-but-different\n\
         dangerous-structure rule lets it recover some transactions under heavy read contention.\n\
         Fabric#'s arrival-time processing dominates the right panel (reachability updates), while\n\
         Fabric++/Focc-s arrival costs are near zero."
    );
}
