//! Replication and determinism: the paper's safety argument (Section 3.5) requires every
//! honest orderer, fed the same consensus stream, to perform the same reordering and deliver
//! identical blocks. These tests drive independent controller replicas from a shared
//! `ConsensusLog` and compare their outputs, and exercise the hash-commitment mitigation.

use fabricsharp::consensus::adversary::{
    audit_fork, commitment_of, ClientSubmission, EquivocatingLeader, ForkVerdict,
    FrontRunningLeader, LeaderPolicy,
};
use fabricsharp::consensus::{BlockCutter, ConsensusLog, Submission};
use fabricsharp::ledger::{Block, Ledger};
use fabricsharp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a stream of moderately contended transactions over 6 keys.
fn transaction_stream(count: usize, seed: u64) -> Vec<Transaction> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let read_key = Key::new(format!("k{}", rng.gen_range(0..6)));
            let write_key = Key::new(format!("k{}", rng.gen_range(0..6)));
            Transaction::from_parts(
                i as u64 + 1,
                0,
                [(read_key, SeqNo::new(0, 1))],
                [(write_key, Value::from_i64(i as i64))],
            )
        })
        .collect()
}

#[test]
fn replicated_fabricsharp_orderers_produce_identical_blocks() {
    let log = ConsensusLog::new();
    for txn in transaction_stream(120, 4) {
        log.append(Submission { txn, submitter: 0 });
    }

    // Two independent replicas replay the same log with the same block-formation rule.
    let mut replicas: Vec<(FabricSharpCC, Vec<Vec<u64>>)> = (0..2)
        .map(|_| (FabricSharpCC::with_defaults(), Vec::new()))
        .collect();
    for (cc, blocks) in &mut replicas {
        let mut cursor = log.cursor();
        while let Some(submission) = cursor.poll() {
            let _ = cc.on_arrival(submission.txn);
            if cc.pending_len() >= 30 {
                blocks.push(cc.cut_block().iter().map(|t| t.id.0).collect());
            }
        }
        let tail = cc.cut_block();
        if !tail.is_empty() {
            blocks.push(tail.iter().map(|t| t.id.0).collect());
        }
    }
    let (_, blocks_a) = &replicas[0];
    let (_, blocks_b) = &replicas[1];
    assert_eq!(
        blocks_a, blocks_b,
        "replicas disagreed on block contents or order"
    );
    assert!(!blocks_a.is_empty());
}

#[test]
fn block_cutters_fed_from_the_same_log_cut_identical_batches() {
    let log = ConsensusLog::new();
    let producer = log.producer();
    for txn in transaction_stream(57, 9) {
        producer.submit(txn, 1);
    }
    log.ingest();

    let config = BlockConfig {
        max_txns_per_block: 10,
        block_timeout_ms: 1_000,
    };
    let cut_ids = |mut cutter: BlockCutter| -> Vec<Vec<u64>> {
        let mut cursor = log.cursor();
        let mut blocks = Vec::new();
        let mut t = 0u64;
        while let Some(submission) = cursor.poll() {
            t += 1;
            if let Some(batch) = cutter.enqueue(submission.txn, t) {
                blocks.push(batch.txns.iter().map(|x| x.id.0).collect());
            }
        }
        if let Some(batch) = cutter.flush(t + 1) {
            blocks.push(batch.txns.iter().map(|x| x.id.0).collect());
        }
        blocks
    };
    let a = cut_ids(BlockCutter::new(config));
    let b = cut_ids(BlockCutter::new(config));
    assert_eq!(a, b);
    assert_eq!(
        a.len(),
        6,
        "57 transactions at 10 per block = 5 full blocks + 1 flush"
    );
}

#[test]
fn simulator_runs_are_reproducible_for_identical_configurations() {
    let mut config =
        SimulationConfig::new(SystemKind::FabricSharp, WorkloadKind::ModifiedSmallbank);
    config.duration_s = 2.0;
    config.params.num_accounts = 500;
    config.params.request_rate_tps = 300;
    let a = Simulator::run(&config);
    let b = Simulator::run(&config);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.in_ledger, b.in_ledger);
    assert_eq!(a.blocks, b.blocks);
    assert_eq!(a.aborted(), b.aborted());
}

/// Replays one proposed total order through an independent FabricSharp orderer replica,
/// sealing a block every `block_size` deliveries, and returns the resulting hash chain —
/// the artefact replicas exchange to audit for forks.
fn replay_branch(branch: &[ClientSubmission], block_size: usize) -> Ledger {
    let mut cc = FabricSharpCC::with_defaults();
    let mut ledger = Ledger::new();
    let mut since_cut = 0usize;
    let seal = |cc: &mut FabricSharpCC, ledger: &mut Ledger| {
        let txns = cc.cut_block();
        if txns.is_empty() {
            return;
        }
        let block = Block::build(ledger.height() + 1, ledger.tip_hash(), txns);
        ledger.append(block).expect("replica blocks always chain");
    };
    for submission in branch {
        let txn = submission
            .clone()
            .reveal()
            .expect("plain submissions always reveal");
        let _ = cc.on_arrival(txn);
        since_cut += 1;
        if since_cut >= block_size {
            since_cut = 0;
            seal(&mut cc, &mut ledger);
        }
    }
    seal(&mut cc, &mut ledger);
    ledger
}

fn block_hashes(ledger: &Ledger) -> Vec<fabricsharp::ledger::Digest> {
    ledger.iter().map(|b| b.hash()).collect()
}

/// The long-fork obligation (ROADMAP open item): under an equivocating leader, replicas
/// either converge to one ledger or *detect* the fork by comparing sealed block hashes —
/// silent divergence is the one forbidden outcome. Replicas inside one partition (same
/// proposed order) must still agree bit for bit, the shared prefix must match across
/// partitions, and the audit must localise the first divergent height.
#[test]
fn long_fork_equivocation_converges_within_partitions_and_is_detected_across() {
    let submissions: Vec<ClientSubmission> = transaction_stream(120, 11)
        .into_iter()
        .map(ClientSubmission::Plain)
        .collect();

    // The leader equivocates after 40 submissions; blocks seal every 30 deliveries, so block
    // 1 precedes the fork point on both branches and block 2 is the first that can diverge.
    let mut leader = EquivocatingLeader::new(40);
    let (branch_a, branch_b) = leader.propose_fork(submissions);
    assert!(leader.equivocated);

    let partition_a_1 = replay_branch(&branch_a, 30);
    let partition_a_2 = replay_branch(&branch_a, 30);
    let partition_b = replay_branch(&branch_b, 30);

    // Within a partition: full convergence (the Section 3.5 agreement property).
    assert_eq!(partition_a_1.tip_hash(), partition_a_2.tip_hash());
    assert_eq!(
        audit_fork(&block_hashes(&partition_a_1), &block_hashes(&partition_a_2)),
        ForkVerdict::Converged {
            common_height: partition_a_1.height() as usize
        }
    );

    // Across partitions: the fork is detected, never silently reconciled, and is localised
    // to the first post-fork block — the shared prefix still matches.
    let verdict = audit_fork(&block_hashes(&partition_a_1), &block_hashes(&partition_b));
    assert_eq!(
        verdict,
        ForkVerdict::Forked {
            first_divergent_height: 2
        },
        "equivocation after the first sealed block must surface at height 2"
    );
    assert_eq!(
        partition_a_1.block(1).unwrap().hash(),
        partition_b.block(1).unwrap().hash(),
        "the pre-fork prefix is common to both partitions"
    );
    // Both branches remain internally valid chains — the attack is only visible by
    // cross-partition comparison, which is why the audit must exist.
    assert!(partition_a_1.verify_integrity().is_ok());
    assert!(partition_b.verify_integrity().is_ok());
}

/// A leader whose "fork point" lies beyond the stream never equivocates: every replica sees
/// the same order and the audit reports convergence — the no-false-positive half of the
/// detection obligation.
#[test]
fn honest_schedules_converge_with_no_fork_report() {
    let submissions: Vec<ClientSubmission> = transaction_stream(90, 12)
        .into_iter()
        .map(ClientSubmission::Plain)
        .collect();
    let mut leader = EquivocatingLeader::new(usize::MAX);
    let (branch_a, branch_b) = leader.propose_fork(submissions);
    assert!(!leader.equivocated);

    let replica_a = replay_branch(&branch_a, 25);
    let replica_b = replay_branch(&branch_b, 25);
    let verdict = audit_fork(&block_hashes(&replica_a), &block_hashes(&replica_b));
    assert!(!verdict.is_forked());
    assert_eq!(replica_a.tip_hash(), replica_b.tip_hash());
    assert!(replica_a.height() > 0);

    // A lagging replica (same order, fewer sealed blocks) is lag, not a fork.
    let lagging = replay_branch(&branch_a[..50], 25);
    assert_eq!(
        audit_fork(&block_hashes(&replica_a), &block_hashes(&lagging)),
        ForkVerdict::Converged {
            common_height: lagging.height() as usize
        }
    );
}

#[test]
fn front_running_leader_aborts_the_victim_but_commitments_defeat_it() {
    let victim = Transaction::from_parts(
        7,
        0,
        [(Key::new("asset"), SeqNo::new(0, 1))],
        [(Key::new("asset"), Value::from_i64(1))],
    );

    // Plaintext submission: the fabricated conflicting transaction is sequenced first and the
    // victim closes an unreorderable cycle, so FabricSharp aborts it.
    let mut attacker = FrontRunningLeader::new(Key::new("asset"), |v: &Transaction| {
        let mut attack = v.clone();
        attack.id = TxnId(1_000_000 + v.id.0);
        attack
    });
    let order = attacker.propose_order(vec![ClientSubmission::Plain(victim.clone())]);
    let mut cc = FabricSharpCC::with_defaults();
    let mut decisions = Vec::new();
    for submission in order {
        let txn = submission
            .reveal()
            .expect("plaintext submissions always reveal");
        decisions.push((txn.id.0, cc.on_arrival(txn).is_accept()));
    }
    assert_eq!(decisions.len(), 2);
    assert!(decisions[0].1, "the front-running transaction is accepted");
    assert!(!decisions[1].1, "the victim is aborted by the attack");

    // Commitment submission: the leader sees only the hash, injects nothing, and the victim
    // commits. A post-ordering mutation of the sealed contents is detected.
    let mut blinded = FrontRunningLeader::new(Key::new("asset"), |v: &Transaction| v.clone());
    let order = blinded.propose_order(vec![ClientSubmission::committed(victim.clone())]);
    assert_eq!(order.len(), 1);
    assert_eq!(blinded.attacks_launched, 0);
    let mut cc = FabricSharpCC::with_defaults();
    let revealed = order.into_iter().next().unwrap().reveal().unwrap();
    assert!(cc.on_arrival(revealed).is_accept());

    let mut tampered = victim.clone();
    tampered
        .write_set
        .record(Key::new("asset"), Value::from_i64(999));
    let bad = ClientSubmission::Committed {
        commitment: commitment_of(&victim),
        sealed: tampered,
    };
    assert!(
        bad.reveal().is_err(),
        "a mutated reveal must not match its commitment"
    );
}
