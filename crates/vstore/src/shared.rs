//! Shared-store handles for the concurrent pipeline.
//!
//! The concurrent EOV pipeline (sharded endorsers, threaded committer) shares one state
//! backend between stages: endorser workers take the read lock and simulate against *pinned
//! block snapshots* while the single committer thread takes the write lock to install the next
//! block's versions. Because the store is multi-versioned and snapshot reads
//! ([`MultiVersionStore::read_at`]) only ever consult versions at or below the pinned block,
//! a simulation's result is unaffected by later versions being appended concurrently — which
//! is precisely the Section 4.2 argument for replacing vanilla Fabric's endorsement
//! read-write lock with storage snapshots.
//!
//! Since the key-space sharding refactor the shared handle wraps a [`StoreBackend`]: either
//! the unsharded [`MultiVersionStore`] or the partitioned [`crate::sharded::ShardedStore`].
//! Both expose the same [`StateRead`]/[`StateStore`] surface and, for the same writes, answer
//! every read identically, so the pipeline stages are oblivious to which backend runs below
//! them (asserted end-to-end by `tests/sharding_determinism.rs`).
//!
//! This module is the concurrency-audit companion to [`crate::snapshot`]: it pins down, at
//! compile time, that every substrate type crossing a stage boundary is `Send + Sync`, and its
//! tests hammer the snapshot manager and a shared store from multiple threads.

use crate::mvstore::{MultiVersionStore, VersionedValue};
use crate::sharded::ShardedStore;
use crate::state::{StateRead, StateStore};
use eov_common::error::Result;
use eov_common::rwset::{Key, Value};
use eov_common::version::SeqNo;
use parking_lot::RwLock;
use std::sync::Arc;

/// The state backend behind the shared handle: one global store, or `S` key-space shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreBackend {
    /// The unsharded reference store.
    Unsharded(MultiVersionStore),
    /// The key-space partitioned store.
    Sharded(ShardedStore),
}

impl StoreBackend {
    /// Builds the backend for a `store_shards` knob value: `0` = unsharded reference,
    /// `S >= 1` = `S` hash-partitioned shards.
    pub fn for_shards(store_shards: usize) -> Self {
        if store_shards == 0 {
            StoreBackend::Unsharded(MultiVersionStore::new())
        } else {
            StoreBackend::Sharded(ShardedStore::with_hash_shards(store_shards))
        }
    }

    /// Number of key-space shards (1 for the unsharded backend).
    pub fn shard_count(&self) -> usize {
        match self {
            StoreBackend::Unsharded(_) => 1,
            StoreBackend::Sharded(s) => s.shard_count(),
        }
    }

    /// Full version history of `key` (oldest first), whichever backend holds it.
    pub fn history(&self, key: &Key) -> &[VersionedValue] {
        match self {
            StoreBackend::Unsharded(s) => s.history(key),
            StoreBackend::Sharded(s) => s.history(key),
        }
    }

    /// The lowest block height whose snapshot is still readable.
    pub fn pruned_below(&self) -> u64 {
        match self {
            StoreBackend::Unsharded(s) => s.pruned_below(),
            StoreBackend::Sharded(s) => s.pruned_below(),
        }
    }
}

impl StateRead for StoreBackend {
    fn read_at(&self, key: &Key, block: u64) -> Result<Option<&VersionedValue>> {
        match self {
            StoreBackend::Unsharded(s) => s.read_at(key, block),
            StoreBackend::Sharded(s) => StateRead::read_at(s, key, block),
        }
    }

    fn latest(&self, key: &Key) -> Option<&VersionedValue> {
        match self {
            StoreBackend::Unsharded(s) => s.latest(key),
            StoreBackend::Sharded(s) => StateRead::latest(s, key),
        }
    }

    fn last_block(&self) -> u64 {
        match self {
            StoreBackend::Unsharded(s) => s.last_block(),
            StoreBackend::Sharded(s) => StateRead::last_block(s),
        }
    }
}

impl StateStore for StoreBackend {
    fn put(&mut self, key: Key, version: SeqNo, value: Value) {
        match self {
            StoreBackend::Unsharded(s) => s.put(key, version, value),
            StoreBackend::Sharded(s) => StateStore::put(s, key, version, value),
        }
    }

    fn commit_empty_block(&mut self, block_no: u64) {
        match self {
            StoreBackend::Unsharded(s) => s.commit_empty_block(block_no),
            StoreBackend::Sharded(s) => StateStore::commit_empty_block(s, block_no),
        }
    }

    fn prune_versions_below(&mut self, block: u64) {
        match self {
            StoreBackend::Unsharded(s) => s.prune_versions_below(block),
            StoreBackend::Sharded(s) => StateStore::prune_versions_below(s, block),
        }
    }

    fn key_count(&self) -> usize {
        match self {
            StoreBackend::Unsharded(s) => s.key_count(),
            StoreBackend::Sharded(s) => StateStore::key_count(s),
        }
    }

    fn version_count(&self) -> usize {
        match self {
            StoreBackend::Unsharded(s) => s.version_count(),
            StoreBackend::Sharded(s) => StateStore::version_count(s),
        }
    }
}

/// A state backend shared between pipeline stages: endorser shards read (snapshot reads at
/// pinned heights), the committer writes (appends the next block's versions).
pub type SharedStore = Arc<RwLock<StoreBackend>>;

/// Wraps an unsharded store for sharing across pipeline stages.
pub fn into_shared(store: MultiVersionStore) -> SharedStore {
    into_shared_backend(StoreBackend::Unsharded(store))
}

/// Wraps any backend (unsharded or key-space sharded) for sharing across pipeline stages.
pub fn into_shared_backend(store: StoreBackend) -> SharedStore {
    Arc::new(RwLock::new(store))
}

/// Compile-time audit: every substrate type handed across pipeline stage boundaries must be
/// shareable between threads. A regression here (e.g. an `Rc` or a raw pointer sneaking into
/// the store) fails the build, not a stress test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MultiVersionStore>();
    assert_send_sync::<ShardedStore>();
    assert_send_sync::<StoreBackend>();
    assert_send_sync::<SharedStore>();
    assert_send_sync::<crate::snapshot::SnapshotManager>();
    assert_send_sync::<crate::index::CommittedWriteIndex>();
    assert_send_sync::<crate::index::CommittedReadIndex>();
    assert_send_sync::<crate::pending::PendingIndex>();
    assert_send_sync::<crate::sharded::ShardedIndices>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotManager;
    use eov_common::txn::{Transaction, TxnId};
    use std::thread;

    /// Concurrent snapshot reads against a store that a committer thread keeps appending to:
    /// every read at a pinned height must see exactly the value that height had when it was
    /// pinned, regardless of how many blocks land concurrently. Exercised against both
    /// backends — the MVCC stability argument must hold per shard too.
    #[test]
    fn snapshot_reads_are_stable_under_concurrent_commits() {
        for backend in [StoreBackend::for_shards(0), StoreBackend::for_shards(3)] {
            let store = into_shared_backend(backend);
            store
                .write()
                .seed_genesis([(Key::new("A"), Value::from_i64(0))]);

            let committer = {
                let store = Arc::clone(&store);
                thread::spawn(move || {
                    for block in 1..=50u64 {
                        let txn = Transaction::new(
                            TxnId(block),
                            block - 1,
                            eov_common::rwset::ReadSet::new(),
                            {
                                let mut ws = eov_common::rwset::WriteSet::new();
                                ws.record(Key::new("A"), Value::from_i64(block as i64));
                                ws
                            },
                        );
                        store.write().apply_block(block, [(&txn, 1)]);
                    }
                })
            };

            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let store = Arc::clone(&store);
                    thread::spawn(move || {
                        for _ in 0..200 {
                            let guard = store.read();
                            let pinned = guard.last_block();
                            let v = guard
                                .read_at(&Key::new("A"), pinned)
                                .expect("never pruned")
                                .map(|vv| vv.value.as_i64().unwrap())
                                .unwrap_or(0);
                            // The value at height `pinned` is by construction the block number
                            // that wrote it (0 at genesis).
                            assert_eq!(v, pinned as i64);
                        }
                    })
                })
                .collect();

            committer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
            assert_eq!(store.read().last_block(), 50);
        }
    }

    /// The snapshot manager's pin/unpin/register/prune surface is exercised from many threads
    /// at once; afterwards no pins may leak and the pruning floor must respect every pin that
    /// was active when it was computed.
    #[test]
    fn snapshot_manager_survives_concurrent_pin_churn() {
        let mgr = SnapshotManager::new();
        let register = {
            let mgr = mgr.clone();
            thread::spawn(move || {
                for block in 1..=100u64 {
                    mgr.register_block(block);
                }
            })
        };
        let pinners: Vec<_> = (0..4)
            .map(|_| {
                let mgr = mgr.clone();
                thread::spawn(move || {
                    for _ in 0..200 {
                        let block = mgr.pin_latest();
                        assert!(mgr.pin_count(block) >= 1);
                        mgr.unpin(block);
                    }
                })
            })
            .collect();
        register.join().unwrap();
        for p in pinners {
            p.join().unwrap();
        }
        // All pins released: pruning can advance to the horizon.
        assert_eq!(mgr.latest(), 100);
        assert_eq!(mgr.prune_below(90), 90);
        for block in 0..100u64 {
            assert_eq!(mgr.pin_count(block), 0, "leaked pin on block {block}");
        }
    }
}
