//! Offline shim for the subset of `crossbeam` used by this workspace:
//! `channel::{unbounded, Sender, Receiver}`. Like the upstream crate (and
//! unlike `std::sync::mpsc`), both endpoints are `Clone + Send + Sync`, which
//! the consensus log relies on to hand producer handles to orderer threads and
//! the pipeline stage executor relies on for its sharded worker pools.
//!
//! [`Receiver::recv`] blocks (condvar, no spinning) until a message arrives or
//! every sender has been dropped, which is what lets pipeline workers park
//! between jobs and shut down cleanly when the driver drops its job senders.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        items: VecDeque<T>,
        /// Live [`Sender`] handles; when this reaches zero the channel is disconnected and
        /// blocked receivers wake up with [`RecvError`].
        senders: usize,
    }

    struct Queue<T> {
        state: Mutex<State<T>>,
        available: Condvar,
    }

    impl<T> Queue<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let queue = Arc::new(Queue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                queue: Arc::clone(&queue),
            },
            Receiver { queue },
        )
    }

    /// The sending half; cloneable across threads.
    pub struct Sender<T> {
        queue: Arc<Queue<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueues a message. Never fails: the queue lives as long as any endpoint.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.queue.lock().items.push_back(value);
            self.queue.available.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.queue.lock().senders += 1;
            Sender {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.queue.lock();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.queue.available.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    /// The receiving half; cloneable, with clones competing for messages.
    pub struct Receiver<T> {
        queue: Arc<Queue<T>>,
    }

    impl<T> Receiver<T> {
        /// Dequeues the oldest message, or reports the channel empty / disconnected.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.queue.lock();
            match state.items.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message is available and dequeues it. Returns [`RecvError`] once the
        /// channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.queue.lock();
            loop {
                if let Some(value) = state.items.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .queue
                    .available
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.queue.lock().items.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error type for [`Sender::send`]; never actually produced by this shim.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error type for [`Receiver::recv`]: every sender was dropped and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error type for [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message was queued at the time of the call.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};

    #[test]
    fn fifo_order_across_cloned_senders() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn senders_work_from_multiple_threads() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut received = 0;
        while rx.try_recv().is_ok() {
            received += 1;
        }
        assert_eq!(received, 400);
    }

    #[test]
    fn recv_blocks_until_a_message_arrives() {
        let (tx, rx) = unbounded();
        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(7u64).unwrap();
        });
        // The consumer parks until the producer wakes it.
        assert_eq!(rx.recv(), Ok(7));
        producer.join().unwrap();
    }

    #[test]
    fn recv_reports_disconnect_after_queue_drains() {
        let (tx, rx) = unbounded();
        tx.send(1u64).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn cloned_senders_keep_the_channel_connected() {
        let (tx, rx) = unbounded::<u64>();
        let tx2 = tx.clone();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn blocked_receivers_wake_on_disconnect() {
        let (tx, rx) = unbounded::<u64>();
        let consumer = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(consumer.join().unwrap(), Err(RecvError));
    }
}
