//! Table 1 — the Figure 2a worked example: commit status of Txn2–Txn5 under Fabric and
//! Fabric++ (and, for completeness, the other three systems).
//!
//! ```text
//! cargo run --release -p eov-bench --bin table1_example
//! ```

use eov_baselines::api::{mvcc_validate_and_apply, SystemKind};
use eov_common::config::CcConfig;
use eov_common::rwset::{Key, Value};
use eov_common::txn::{Transaction, TxnStatus};
use eov_common::version::SeqNo;
use fabricsharp_core::theory::figure2a_fixture;

fn main() {
    println!("Table 1: commit status of Txn2..Txn5 from Figure 2a (X = commit, x = abort)\n");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "System", "Txn2", "Txn3", "Txn4", "Txn5"
    );

    for system in SystemKind::all() {
        let (store, txns) = figure2a_fixture();
        let mut cc = system.build(CcConfig::default());

        // Teach the controller about the block-2 writer so dependency analysis sees the
        // committed state of Figure 2a (the paper's orderers observed blocks 1 and 2 live).
        let mut block2_writer = Transaction::from_parts(
            90,
            1,
            [],
            [
                (Key::new("B"), Value::from_i64(201)),
                (Key::new("C"), Value::from_i64(201)),
            ],
        );
        block2_writer.end_ts = Some(SeqNo::new(2, 1));
        cc.on_block_committed(2, &[(block2_writer, TxnStatus::Committed)]);

        let mut committed_ids: Vec<u64> = Vec::new();
        for txn in txns {
            if !cc.on_endorsement(&txn, store.last_block()).is_accept() {
                continue;
            }
            let _ = cc.on_arrival(txn);
        }
        let block = cc.cut_block();
        let mut store = store;
        let statuses = if cc.needs_peer_validation() {
            mvcc_validate_and_apply(&mut store, 3, &block)
        } else {
            block.iter().map(|_| TxnStatus::Committed).collect()
        };
        for (txn, status) in block.iter().zip(statuses) {
            if status.is_committed() {
                committed_ids.push(txn.id.0);
            }
        }

        let cell = |id: u64| {
            if committed_ids.contains(&id) {
                "X"
            } else {
                "x"
            }
        };
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8}",
            system.label(),
            cell(2),
            cell(3),
            cell(4),
            cell(5)
        );
    }

    println!("\nPaper's Table 1:");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "Fabric", "x", "X", "x", "x"
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "Fabric++", "x", "x", "X", "X"
    );
    println!(
        "\n(The paper does not tabulate Fabric#/Focc-s/Focc-l on this example; they are shown"
    );
    println!(
        " here for completeness. Fabric# commits two transactions, like Fabric++, but drops the"
    );
    println!(" unserializable ones before they occupy block slots.)");
}
