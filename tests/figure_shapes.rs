//! Shape tests for the paper's headline results, run on short simulations so they stay fast
//! enough for the regular test suite. Absolute numbers are calibration-dependent; these tests
//! assert the *relative* claims the paper makes (who wins, what collapses, what grows), using
//! deliberately loose margins so they are not flaky.

use fabricsharp::prelude::*;

fn quick(system: SystemKind, workload: WorkloadKind) -> SimulationConfig {
    let mut config = SimulationConfig::new(system, workload);
    config.duration_s = 4.0;
    config.params.num_accounts = 2_000;
    config.params.request_rate_tps = 500;
    config.block.max_txns_per_block = 80;
    config
}

#[test]
fn figure1_shape_raw_is_flat_while_effective_drops_with_skew() {
    let low = Simulator::run(&quick(
        SystemKind::Fabric,
        WorkloadKind::KvUpdate { theta: 0.2 },
    ));
    let high = Simulator::run(&quick(
        SystemKind::Fabric,
        WorkloadKind::KvUpdate { theta: 1.2 },
    ));
    // Raw throughput barely moves...
    let raw_ratio = high.raw_tps() / low.raw_tps();
    assert!(
        (0.8..1.2).contains(&raw_ratio),
        "raw throughput should be flat, ratio {raw_ratio:.2}"
    );
    // ...while effective throughput drops markedly under heavy skew.
    assert!(
        high.effective_tps() < 0.8 * low.effective_tps(),
        "effective throughput should collapse with skew: {:.0} vs {:.0}",
        high.effective_tps(),
        low.effective_tps()
    );
    assert!(high.aborted() > low.aborted());
}

#[test]
fn figure10_shape_fabricsharp_leads_at_the_default_block_size() {
    let reports =
        Simulator::run_all_systems(&quick(SystemKind::Fabric, WorkloadKind::ModifiedSmallbank));
    let effective: Vec<(SystemKind, f64)> = reports
        .iter()
        .map(|r| (r.system, r.effective_tps()))
        .collect();
    let sharp = effective
        .iter()
        .find(|(s, _)| *s == SystemKind::FabricSharp)
        .expect("FabricSharp report")
        .1;
    for (system, tps) in &effective {
        if *system != SystemKind::FabricSharp {
            assert!(
                sharp >= *tps * 0.95,
                "Fabric# ({sharp:.0} tps) should not trail {system} ({tps:.0} tps)"
            );
        }
    }
}

#[test]
fn figure11_shape_focc_s_collapses_under_write_hot_contention() {
    let mut hot = quick(SystemKind::FoccS, WorkloadKind::ModifiedSmallbank);
    hot.params.write_hot_ratio = 0.5;
    let focc_s_hot = Simulator::run(&hot);

    let mut sharp_cfg = quick(SystemKind::FabricSharp, WorkloadKind::ModifiedSmallbank);
    sharp_cfg.params.write_hot_ratio = 0.5;
    let sharp_hot = Simulator::run(&sharp_cfg);

    assert!(
        sharp_hot.effective_tps() > 2.0 * focc_s_hot.effective_tps(),
        "under 50% write-hot contention Fabric# ({:.0}) should far exceed Focc-s ({:.0})",
        sharp_hot.effective_tps(),
        focc_s_hot.effective_tps()
    );
    // The collapse is attributable to concurrent write-write aborts.
    assert!(focc_s_hot.aborts_for(AbortReason::ConcurrentWriteWrite) > 0);
}

#[test]
fn figure13_shape_client_delay_grows_block_span_and_hops() {
    let no_delay = Simulator::run(&quick(
        SystemKind::FabricSharp,
        WorkloadKind::ModifiedSmallbank,
    ));
    let mut delayed_cfg = quick(SystemKind::FabricSharp, WorkloadKind::ModifiedSmallbank);
    delayed_cfg.params.client_delay_ms = 400;
    let delayed = Simulator::run(&delayed_cfg);

    assert!(
        delayed.avg_block_span > no_delay.avg_block_span,
        "client delay must widen the block span"
    );
    assert!(
        delayed.avg_hops >= no_delay.avg_hops,
        "more concurrency must not reduce graph traversal"
    );
    assert!(delayed.effective_tps() <= no_delay.effective_tps() * 1.05);
}

#[test]
fn figure14_shape_long_simulations_hurt_fabric_and_fabricpp_most() {
    let mut base = quick(SystemKind::Fabric, WorkloadKind::ModifiedSmallbank);
    base.params.read_interval_ms = 120;
    let reports = Simulator::run_all_systems(&base);
    let get = |kind: SystemKind| {
        reports
            .iter()
            .find(|r| r.system == kind)
            .expect("report present")
    };
    let fabric = get(SystemKind::Fabric);
    let fabricpp = get(SystemKind::FabricPlusPlus);
    let sharp = get(SystemKind::FabricSharp);

    // The vanilla lock and Fabric++'s cross-block aborts both hurt badly; FabricSharp does not.
    assert!(sharp.effective_tps() > 1.5 * fabric.effective_tps());
    assert!(sharp.effective_tps() > 1.5 * fabricpp.effective_tps());
    // Fabric++'s losses are dominated by simulation aborts.
    assert!(fabricpp.aborts_for(AbortReason::CrossBlockRead) > 0);
}

#[test]
fn figure15_shape_fastfabric_sharp_gains_grow_with_skew() {
    let run = |system: SystemKind, theta: f64| {
        let mut config =
            SimulationConfig::fast_fabric(system, WorkloadKind::MixedSmallbank { theta });
        config.duration_s = 4.0;
        config.params.num_accounts = 2_000;
        config.params.request_rate_tps = 2_500;
        config.block.max_txns_per_block = 150;
        Simulator::run(&config)
    };
    let gain = |theta: f64| {
        let ff = run(SystemKind::Fabric, theta);
        let sharp = run(SystemKind::FabricSharp, theta);
        sharp.effective_tps() / ff.effective_tps()
    };
    let low = gain(0.0);
    let high = gain(1.0);
    assert!(
        high > low,
        "the FastFabric# advantage must grow with skew ({low:.2} -> {high:.2})"
    );
    assert!(
        high > 1.05,
        "at θ=1 the advantage should be clearly visible, got {high:.2}"
    );

    // Contention-free Create-Account: the reordering overhead must be small (<10%).
    let ff_create = run(SystemKind::Fabric, 0.0);
    let mut create_cfg =
        SimulationConfig::fast_fabric(SystemKind::FabricSharp, WorkloadKind::CreateAccount);
    create_cfg.duration_s = 4.0;
    create_cfg.params.num_accounts = 2_000;
    create_cfg.params.request_rate_tps = 2_500;
    create_cfg.block.max_txns_per_block = 150;
    let sharp_create = Simulator::run(&create_cfg);
    assert!(sharp_create.effective_tps() > 0.9 * ff_create.effective_tps());
    assert_eq!(
        sharp_create.aborted(),
        0,
        "Create Account transactions never conflict"
    );
}
