//! Figure 15 — FastFabric vs FastFabricSharp: effective throughput on the contention-free
//! Create-Account workload and on the original Smallbank mix with Zipfian skew θ ∈ {0 … 1},
//! with the share of commits that tolerate an anti-rw dependency highlighted.
//!
//! ```text
//! cargo run --release -p eov-bench --bin fig15_fastfabric
//! ```

use eov_baselines::api::SystemKind;
use eov_bench::{banner, run_one};
use eov_common::config::ExperimentGrid;
use eov_sim::SimulationConfig;
use eov_workload::generator::WorkloadKind;

fn fast_config(system: SystemKind, workload: WorkloadKind) -> SimulationConfig {
    let mut config = SimulationConfig::fast_fabric(system, workload);
    // FastFabric is driven well past Fabric's 700 tps; the paper reports ≈3100 tps raw.
    config.params.request_rate_tps = 3_500;
    config.block.max_txns_per_block = 200;
    config
}

fn main() {
    banner(
        "Figure 15",
        "FastFabric vs FastFabric# effective throughput (Create Account + mixed Smallbank)",
    );
    println!(
        "{:<26} {:>14} {:>16} {:>20}",
        "workload", "FastFabric", "FastFabric#", "Fabric# anti-rw commits"
    );

    // Contention-free Create-Account workload: the reordering overhead is the only difference.
    let base_ff = run_one(fast_config(SystemKind::Fabric, WorkloadKind::CreateAccount));
    let base_sharp = run_one(fast_config(
        SystemKind::FabricSharp,
        WorkloadKind::CreateAccount,
    ));
    println!(
        "{:<26} {:>14.0} {:>16.0} {:>20}",
        "Create Account",
        base_ff.effective_tps(),
        base_sharp.effective_tps(),
        base_sharp.committed_with_anti_rw
    );

    // Mixed Smallbank with increasing Zipfian skew.
    for &theta in &ExperimentGrid::default().figure15_thetas {
        let workload = WorkloadKind::MixedSmallbank { theta };
        let ff = run_one(fast_config(SystemKind::Fabric, workload.clone()));
        let sharp = run_one(fast_config(SystemKind::FabricSharp, workload));
        println!(
            "{:<26} {:>14.0} {:>16.0} {:>20}",
            format!("Mixed Smallbank, θ={theta}"),
            ff.effective_tps(),
            sharp.effective_tps(),
            sharp.committed_with_anti_rw
        );
    }

    println!(
        "\nPaper's shape: on Create Account FastFabric# pays <5% overhead (2960 vs 3114 tps);\n\
         under the mixed workload the gap grows with skew and FastFabric# reaches up to 66% more\n\
         effective throughput at θ=1, most of the gain coming from serialized transactions with\n\
         anti-rw dependencies that FastFabric would have aborted."
    );
}
