//! `SimpleChain`: a single-process EOV blockchain for examples, doctests and integration tests.
//!
//! The full discrete-event simulator in `eov-sim` models time, request rates and pipeline
//! bottlenecks; `SimpleChain` strips all of that away and exposes the bare workflow —
//! *execute* (simulate a contract against the latest snapshot), *order* (submit to the chosen
//! concurrency control), *validate* (seal a block, validate if the system requires it, commit
//! the writes, append to the hash-chained ledger). It is the quickest way to see any of the
//! five systems make commit/abort decisions on a concrete scenario.

use crate::api::{
    apply_without_validation, mvcc_validate_and_apply, ConcurrencyControl, SystemKind,
};
use eov_common::abort::AbortReason;
use eov_common::config::CcConfig;
use eov_common::rwset::{Key, Value};
use eov_common::txn::{CommitDecision, Transaction, TxnId, TxnStatus};
use eov_ledger::{Block, Ledger};
use eov_vstore::{into_shared_backend, SnapshotManager, StateRead, StateStore, StoreBackend};
use fabricsharp_core::endorser::{SimulationContext, SnapshotEndorser};
use fabricsharp_core::scheduler::{CommitScheduler, WaveStats};
use std::sync::Arc;

/// Outcome of sealing one block.
#[derive(Clone, Debug, Default)]
pub struct BlockReport {
    /// Height of the block that was appended, or `None` if nothing was pending (or everything
    /// was dropped before block formation).
    pub block_number: Option<u64>,
    /// Transactions that committed (passed validation, writes applied).
    pub committed: Vec<TxnId>,
    /// Transactions that were included in the block but aborted during validation.
    pub aborted: Vec<(TxnId, AbortReason)>,
}

/// A single-node EOV blockchain driven synchronously.
pub struct SimpleChain {
    kind: SystemKind,
    store: StoreBackend,
    ledger: Ledger,
    endorser: SnapshotEndorser,
    cc: Box<dyn ConcurrencyControl>,
    /// The parallel commit scheduler (`execution_threads == 0` leaves commits on the classic
    /// inline path; `E >= 1` routes every sealed block through wave execution).
    scheduler: CommitScheduler,
    next_txn_id: u64,
    /// Every transaction that ever committed, in commit order (for serializability checks).
    committed_history: Vec<Transaction>,
    /// Early aborts observed at submission time (endorsement or arrival), by transaction.
    early_aborted: Vec<(TxnId, AbortReason)>,
}

impl SimpleChain {
    /// Creates a chain running the given system with default concurrency-control settings.
    pub fn new(kind: SystemKind) -> Self {
        Self::with_cc_config(kind, CcConfig::default())
    }

    /// Creates a chain whose state store, indices and dependency graph are partitioned across
    /// `store_shards` key-space shards (`0` = the unsharded reference). Ledger outcomes are
    /// bit-identical for every shard count; the knob exists so tests and benches can exercise
    /// the sharded engine through the same facade.
    pub fn with_store_shards(kind: SystemKind, store_shards: usize) -> Self {
        Self::with_cc_config(
            kind,
            CcConfig {
                store_shards,
                ..CcConfig::default()
            },
        )
    }

    /// Creates a sharded chain whose per-shard graph formation and arrival work fans out
    /// across `formation_threads` worker threads (`0` = inline). Ledger outcomes are
    /// bit-identical for every thread count.
    pub fn with_sharded_formation(
        kind: SystemKind,
        store_shards: usize,
        formation_threads: usize,
    ) -> Self {
        Self::with_cc_config(
            kind,
            CcConfig {
                store_shards,
                formation_threads,
                ..CcConfig::default()
            },
        )
    }

    /// Creates a chain with the template fast path toggled (`store_shards` selects the
    /// engine as in [`SimpleChain::with_store_shards`]). With the knob on, transactions
    /// tagged [`eov_common::txn::TemplateClass::Safe`] bypass the dependency graph; ledger
    /// outcomes stay bit-identical to the knob-off reference.
    pub fn with_template_fastpath(kind: SystemKind, store_shards: usize, enabled: bool) -> Self {
        Self::with_cc_config(
            kind,
            CcConfig {
                store_shards,
                template_fastpath: enabled,
                ..CcConfig::default()
            },
        )
    }

    /// Creates a chain with pipelined block formation toggled (`store_shards` selects the
    /// engine as in [`SimpleChain::with_store_shards`]). The synchronous facade has no work
    /// to overlap with formation, so `seal_block` seals and immediately joins the formation
    /// worker; ledger outcomes stay bit-identical to the knob-off reference.
    pub fn with_pipelined_formation(kind: SystemKind, store_shards: usize, enabled: bool) -> Self {
        Self::with_cc_config(
            kind,
            CcConfig {
                store_shards,
                pipelined_formation: enabled,
                ..CcConfig::default()
            },
        )
    }

    /// Creates a chain committing sealed blocks through the parallel wave scheduler with
    /// `execution_threads` workers (`0` = the classic inline commit; `store_shards` selects
    /// the backend as in [`SimpleChain::with_store_shards`]). Ledger and store outcomes are
    /// bit-identical at every thread count.
    pub fn with_execution_threads(
        kind: SystemKind,
        store_shards: usize,
        execution_threads: usize,
    ) -> Self {
        Self::with_cc_config(
            kind,
            CcConfig {
                store_shards,
                execution_threads,
                ..CcConfig::default()
            },
        )
    }

    /// Creates a chain with an explicit concurrency-control configuration
    /// (`cc_config.store_shards` also selects the state-store backend;
    /// `cc_config.execution_threads` sizes the parallel commit scheduler).
    pub fn with_cc_config(kind: SystemKind, cc_config: CcConfig) -> Self {
        let snapshots = SnapshotManager::new();
        SimpleChain {
            kind,
            store: StoreBackend::for_shards(cc_config.store_shards),
            ledger: Ledger::new(),
            endorser: SnapshotEndorser::new(snapshots),
            scheduler: CommitScheduler::new(cc_config.execution_threads),
            cc: kind.build(cc_config),
            next_txn_id: 1,
            committed_history: Vec::new(),
            early_aborted: Vec::new(),
        }
    }

    /// Which system this chain runs.
    pub fn kind(&self) -> SystemKind {
        self.kind
    }

    /// Seeds the genesis state (block 0).
    pub fn seed(&mut self, entries: impl IntoIterator<Item = (Key, Value)>) {
        self.store.seed_genesis(entries);
        self.endorser.snapshots().register_block(0);
    }

    /// Execute phase: simulates `logic` against the latest snapshot and returns the endorsed
    /// transaction (not yet submitted).
    pub fn execute<F>(&mut self, logic: F) -> Transaction
    where
        F: FnOnce(&mut SimulationContext<'_>),
    {
        let id = TxnId(self.next_txn_id);
        self.next_txn_id += 1;
        self.endorser.simulate(&self.store, id, logic)
    }

    /// Execute phase against an explicit (possibly stale) snapshot — used to reproduce the
    /// paper's cross-block-read scenarios.
    pub fn execute_at<F>(&mut self, snapshot_block: u64, logic: F) -> Transaction
    where
        F: FnOnce(&mut SimulationContext<'_>),
    {
        let id = TxnId(self.next_txn_id);
        self.next_txn_id += 1;
        self.endorser
            .simulate_at(&self.store, id, snapshot_block, logic)
    }

    /// Order phase: submits an endorsed transaction to the system's concurrency control.
    /// Returns the early decision (endorsement-time or arrival-time abort, if any).
    pub fn submit(&mut self, txn: Transaction) -> CommitDecision {
        let id = txn.id;
        let endorse = self.cc.on_endorsement(&txn, self.store.last_block());
        if let CommitDecision::Reject(reason) = endorse {
            self.early_aborted.push((id, reason));
            return endorse;
        }
        let arrival = self.cc.on_arrival(txn);
        if let CommitDecision::Reject(reason) = arrival {
            self.early_aborted.push((id, reason));
        }
        arrival
    }

    /// Convenience: execute and submit in one call, returning the transaction id and decision.
    pub fn execute_and_submit<F>(&mut self, logic: F) -> (TxnId, CommitDecision)
    where
        F: FnOnce(&mut SimulationContext<'_>),
    {
        let txn = self.execute(logic);
        let id = txn.id;
        (id, self.submit(txn))
    }

    /// Validate phase: cuts a block from everything pending, validates it if the system
    /// requires peer validation, applies the committed writes, and appends the block to the
    /// hash-chained ledger.
    pub fn seal_block(&mut self) -> BlockReport {
        let ordered = self.cc.cut_block();
        if ordered.is_empty() {
            return BlockReport::default();
        }
        let block_no = self.ledger.height() + 1;
        let needs_validation = self.cc.needs_peer_validation();

        let statuses = if self.scheduler.threads() == 0 {
            if needs_validation {
                mvcc_validate_and_apply(&mut self.store, block_no, &ordered)
            } else {
                apply_without_validation(&mut self.store, block_no, &ordered)
            }
        } else {
            // Route the block through the wave scheduler: temporarily wrap the owned backend
            // in the shared handle the scheduler's workers need, then take it back. No other
            // handle survives the call, so the unwrap cannot fail.
            let backend = std::mem::replace(&mut self.store, StoreBackend::for_shards(0));
            let shared = into_shared_backend(backend);
            let txns = Arc::new(ordered.clone());
            let outcome = self
                .scheduler
                .commit_block(&shared, block_no, &txns, needs_validation);
            self.store = Arc::try_unwrap(shared)
                .expect("scheduler released every store handle")
                .into_inner();
            outcome.statuses
        };

        let mut block = Block::build(block_no, self.ledger.tip_hash(), ordered.clone());
        let mut report = BlockReport {
            block_number: Some(block_no),
            ..BlockReport::default()
        };
        let mut outcome: Vec<(Transaction, TxnStatus)> = Vec::with_capacity(ordered.len());
        for (entry, status) in block.entries.iter_mut().zip(statuses) {
            entry.status = status;
            match status {
                TxnStatus::Committed => {
                    report.committed.push(entry.txn.id);
                    self.committed_history.push(entry.txn.clone());
                }
                TxnStatus::Aborted(reason) => report.aborted.push((entry.txn.id, reason)),
                TxnStatus::Pending => unreachable!("validation assigns a final status"),
            }
            outcome.push((entry.txn.clone(), status));
        }
        self.ledger
            .append(block)
            .expect("locally built blocks always chain correctly");
        self.endorser.snapshots().register_block(block_no);
        self.cc.on_block_committed(block_no, &outcome);
        report
    }

    /// The latest committed value of `key`, if any.
    pub fn latest(&self, key: &Key) -> Option<Value> {
        self.store.latest_value(key).cloned()
    }

    /// The underlying hash-chained ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The underlying state store backend.
    pub fn store(&self) -> &StoreBackend {
        &self.store
    }

    /// The concurrency control driving this chain (for stats inspection).
    pub fn cc(&self) -> &dyn ConcurrencyControl {
        self.cc.as_ref()
    }

    /// Every committed transaction so far, in commit order.
    pub fn committed_history(&self) -> &[Transaction] {
        &self.committed_history
    }

    /// Early aborts recorded at submission time (endorsement or arrival).
    pub fn early_aborted(&self) -> &[(TxnId, AbortReason)] {
        &self.early_aborted
    }

    /// Cumulative wave statistics of the parallel commit scheduler (all zero when
    /// `execution_threads == 0`).
    pub fn wave_stats(&self) -> WaveStats {
        self.scheduler.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fabricsharp_core::serializability::is_serializable;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn transfer_chain(kind: SystemKind) -> SimpleChain {
        let mut chain = SimpleChain::new(kind);
        chain.seed([
            (k("alice"), Value::from_i64(100)),
            (k("bob"), Value::from_i64(50)),
        ]);
        chain
    }

    #[test]
    fn quickstart_flow_commits_a_transfer() {
        for kind in SystemKind::all() {
            let mut chain = transfer_chain(kind);
            let alice = k("alice");
            let bob = k("bob");
            let txn = chain.execute(|ctx| {
                let a = ctx.read_balance(&alice);
                let b = ctx.read_balance(&bob);
                ctx.write(alice.clone(), Value::from_i64(a - 10));
                ctx.write(bob.clone(), Value::from_i64(b + 10));
            });
            assert!(chain.submit(txn).is_accept(), "{kind}: submission failed");
            let report = chain.seal_block();
            assert_eq!(report.block_number, Some(1), "{kind}");
            assert_eq!(report.committed.len(), 1, "{kind}");
            assert_eq!(chain.latest(&bob).unwrap().as_i64(), Some(60), "{kind}");
            assert!(chain.ledger().verify_integrity().is_ok(), "{kind}");
        }
    }

    #[test]
    fn conflicting_updates_in_one_block_differ_by_system() {
        // Two transfers read the same snapshot and both debit alice. Fabric aborts the second
        // at validation; FabricSharp commits both because the second's read of alice is what
        // creates a c-ww + rw pattern that reordering can serialize... in fact with identical
        // read/write sets the two transactions form an unreorderable rw cycle, so FabricSharp
        // early-aborts one instead of wasting a block slot. Either way exactly one commits.
        for kind in [SystemKind::Fabric, SystemKind::FabricSharp] {
            let mut chain = transfer_chain(kind);
            let alice = k("alice");
            for _ in 0..2 {
                let txn = chain.execute(|ctx| {
                    let a = ctx.read_balance(&alice);
                    ctx.write(alice.clone(), Value::from_i64(a - 10));
                });
                let _ = chain.submit(txn);
            }
            let report = chain.seal_block();
            let early = chain.early_aborted().len();
            assert_eq!(
                report.committed.len() + report.aborted.len() + early,
                2,
                "{kind}: every submission is accounted for"
            );
            assert_eq!(
                report.committed.len(),
                1,
                "{kind}: exactly one debit commits"
            );
            assert_eq!(chain.latest(&alice).unwrap().as_i64(), Some(90), "{kind}");
        }
    }

    #[test]
    fn fabricsharp_commits_serializable_history_across_blocks() {
        let mut chain = transfer_chain(SystemKind::FabricSharp);
        let keys: Vec<Key> = (0..6).map(|i| k(&format!("acct{i}"))).collect();
        chain.seed(keys.iter().map(|key| (key.clone(), Value::from_i64(100))));

        for round in 0..5u64 {
            for i in 0..4usize {
                let from = keys[i].clone();
                let to = keys[(i + round as usize + 1) % keys.len()].clone();
                let txn = chain.execute(|ctx| {
                    let f = ctx.read_balance(&from);
                    let t = ctx.read_balance(&to);
                    ctx.write(from.clone(), Value::from_i64(f - 1));
                    ctx.write(to.clone(), Value::from_i64(t + 1));
                });
                let _ = chain.submit(txn);
            }
            chain.seal_block();
        }
        assert!(is_serializable(chain.committed_history()));
        assert!(chain.ledger().verify_integrity().is_ok());
        assert!(chain.ledger().committed_txn_count() > 0);
    }

    #[test]
    fn sealing_with_nothing_pending_is_a_noop() {
        let mut chain = transfer_chain(SystemKind::Fabric);
        let report = chain.seal_block();
        assert_eq!(report.block_number, None);
        assert_eq!(chain.ledger().height(), 0);
    }

    #[test]
    fn execute_at_reproduces_stale_snapshot_aborts_in_fabric() {
        let mut chain = transfer_chain(SystemKind::Fabric);
        let alice = k("alice");
        // Commit a block that bumps alice.
        let (_, d) = chain.execute_and_submit(|ctx| {
            let a = ctx.read_balance(&k("alice"));
            ctx.write(k("alice"), Value::from_i64(a + 1));
        });
        assert!(d.is_accept());
        chain.seal_block();

        // Now simulate against the stale genesis snapshot: Fabric's validation must abort it.
        let stale = chain.execute_at(0, |ctx| {
            let a = ctx.read_balance(&alice);
            ctx.write(alice.clone(), Value::from_i64(a + 1000));
        });
        assert!(chain.submit(stale).is_accept());
        let report = chain.seal_block();
        assert_eq!(report.committed.len(), 0);
        assert_eq!(report.aborted.len(), 1);
        assert_eq!(report.aborted[0].1, AbortReason::StaleRead);
    }
}
