//! The durable-substrate battery: segment persistence, crash damage, checkpoints, and the
//! time-travel/provenance surface — all against real workload-driven chains.
//!
//! Contracts pinned here:
//!
//! 1. a workload ledger persisted through [`DurableLedger`] reopens bit-identically (tip
//!    hash, per-transaction statuses);
//! 2. truncating the tail segment at *any* byte offset — a torn trailing write — recovers a
//!    valid prefix, never panics, and the reopened ledger resumes appending the missing
//!    blocks to bit-identity with the uninterrupted reference;
//! 3. a bit flip in an *earlier* segment is a typed [`LedgerError::CorruptRecord`], reported
//!    and never silently truncated;
//! 4. a corrupt newest checkpoint makes cold recovery fall back (older checkpoint or genesis
//!    + full replay) and still rebuild the exact store;
//! 5. `value_as_of` / `history_range` / `provenance` on the cold-recovered state match an
//!    oracle that replays the reference ledger block by block.

use fabricsharp::baselines::{SimpleChain, SystemKind};
use fabricsharp::common::config::{CcConfig, WorkloadParams};
use fabricsharp::common::rwset::Key;
use fabricsharp::core::recovery::recover_from_disk;
use fabricsharp::ledger::durable::{DurableLedger, DurableOptions};
use fabricsharp::ledger::{provenance, write_checkpoint, Ledger, LedgerError};
use fabricsharp::vstore::{StateRead, StateStore, StoreBackend, TimeTravel};
use fabricsharp::workload::generator::{WorkloadGenerator, WorkloadKind};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const NUM_ACCOUNTS: usize = 24;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "eov-dlt-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn workload(seed: u64) -> WorkloadGenerator {
    let params = WorkloadParams {
        num_accounts: NUM_ACCOUNTS,
        ..WorkloadParams::default()
    };
    WorkloadGenerator::new(WorkloadKind::MixedSmallbank { theta: 0.7 }, params, seed)
}

/// Replays the committed writes of `ledger` into a fresh genesis-seeded backend — the oracle
/// every recovered store is compared against.
fn replay_oracle(ledger: &Ledger, seed: u64, shards: usize, up_to: u64) -> StoreBackend {
    let mut store = StoreBackend::for_shards(shards);
    store.seed_genesis(workload(seed).genesis());
    for block in ledger.iter().take(up_to as usize) {
        let committed: Vec<_> = block.committed().collect();
        store.apply_block(block.number(), committed);
    }
    store
}

/// Drives a FabricSharp chain over the Smallbank mix, mirroring every sealed block into a
/// durable ledger under `dir` (small segments so rotation is exercised) with a genesis
/// checkpoint plus one every `ckpt_every` blocks. Returns the in-memory reference ledger.
fn build_and_persist(
    dir: &Path,
    seed: u64,
    num_txns: usize,
    block_size: usize,
    ckpt_every: u64,
    shards: usize,
) -> Ledger {
    let mut generator = workload(seed);
    let analyzer = generator.analyzer();
    let mut chain = SimpleChain::new(SystemKind::FabricSharp);
    chain.seed(generator.genesis());

    let options = DurableOptions {
        rotate_bytes: 512,
        fsync: false,
    };
    let (mut durable, _) = DurableLedger::open(dir, options).expect("fresh dir");
    let mut store = StoreBackend::for_shards(shards);
    store.seed_genesis(workload(seed).genesis());
    write_checkpoint(dir, &store, false).expect("genesis checkpoint");

    let seal = |chain: &mut SimpleChain, durable: &mut DurableLedger, store: &mut StoreBackend| {
        if let Some(height) = chain.seal_block().block_number {
            let block = chain.ledger().block(height).unwrap().clone();
            let committed: Vec<_> = block.committed().collect();
            store.apply_block(height, committed);
            durable.append(block).expect("mirror append");
            if ckpt_every > 0 && height % ckpt_every == 0 {
                write_checkpoint(dir, store, false).expect("periodic checkpoint");
            }
        }
    };
    for i in 0..num_txns {
        let template = generator.next_template();
        let class = analyzer.classify_instance(&template);
        let txn = chain
            .execute(|ctx| template.run(ctx))
            .with_template_class(class);
        let _ = chain.submit(txn);
        if (i + 1) % block_size == 0 {
            seal(&mut chain, &mut durable, &mut store);
        }
    }
    seal(&mut chain, &mut durable, &mut store);
    chain.ledger().clone()
}

/// The keys this workload ever touches: the seeded account keys.
fn account_keys(seed: u64) -> Vec<Key> {
    workload(seed)
        .genesis()
        .into_iter()
        .map(|(k, _)| k)
        .collect()
}

/// The provenance oracle: scan the ledger backwards for the last committed entry at or below
/// `height` that writes `key`.
fn provenance_oracle(ledger: &Ledger, key: &Key, height: u64) -> Option<(u64, u32)> {
    for block in ledger
        .iter()
        .take(height as usize)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        for entry in block.entries.iter().rev() {
            if entry.status.is_committed() && entry.txn.write_set.iter().any(|w| &w.key == key) {
                return Some((entry.txn.id.0, entry.slot.seq));
            }
        }
    }
    None
}

#[test]
fn persisted_workload_ledger_reopens_bit_identically() {
    let dir = temp_dir("reopen");
    let reference = build_and_persist(&dir, 7, 60, 5, 4, 0);
    assert!(reference.height() >= 4);

    let (durable, report) = DurableLedger::open(
        &dir,
        DurableOptions {
            rotate_bytes: 512,
            fsync: false,
        },
    )
    .expect("reopen");
    assert!(report.torn.is_none());
    assert!(report.segments >= 2, "512-byte rotation must have rotated");
    assert_eq!(durable.height(), reference.height());
    assert_eq!(durable.ledger().tip_hash(), reference.tip_hash());
    assert_eq!(durable.ledger().statuses(), reference.statuses());
    assert!(durable.ledger().verify_integrity().is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flip_in_an_earlier_segment_is_a_typed_error_not_a_panic() {
    let dir = temp_dir("bitflip");
    build_and_persist(&dir, 11, 60, 5, 0, 0);
    let mut segments: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "log"))
        .collect();
    segments.sort();
    assert!(segments.len() >= 2, "need a non-tail segment to corrupt");

    // Flip one payload byte in the middle of the FIRST segment: damage that cannot be a torn
    // trailing write and therefore must surface as CorruptRecord.
    let victim = &segments[0];
    let mut bytes = std::fs::read(victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(victim, &bytes).unwrap();

    let err = DurableLedger::open(&dir, DurableOptions::default()).unwrap_err();
    match err {
        LedgerError::CorruptRecord { segment, .. } => assert_eq!(&segment, victim),
        other => panic!("expected CorruptRecord, got {other}"),
    }
    // The typed error propagates through cold recovery too.
    let err = recover_from_disk(&dir, CcConfig::default()).unwrap_err();
    assert!(err.to_string().contains("corrupt record"), "{err}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupt_newest_checkpoint_falls_back_and_recovery_still_matches_the_oracle() {
    let dir = temp_dir("ckptfall");
    let reference = build_and_persist(&dir, 13, 60, 5, 3, 0);

    let mut checkpoints: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "bin"))
        .collect();
    checkpoints.sort();
    assert!(checkpoints.len() >= 2, "genesis + periodic checkpoints");
    // Corrupt the newest checkpoint's payload.
    let newest = checkpoints.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    let last = bytes.len() - 3;
    bytes[last] ^= 0xFF;
    std::fs::write(newest, &bytes).unwrap();

    let recovered = recover_from_disk(&dir, CcConfig::default()).expect("fallback");
    assert!(
        recovered.checkpoint_height < reference.height(),
        "must not have used the corrupted newest checkpoint"
    );
    assert_eq!(recovered.ledger.height(), reference.height());
    assert_eq!(
        recovered.store,
        replay_oracle(&reference, 13, 0, reference.height())
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn time_travel_and_provenance_match_the_replayed_oracle() {
    let seed = 17;
    let dir = temp_dir("reenact");
    let reference = build_and_persist(&dir, seed, 70, 6, 4, 0);
    let recovered = recover_from_disk(&dir, CcConfig::default()).expect("cold recovery");
    assert_eq!(recovered.ledger.height(), reference.height());

    let keys = account_keys(seed);
    for height in 0..=reference.height() {
        let oracle = replay_oracle(&reference, seed, 0, height);
        for key in &keys {
            // value_as_of against the block-by-block replay oracle's latest value.
            assert_eq!(
                recovered.store.value_as_of(key, height).unwrap(),
                oracle.latest(key),
                "{key} @ {height}"
            );
            // provenance against the backwards ledger scan.
            let p = provenance(recovered.ledger.ledger(), &recovered.store, key, height)
                .unwrap()
                .expect("seeded keys always resolve");
            match provenance_oracle(&reference, key, height) {
                Some((id, seq)) => {
                    assert_eq!(p.txn.map(|t| t.0), Some(id), "{key} @ {height}");
                    assert_eq!(p.slot.seq, seq, "{key} @ {height}");
                }
                None => assert_eq!(p.txn, None, "{key} @ {height} should be genesis"),
            }
        }
    }

    // history_range over the full run covers genesis plus every oracle version.
    for key in &keys {
        let full = recovered
            .store
            .history_range(key, 0, reference.height())
            .unwrap();
        let oracle = replay_oracle(&reference, seed, 0, reference.height());
        assert_eq!(full, oracle.history(key), "{key}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill the log at any byte offset: reopening recovers a valid prefix (never panics),
    /// and appending the missing reference blocks resumes to full bit-identity.
    #[test]
    fn truncation_at_any_offset_recovers_a_valid_resumable_prefix(
        seed in any::<u64>(),
        chopped in 1u64..600,
    ) {
        let dir = temp_dir(&format!("torn{seed}-{chopped}"));
        let reference = build_and_persist(&dir, seed, 50, 4, 0, 0);
        prop_assert!(reference.height() >= 3);

        let mut segments: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "log"))
            .collect();
        segments.sort();
        let tail = segments.last().unwrap();
        let len = std::fs::metadata(tail).unwrap().len();
        let cut = chopped.min(len - 1).max(1);
        std::fs::OpenOptions::new()
            .write(true)
            .open(tail)
            .unwrap()
            .set_len(len - cut)
            .unwrap();

        let options = DurableOptions { rotate_bytes: 512, fsync: false };
        let (mut durable, report) = DurableLedger::open(&dir, options).expect("torn tail repairs");
        let height = durable.height();
        prop_assert!(height < reference.height(), "truncation must drop the tail record");
        // The recovered prefix is bit-identical to the reference prefix...
        let mut prefix = Ledger::new();
        for block in reference.iter().take(height as usize) {
            prefix.append(block.clone()).unwrap();
        }
        prop_assert_eq!(durable.ledger().tip_hash(), prefix.tip_hash());
        prop_assert!(durable.ledger().verify_integrity().is_ok());
        // ...and the log resumes: appending the dropped blocks restores full bit-identity,
        // surviving one more reopen.
        for block in reference.iter().skip(height as usize) {
            durable.append(block.clone()).expect("resume append");
        }
        prop_assert_eq!(durable.ledger().tip_hash(), reference.tip_hash());
        drop(durable);
        let (reopened, report2) = DurableLedger::open(&dir, options).expect("reopen after resume");
        prop_assert!(report2.torn.is_none());
        prop_assert_eq!(reopened.ledger().tip_hash(), reference.tip_hash());
        prop_assert_eq!(reopened.ledger().statuses(), reference.statuses());
        // Record what the first open found, for the curious failure case.
        let _ = report;
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
