//! Determinism harness for the parallel formation/arrival worker threads.
//!
//! The sharded dependency-graph engine can fan its per-shard work — border node-copy inserts
//! on arrival, the per-shard formation topo sorts, ww-chain restoration, pruning — out across
//! `W = CcConfig::formation_threads` workers. Concurrency claims like this are only credible
//! when the serializable-equivalence guarantee is *tested* under adversarial schedules (cf.
//! the snapshot-isolation robustness literature), so this battery pins the hard invariant:
//! ledgers, commit orders and cycle verdicts must be **bit-identical** to the inline unsharded
//! reference at every tested `S` (store shards) × `W` (formation threads) combination, for all
//! five systems, multiple seeds, and workloads engineered for maximal cross-shard pressure —
//! and the knob must compose with `endorser_shards`.

use fabricsharp::baselines::{SimpleChain, SystemKind};
use fabricsharp::common::config::WorkloadParams;
use fabricsharp::core::serializability::is_serializable;
use fabricsharp::sim::runner::{SimulationConfig, Simulator};
use fabricsharp::sim::SimReport;
use fabricsharp::workload::generator::{WorkloadGenerator, WorkloadKind};
use fabricsharp::workload::YcsbProfile;

const SHARD_COUNTS: [usize; 3] = [0, 2, 4];
const THREAD_COUNTS: [usize; 4] = [0, 1, 2, 4];
const SEEDS: [u64; 3] = [1, 7, 42];

fn workloads() -> Vec<(&'static str, WorkloadKind)> {
    vec![
        ("modified-smallbank", WorkloadKind::ModifiedSmallbank),
        // Every transaction touches several shards: the worst case for the coordinator and
        // therefore for any parallel/sequential divergence.
        (
            "ycsb-f-cross100",
            WorkloadKind::Ycsb(YcsbProfile::f().with_cross_shard(4, 1.0)),
        ),
    ]
}

fn base_config(system: SystemKind, workload: WorkloadKind, seed: u64) -> SimulationConfig {
    let mut config = SimulationConfig::new(system, workload);
    config.duration_s = 1.2;
    config.params.num_accounts = 400;
    config.params.request_rate_tps = 400;
    config.block.max_txns_per_block = 40;
    config.seed = seed;
    config
}

fn assert_reports_match(context: &str, reference: &SimReport, candidate: &SimReport) {
    assert_eq!(reference.offered, candidate.offered, "{context}: offered");
    assert_eq!(
        reference.committed, candidate.committed,
        "{context}: committed"
    );
    assert_eq!(
        reference.in_ledger, candidate.in_ledger,
        "{context}: in_ledger"
    );
    assert_eq!(reference.blocks, candidate.blocks, "{context}: blocks");
    // Abort counts by reason pin the cycle verdicts (including bloom false positives): a
    // single divergent verdict shifts a reason bucket.
    assert_eq!(reference.aborts, candidate.aborts, "{context}: aborts");
    assert_eq!(
        reference.committed_with_anti_rw, candidate.committed_with_anti_rw,
        "{context}: anti-rw commits"
    );
}

/// The acceptance criterion: for every system × workload × seed, every `S` × `W` combination
/// reproduces the inline unsharded reference ledger block for block, hash for hash.
#[test]
fn ledgers_are_bit_identical_at_every_shard_and_thread_count() {
    for system in SystemKind::all() {
        for (name, workload) in workloads() {
            for seed in SEEDS {
                let reference_cfg = base_config(system, workload.clone(), seed);
                let (reference_report, reference_ledger) =
                    Simulator::run_with_ledger(&reference_cfg);
                assert!(
                    reference_report.committed > 0,
                    "{system}/{name}/seed{seed}: reference run must commit work"
                );

                for shards in SHARD_COUNTS {
                    for threads in THREAD_COUNTS {
                        if shards == 0 && threads == 0 {
                            continue; // that is the reference itself
                        }
                        let mut cfg = reference_cfg.clone();
                        cfg.store_shards = shards;
                        cfg.formation_threads = threads;
                        let (report, ledger) = Simulator::run_with_ledger(&cfg);
                        let context = format!("{system}/{name}/seed{seed}/S{shards}/W{threads}");

                        assert_reports_match(&context, &reference_report, &report);
                        assert_eq!(
                            reference_ledger.height(),
                            ledger.height(),
                            "{context}: ledger height"
                        );
                        for (expected, actual) in reference_ledger.iter().zip(ledger.iter()) {
                            assert_eq!(
                                expected,
                                actual,
                                "{context}: block {} diverged",
                                expected.number()
                            );
                        }
                        assert_eq!(
                            reference_ledger.tip_hash(),
                            ledger.tip_hash(),
                            "{context}: tip hash"
                        );
                        assert!(ledger.verify_integrity().is_ok(), "{context}: integrity");
                    }
                }
            }
        }
    }
}

/// Formation threads compose with the other two concurrency knobs: endorser worker shards and
/// store shards together with `W > 0` still reproduce the all-inline reference ledger.
#[test]
fn formation_threads_compose_with_endorser_shards() {
    for (name, workload) in workloads() {
        let reference_cfg = base_config(SystemKind::FabricSharp, workload, 7);
        let (reference_report, reference_ledger) = Simulator::run_with_ledger(&reference_cfg);
        let mut cfg = reference_cfg.clone();
        cfg.store_shards = 2;
        cfg.endorser_shards = 2;
        cfg.formation_threads = 2;
        let (report, ledger) = Simulator::run_with_ledger(&cfg);
        let context = format!("{name}/store2+endorser2+formation2");
        assert_reports_match(&context, &reference_report, &report);
        assert_eq!(
            reference_ledger.tip_hash(),
            ledger.tip_hash(),
            "{context}: tip hash"
        );
    }
}

/// Transaction-level pinning under 100% cross-shard traffic: every submission's decision
/// (accept, or reject with the *same* abort reason — i.e. the same cycle verdict, bloom false
/// positives included), every block's commit order, and the chain hashes must agree between
/// the inline unsharded chain, the sharded inline chain, and the sharded worker-pool chain.
/// FabricSharp peers skip MVCC validation, so the serializability oracle on the parallel
/// chain's history is the end-to-end safety check.
#[test]
fn decisions_commit_orders_and_verdicts_match_under_full_cross_shard_pressure() {
    let workload = WorkloadKind::Ycsb(YcsbProfile::f().with_cross_shard(4, 1.0));
    let params = WorkloadParams {
        num_accounts: 12,
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(workload, params, 99);

    let mut reference = SimpleChain::new(SystemKind::FabricSharp);
    let mut sharded_inline = SimpleChain::with_sharded_formation(SystemKind::FabricSharp, 4, 0);
    let mut sharded_parallel = SimpleChain::with_sharded_formation(SystemKind::FabricSharp, 4, 2);
    for chain in [&mut reference, &mut sharded_inline, &mut sharded_parallel] {
        chain.seed(generator.genesis());
    }

    for i in 0..160usize {
        let template = generator.next_template();
        let txn_ref = reference.execute(|ctx| template.run(ctx));
        let txn_inline = sharded_inline.execute(|ctx| template.run(ctx));
        let txn_par = sharded_parallel.execute(|ctx| template.run(ctx));
        assert_eq!(txn_ref, txn_inline, "endorsement diverged at txn {i}");
        assert_eq!(txn_ref, txn_par, "endorsement diverged at txn {i}");

        let d_ref = reference.submit(txn_ref);
        let d_inline = sharded_inline.submit(txn_inline);
        let d_par = sharded_parallel.submit(txn_par);
        assert_eq!(d_ref, d_inline, "decision diverged at txn {i} (S4/W0)");
        assert_eq!(d_ref, d_par, "decision diverged at txn {i} (S4/W2)");

        if (i + 1) % 10 == 0 {
            let b_ref = reference.seal_block();
            let b_inline = sharded_inline.seal_block();
            let b_par = sharded_parallel.seal_block();
            assert_eq!(
                b_ref.committed, b_inline.committed,
                "commit order diverged at block {:?} (S4/W0)",
                b_ref.block_number
            );
            assert_eq!(
                b_ref.committed, b_par.committed,
                "commit order diverged at block {:?} (S4/W2)",
                b_ref.block_number
            );
            assert!(
                is_serializable(sharded_parallel.committed_history()),
                "history became non-serializable after block {:?}",
                b_par.block_number
            );
        }
    }
    for chain in [&mut reference, &mut sharded_inline, &mut sharded_parallel] {
        chain.seal_block();
    }
    assert!(is_serializable(sharded_parallel.committed_history()));
    assert_eq!(
        reference.ledger().tip_hash(),
        sharded_inline.ledger().tip_hash()
    );
    assert_eq!(
        reference.ledger().tip_hash(),
        sharded_parallel.ledger().tip_hash()
    );
    assert!(sharded_parallel.ledger().verify_integrity().is_ok());
    assert!(
        sharded_parallel.ledger().committed_txn_count() > 0,
        "cross-shard traffic must commit"
    );
    assert!(
        !sharded_parallel.early_aborted().is_empty()
            || sharded_parallel.ledger().committed_txn_count() > 0,
        "the schedule must exercise real decisions"
    );
    assert_eq!(
        reference.early_aborted(),
        sharded_parallel.early_aborted(),
        "early-abort sequences (cycle verdicts) must be identical"
    );
}

/// Repeated runs of the same parallel configuration are reproducible with each other (no
/// scheduling nondeterminism leaks into the ledger even at W = 4 over S = 4).
#[test]
fn parallel_runs_are_reproducible_across_invocations() {
    let mut cfg = base_config(
        SystemKind::FabricSharp,
        WorkloadKind::Ycsb(YcsbProfile::f().with_cross_shard(4, 1.0)),
        3,
    );
    cfg.store_shards = 4;
    cfg.formation_threads = 4;
    let (report_a, ledger_a) = Simulator::run_with_ledger(&cfg);
    let (report_b, ledger_b) = Simulator::run_with_ledger(&cfg);
    assert_reports_match("repeat", &report_a, &report_b);
    assert_eq!(ledger_a.tip_hash(), ledger_b.tip_hash());
    assert!(report_a.committed > 0);
}
