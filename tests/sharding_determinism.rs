//! Determinism harness for key-space sharding.
//!
//! The sharded engine (partitioned multi-version store, partitioned CW/CR/PW/PR indices,
//! per-shard dependency graphs behind the cross-shard coordinator) must be *observably
//! identical* to the unsharded reference: same seed → same ledger, block for block, hash for
//! hash, for every shard count. This is the replication requirement of Section 3.5 extended
//! along a second axis — `tests/pipeline_determinism.rs` proves it for endorser shards, this
//! harness proves it for store/graph shards, including workloads engineered to maximise
//! cross-shard (border) transactions.

use fabricsharp::baselines::{SimpleChain, SystemKind};
use fabricsharp::common::config::WorkloadParams;
use fabricsharp::core::serializability::is_serializable;
use fabricsharp::sim::runner::{SimulationConfig, Simulator};
use fabricsharp::sim::SimReport;
use fabricsharp::workload::generator::{WorkloadGenerator, WorkloadKind};
use fabricsharp::workload::YcsbProfile;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn workloads() -> Vec<(&'static str, WorkloadKind)> {
    vec![
        ("modified-smallbank", WorkloadKind::ModifiedSmallbank),
        (
            "ycsb-a-cross50",
            WorkloadKind::Ycsb(YcsbProfile::a().with_cross_shard(4, 0.5)),
        ),
    ]
}

fn base_config(system: SystemKind, workload: WorkloadKind, seed: u64) -> SimulationConfig {
    let mut config = SimulationConfig::new(system, workload);
    config.duration_s = 1.2;
    config.params.num_accounts = 400;
    config.params.request_rate_tps = 400;
    config.block.max_txns_per_block = 40;
    config.seed = seed;
    config
}

fn assert_reports_match(context: &str, reference: &SimReport, candidate: &SimReport) {
    assert_eq!(reference.offered, candidate.offered, "{context}: offered");
    assert_eq!(
        reference.committed, candidate.committed,
        "{context}: committed"
    );
    assert_eq!(
        reference.in_ledger, candidate.in_ledger,
        "{context}: in_ledger"
    );
    assert_eq!(reference.blocks, candidate.blocks, "{context}: blocks");
    assert_eq!(reference.aborts, candidate.aborts, "{context}: aborts");
    assert_eq!(
        reference.committed_with_anti_rw, candidate.committed_with_anti_rw,
        "{context}: anti-rw commits"
    );
}

/// The core acceptance criterion: for every system × workload × seed in the harness, S = 1, 2
/// and 4 sharded runs produce ledgers bit-for-bit identical to the unsharded reference — same
/// heights, same per-block entries (transactions *and* statuses), same chain hashes. For
/// FabricSharp this exercises the sharded dependency graph + coordinator on the decision path;
/// for the four baselines it exercises the sharded store and MVCC validation.
#[test]
fn sharded_runs_reproduce_the_unsharded_ledger_for_every_system() {
    for system in SystemKind::all() {
        for (name, workload) in workloads() {
            for seed in [1u64, 42] {
                let reference_cfg = base_config(system, workload.clone(), seed);
                let (reference_report, reference_ledger) =
                    Simulator::run_with_ledger(&reference_cfg);
                assert!(
                    reference_report.committed > 0,
                    "{system}/{name}/seed{seed}: reference run must commit work"
                );

                for shards in SHARD_COUNTS {
                    let mut cfg = reference_cfg.clone();
                    cfg.store_shards = shards;
                    let (report, ledger) = Simulator::run_with_ledger(&cfg);
                    let context = format!("{system}/{name}/seed{seed}/store-shards{shards}");

                    assert_reports_match(&context, &reference_report, &report);
                    assert_eq!(
                        reference_ledger.height(),
                        ledger.height(),
                        "{context}: ledger height"
                    );
                    for (expected, actual) in reference_ledger.iter().zip(ledger.iter()) {
                        assert_eq!(
                            expected,
                            actual,
                            "{context}: block {} diverged",
                            expected.number()
                        );
                    }
                    assert_eq!(
                        reference_ledger.tip_hash(),
                        ledger.tip_hash(),
                        "{context}: tip hash"
                    );
                    assert!(ledger.verify_integrity().is_ok(), "{context}: integrity");
                }
            }
        }
    }
}

/// Store sharding composes with endorser sharding: the two knobs together still reproduce the
/// all-inline, unsharded reference ledger.
#[test]
fn store_shards_compose_with_endorser_shards() {
    let reference_cfg = base_config(SystemKind::FabricSharp, WorkloadKind::ModifiedSmallbank, 7);
    let (reference_report, reference_ledger) = Simulator::run_with_ledger(&reference_cfg);
    let mut cfg = reference_cfg.clone();
    cfg.store_shards = 2;
    cfg.endorser_shards = 2;
    let (report, ledger) = Simulator::run_with_ledger(&cfg);
    assert_reports_match("store2+endorser2", &reference_report, &report);
    assert_eq!(reference_ledger.tip_hash(), ledger.tip_hash());
}

/// A workload where *every* transaction is cross-shard (the worst case for the coordinator)
/// still produces the reference ledger, and actually exercises border transactions.
#[test]
fn all_cross_shard_traffic_matches_the_reference() {
    let workload = WorkloadKind::Ycsb(YcsbProfile::f().with_cross_shard(2, 1.0));
    let reference_cfg = base_config(SystemKind::FabricSharp, workload, 3);
    let (reference_report, reference_ledger) = Simulator::run_with_ledger(&reference_cfg);
    assert!(reference_report.committed > 0);

    let mut cfg = reference_cfg.clone();
    cfg.store_shards = 2;
    let (report, ledger) = Simulator::run_with_ledger(&cfg);
    assert_reports_match("all-cross", &reference_report, &report);
    assert_eq!(reference_ledger.tip_hash(), ledger.tip_hash());
}

/// The serializability oracle under cross-shard transactions: FabricSharp peers skip MVCC
/// validation entirely, so the sharded graph + coordinator is the only thing standing between
/// contended cross-shard traffic and a non-serializable ledger. Every sealed block must keep
/// the committed history serializable, and the sharded chain must match the unsharded one
/// block for block.
#[test]
fn smallbank_oracle_passes_with_cross_shard_transactions() {
    let workloads: Vec<(&str, WorkloadKind)> = vec![
        // SendPayment / Amalgamate touch two accounts (four keys) → naturally cross-shard
        // under the hash router.
        (
            "mixed-smallbank",
            WorkloadKind::MixedSmallbank { theta: 0.8 },
        ),
        (
            "ycsb-f-allcross",
            WorkloadKind::Ycsb(YcsbProfile::f().with_cross_shard(2, 1.0)),
        ),
    ];
    for (name, workload) in workloads {
        let params = WorkloadParams {
            num_accounts: 12,
            ..WorkloadParams::default()
        };
        let mut generator = WorkloadGenerator::new(workload.clone(), params, 99);
        let mut reference = SimpleChain::new(SystemKind::FabricSharp);
        reference.seed(generator.genesis());
        let mut sharded = SimpleChain::with_store_shards(SystemKind::FabricSharp, 2);
        sharded.seed(generator.genesis());

        for i in 0..120usize {
            let template = generator.next_template();
            let txn_a = reference.execute(|ctx| template.run(ctx));
            let txn_b = sharded.execute(|ctx| template.run(ctx));
            assert_eq!(txn_a, txn_b, "{name}: endorsement diverged at txn {i}");
            let _ = reference.submit(txn_a);
            let _ = sharded.submit(txn_b);
            if (i + 1) % 8 == 0 {
                reference.seal_block();
                sharded.seal_block();
                assert!(
                    is_serializable(sharded.committed_history()),
                    "{name}: history became non-serializable after block {}",
                    sharded.ledger().height()
                );
            }
        }
        reference.seal_block();
        sharded.seal_block();
        assert!(is_serializable(sharded.committed_history()));
        assert_eq!(
            reference.ledger().height(),
            sharded.ledger().height(),
            "{name}: heights"
        );
        assert_eq!(
            reference.ledger().tip_hash(),
            sharded.ledger().tip_hash(),
            "{name}: sharded chain must match the unsharded one"
        );
        assert!(sharded.ledger().verify_integrity().is_ok());
        assert!(
            sharded.ledger().committed_txn_count() > 0,
            "{name}: cross-shard traffic must commit"
        );
    }
}
