//! Transactions as seen by the ordering and validation phases.
//!
//! A [`Transaction`] carries the simulation results (readset + writeset) produced during the
//! execute phase, the snapshot block it was simulated against, and — once consensus has
//! decided — the commit slot assigned to it. The orderer-side concurrency controls only ever
//! consult these fields; the contract logic itself never leaves the endorsing peers.

use crate::abort::AbortReason;
use crate::rwset::{Key, ReadSet, Value, WriteSet};
use crate::version::{concurrent, EndTs, SeqNo, StartTs};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A unique transaction identifier, assigned by the client/driver when the proposal is created.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Txn{}", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Txn{}", self.0)
    }
}

impl From<u64> for TxnId {
    fn from(v: u64) -> Self {
        TxnId(v)
    }
}

/// Static classification of the transaction *template* a transaction was generated from
/// (Vandevoort-style template robustness; see `eov_workload::templates`).
///
/// `Safe` asserts that, given the whole template mix the workload draws from, no instance of
/// this template can ever participate in a serializability-violating cycle — so the orderer
/// may skip dependency-graph insertion and cycle probing for it entirely. `Unknown` is the
/// conservative default: the transaction takes the full Algorithm 2 path. The tag is advisory
/// metadata; with `CcConfig::template_fastpath` off it is ignored everywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateClass {
    /// No static guarantee: full dependency tracking applies.
    #[default]
    Unknown,
    /// Proven unable to close a dependency cycle within its workload's template mix.
    Safe,
}

impl TemplateClass {
    /// Whether the class is `Safe`.
    pub fn is_safe(&self) -> bool {
        matches!(self, TemplateClass::Safe)
    }
}

/// An endorsed transaction: the unit that flows from peers through the ordering service into a
/// block and finally through validation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transaction {
    /// Unique identifier.
    pub id: TxnId,
    /// Keys read during simulation, with the versions observed.
    pub read_set: ReadSet,
    /// Keys written during simulation, with the new values.
    pub write_set: WriteSet,
    /// The block number of the snapshot the simulation ran against (Algorithm 1's `b`).
    pub snapshot_block: u64,
    /// Number of endorsement signatures collected (the simulator models endorsement policies
    /// as a simple signer count).
    pub endorsements: u32,
    /// Commit slot assigned by consensus, if the transaction has been sequenced.
    pub end_ts: Option<EndTs>,
    /// Static template classification (defaults to [`TemplateClass::Unknown`], the fully
    /// tracked path). Absent in serialized transactions from older ledgers.
    #[serde(default)]
    pub template_class: TemplateClass,
    /// Index of the workload template this instance was generated from, in the workload's
    /// static conflict-matrix row order (`eov_workload::conflict::ConflictMatrix`). `None`
    /// (the default, and the value for transactions from older ledgers) means "template
    /// unknown" and disables every matrix-driven widening for this transaction — the
    /// conservative path.
    #[serde(default)]
    pub template_id: Option<u16>,
}

impl Transaction {
    /// Creates a transaction from its simulation results.
    pub fn new(id: TxnId, snapshot_block: u64, read_set: ReadSet, write_set: WriteSet) -> Self {
        Transaction {
            id,
            read_set,
            write_set,
            snapshot_block,
            endorsements: 1,
            end_ts: None,
            template_class: TemplateClass::Unknown,
            template_id: None,
        }
    }

    /// Returns the transaction with its template classification set.
    pub fn with_template_class(mut self, class: TemplateClass) -> Self {
        self.template_class = class;
        self
    }

    /// Returns the transaction with its conflict-matrix template index set.
    pub fn with_template_id(mut self, template_id: Option<u16>) -> Self {
        self.template_id = template_id;
        self
    }

    /// Convenience constructor used throughout tests and the worked paper examples: builds a
    /// transaction from `(key, version)` reads and `(key, value)` writes.
    pub fn from_parts(
        id: u64,
        snapshot_block: u64,
        reads: impl IntoIterator<Item = (Key, SeqNo)>,
        writes: impl IntoIterator<Item = (Key, Value)>,
    ) -> Self {
        Transaction::new(
            TxnId(id),
            snapshot_block,
            reads.into_iter().collect(),
            writes.into_iter().collect(),
        )
    }

    /// Definition 3: the start timestamp is the sequence number of the read snapshot,
    /// `(snapshot_block + 1, 0)`.
    pub fn start_ts(&self) -> StartTs {
        SeqNo::snapshot_after(self.snapshot_block)
    }

    /// The commit slot assigned by consensus, panicking if the transaction has not been
    /// sequenced yet. Use [`Transaction::end_ts`] directly when the slot may be absent.
    pub fn committed_end_ts(&self) -> EndTs {
        self.end_ts
            .expect("transaction has not been assigned a commit slot yet")
    }

    /// Definition 5: whether this transaction's execution overlaps `other`'s. Both must have
    /// been assigned end timestamps.
    pub fn is_concurrent_with(&self, other: &Transaction) -> bool {
        match (self.end_ts, other.end_ts) {
            (Some(a), Some(b)) => concurrent((self.start_ts(), a), (other.start_ts(), b)),
            // A transaction without a commit slot is still pending, so it overlaps every other
            // pending or not-yet-pruned transaction whose end lies after this one's start.
            _ => true,
        }
    }

    /// The block span of the transaction: how many blocks elapsed between the snapshot it was
    /// simulated against and the block it commits in (footnote 2 of the paper). Returns `None`
    /// until the transaction is sequenced.
    pub fn block_span(&self) -> Option<u64> {
        self.end_ts
            .map(|e| e.block.saturating_sub(self.snapshot_block))
    }

    /// Returns `true` if the transaction never reads (e.g. Create-Account / no-op workloads);
    /// such transactions can never participate in an anti-rw dependency.
    pub fn is_blind_write(&self) -> bool {
        self.read_set.is_empty()
    }

    /// Returns `true` if the transaction never writes (read-only queries).
    pub fn is_read_only(&self) -> bool {
        self.write_set.is_empty()
    }
}

/// The outcome of a transaction as recorded by the driver / simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnStatus {
    /// Still in flight (executing, waiting for ordering, or waiting for validation).
    Pending,
    /// Passed validation; its writes were applied to the state database.
    Committed,
    /// Aborted, with the reason recorded for the abort-breakdown experiments (Figure 14).
    Aborted(AbortReason),
}

impl TxnStatus {
    /// Whether the transaction committed.
    pub fn is_committed(&self) -> bool {
        matches!(self, TxnStatus::Committed)
    }

    /// Whether the transaction aborted (for any reason).
    pub fn is_aborted(&self) -> bool {
        matches!(self, TxnStatus::Aborted(_))
    }
}

/// The decision a concurrency control returns when a transaction arrives at the orderer
/// (Algorithm 2) or is validated at a peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommitDecision {
    /// Keep the transaction.
    Accept,
    /// Drop the transaction with the given reason.
    Reject(AbortReason),
}

impl CommitDecision {
    /// Whether the decision is `Accept`.
    pub fn is_accept(&self) -> bool {
        matches!(self, CommitDecision::Accept)
    }

    /// The abort reason, if the decision is `Reject`.
    pub fn reason(&self) -> Option<AbortReason> {
        match self {
            CommitDecision::Accept => None,
            CommitDecision::Reject(r) => Some(*r),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txn(id: u64, snapshot: u64, end: Option<(u64, u32)>) -> Transaction {
        let mut t = Transaction::from_parts(id, snapshot, [], []);
        t.end_ts = end.map(|(b, s)| SeqNo::new(b, s));
        t
    }

    #[test]
    fn start_ts_is_snapshot_plus_one() {
        let t = txn(1, 2, None);
        assert_eq!(t.start_ts(), SeqNo::new(3, 0));
    }

    #[test]
    fn figure4_concurrency_relationships() {
        // Figure 4: Txn1 commits at (M,1) with snapshot M-1; Txn2 commits at (M+1,1) with
        // snapshot <= M-1; Txn3 commits at (M+1,2) with snapshot M.
        let m = 10;
        let txn1 = txn(1, m - 1, Some((m, 1)));
        let txn2 = txn(2, m - 2, Some((m + 1, 1)));
        let txn3 = txn(3, m, Some((m + 1, 2)));
        assert!(txn1.is_concurrent_with(&txn2));
        assert!(txn2.is_concurrent_with(&txn3));
        assert!(!txn1.is_concurrent_with(&txn3));
    }

    #[test]
    fn block_span_counts_blocks_between_snapshot_and_commit() {
        let t = txn(1, 4, Some((5, 3)));
        assert_eq!(t.block_span(), Some(1));
        let pending = txn(2, 4, None);
        assert_eq!(pending.block_span(), None);
    }

    #[test]
    fn blind_write_and_read_only_classification() {
        let blind = Transaction::from_parts(1, 0, [], [(Key::new("A"), Value::from_i64(1))]);
        assert!(blind.is_blind_write());
        assert!(!blind.is_read_only());

        let ro = Transaction::from_parts(2, 0, [(Key::new("A"), SeqNo::new(0, 0))], []);
        assert!(ro.is_read_only());
        assert!(!ro.is_blind_write());
    }

    #[test]
    fn commit_decision_helpers() {
        assert!(CommitDecision::Accept.is_accept());
        assert_eq!(CommitDecision::Accept.reason(), None);
        let rej = CommitDecision::Reject(AbortReason::StaleRead);
        assert!(!rej.is_accept());
        assert_eq!(rej.reason(), Some(AbortReason::StaleRead));
    }

    #[test]
    fn template_class_defaults_to_unknown() {
        let t = Transaction::from_parts(1, 0, [], []);
        assert_eq!(t.template_class, TemplateClass::Unknown);
        assert!(!t.template_class.is_safe());
        let tagged = t.with_template_class(TemplateClass::Safe);
        assert!(tagged.template_class.is_safe());
    }

    #[test]
    fn status_helpers() {
        assert!(TxnStatus::Committed.is_committed());
        assert!(TxnStatus::Aborted(AbortReason::ConcurrentWriteWrite).is_aborted());
        assert!(!TxnStatus::Pending.is_committed());
        assert!(!TxnStatus::Pending.is_aborted());
    }
}
