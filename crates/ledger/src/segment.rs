//! Append-only segment files: the on-disk record log behind the durable ledger.
//!
//! A ledger directory holds a sorted sequence of segment files named
//! `seg-<first_block:020>.log`. Each file starts with an 8-byte magic plus the height of its
//! first block, followed by framed block records: `u32 payload length | u32 CRC-32 | payload`
//! (see [`crate::codec`]). Appends go to the newest segment until it reaches the configured
//! rotation size, then a fresh segment is started — so old segments are immutable and the
//! only file a crash can tear is the last one.
//!
//! Scanning applies the standard write-ahead-log tail rule: the first invalid record
//! (truncated frame, impossible length, CRC mismatch) in the *last* segment marks a torn
//! trailing write — everything from that offset on is dropped and physically truncated on
//! repair, never a panic. The same damage in any *earlier* segment cannot be a torn write
//! (earlier segments were sealed before later ones existed) and surfaces as a typed
//! [`LedgerError::CorruptRecord`].

use crate::block::Block;
use crate::codec;
use crate::error::LedgerError;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file (format version 1).
const SEGMENT_MAGIC: &[u8; 8] = b"EOVSEG01";
/// Bytes of segment header: magic + first-block height.
const HEADER_LEN: u64 = 16;
/// Sanity cap on a single record payload; a "length" above this in the tail is torn garbage.
const MAX_RECORD_LEN: u32 = 1 << 28;

/// File name of the segment whose first block is `first_block` (zero-padded so the
/// lexicographic directory order is the numeric block order for any u64 height).
pub(crate) fn segment_file_name(first_block: u64) -> String {
    format!("seg-{first_block:020}.log")
}

/// A torn trailing write found while scanning the last segment: everything at or after
/// `valid_len` is dropped when the tail is repaired.
#[derive(Clone, Debug)]
pub struct TornTail {
    /// The segment file holding the torn record.
    pub segment: PathBuf,
    /// Bytes of the file that remain valid (the repair truncates to this length; `0` means
    /// even the header was torn and the whole file is removed).
    pub valid_len: u64,
    /// Bytes dropped by the repair.
    pub dropped_bytes: u64,
}

/// Result of scanning a ledger directory: the decoded blocks in order, the torn tail (if
/// any), and where the writer should resume.
pub(crate) struct SegmentScan {
    /// Every decoded block, in segment/record order. Chain rules are enforced by replay.
    pub blocks: Vec<Block>,
    /// Torn trailing record of the last segment, if one was found.
    pub torn: Option<TornTail>,
    /// The last segment and its valid length (post-repair), for the writer to resume into.
    /// `None` when the directory has no (surviving) segment.
    pub tail: Option<(PathBuf, u64)>,
    /// Number of segment files seen.
    pub segment_count: usize,
}

/// Lists the segment files of `dir` in block order.
fn segment_paths(dir: &Path) -> Result<Vec<PathBuf>, LedgerError> {
    let entries = fs::read_dir(dir).map_err(|e| LedgerError::io(dir, e))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let path = entry.map_err(|e| LedgerError::io(dir, e))?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("seg-") && name.ends_with(".log") {
            paths.push(path);
        }
    }
    // Zero-padded heights: lexicographic file-name order is numeric block order.
    paths.sort();
    Ok(paths)
}

/// Scans every segment of `dir`, decoding blocks and classifying damage (torn tail vs
/// corrupt record) per the module rules. The directory must exist.
pub(crate) fn scan_dir(dir: &Path) -> Result<SegmentScan, LedgerError> {
    let paths = segment_paths(dir)?;
    let segment_count = paths.len();
    let mut blocks: Vec<Block> = Vec::new();
    let mut torn: Option<TornTail> = None;
    let mut tail: Option<(PathBuf, u64)> = None;

    for (index, path) in paths.iter().enumerate() {
        let is_last = index + 1 == segment_count;
        let bytes = fs::read(path).map_err(|e| LedgerError::io(path, e))?;
        let file_len = bytes.len() as u64;

        // Header: magic + first block height.
        if bytes.len() < HEADER_LEN as usize || &bytes[..8] != SEGMENT_MAGIC {
            if is_last {
                torn = Some(TornTail {
                    segment: path.clone(),
                    valid_len: 0,
                    dropped_bytes: file_len,
                });
                break;
            }
            return Err(LedgerError::CorruptRecord {
                segment: path.clone(),
                offset: 0,
                detail: "missing or invalid segment header".into(),
            });
        }
        let first_block = u64::from_be_bytes(bytes[8..16].try_into().unwrap());
        let expected_first = blocks.last().map(|b| b.number() + 1).unwrap_or(first_block);
        if first_block != expected_first {
            return Err(LedgerError::CorruptRecord {
                segment: path.clone(),
                offset: 8,
                detail: format!(
                    "segment claims first block {first_block}, expected {expected_first}"
                ),
            });
        }

        let mut offset = HEADER_LEN as usize;
        let mut valid_len = HEADER_LEN;
        while offset < bytes.len() {
            let frame_ok = bytes.len() - offset >= 8;
            let (len, stored_crc) = if frame_ok {
                (
                    u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()),
                    u32::from_be_bytes(bytes[offset + 4..offset + 8].try_into().unwrap()),
                )
            } else {
                (0, 0)
            };
            let payload_ok =
                frame_ok && len <= MAX_RECORD_LEN && bytes.len() - offset - 8 >= len as usize;
            let payload = payload_ok
                .then(|| &bytes[offset + 8..offset + 8 + len as usize])
                .filter(|p| codec::crc32(p) == stored_crc);
            let Some(payload) = payload else {
                let detail = if !frame_ok {
                    "incomplete record frame"
                } else if !payload_ok {
                    "record length exceeds remaining bytes"
                } else {
                    "CRC mismatch"
                };
                if is_last {
                    torn = Some(TornTail {
                        segment: path.clone(),
                        valid_len,
                        dropped_bytes: file_len - valid_len,
                    });
                    break;
                }
                return Err(LedgerError::CorruptRecord {
                    segment: path.clone(),
                    offset: offset as u64,
                    detail: detail.into(),
                });
            };
            // CRC-valid bytes that fail structural decoding are corruption (or a format bug),
            // never a torn write — typed error regardless of position.
            let block =
                codec::decode_block(payload).map_err(|detail| LedgerError::CorruptRecord {
                    segment: path.clone(),
                    offset: offset as u64,
                    detail,
                })?;
            blocks.push(block);
            offset += 8 + payload.len();
            valid_len = offset as u64;
        }

        if is_last {
            let surviving_len = match &torn {
                Some(t) => t.valid_len,
                None => file_len,
            };
            // A tail torn before the header survives as no file at all.
            tail = (surviving_len >= HEADER_LEN).then(|| (path.clone(), surviving_len));
        }
    }

    Ok(SegmentScan {
        blocks,
        torn,
        tail,
        segment_count,
    })
}

/// Physically repairs a torn tail: truncates the segment to its valid length, or removes the
/// file entirely when even the header was torn.
pub(crate) fn repair_torn_tail(torn: &TornTail) -> Result<(), LedgerError> {
    if torn.valid_len >= HEADER_LEN {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&torn.segment)
            .map_err(|e| LedgerError::io(&torn.segment, e))?;
        file.set_len(torn.valid_len)
            .map_err(|e| LedgerError::io(&torn.segment, e))?;
    } else {
        fs::remove_file(&torn.segment).map_err(|e| LedgerError::io(&torn.segment, e))?;
    }
    Ok(())
}

/// The appending half: writes framed records into the newest segment, rotating to a fresh
/// file once the current one reaches `rotate_bytes`.
#[derive(Debug)]
pub(crate) struct SegmentWriter {
    dir: PathBuf,
    rotate_bytes: u64,
    fsync: bool,
    /// The open tail segment and its current length, if any.
    current: Option<(fs::File, PathBuf, u64)>,
}

impl SegmentWriter {
    /// A writer over `dir`, resuming into `tail` (the scan's post-repair tail segment).
    pub fn resume(
        dir: &Path,
        rotate_bytes: u64,
        fsync: bool,
        tail: Option<(PathBuf, u64)>,
    ) -> Result<Self, LedgerError> {
        let current = match tail {
            None => None,
            Some((path, len)) => {
                let file = fs::OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| LedgerError::io(&path, e))?;
                Some((file, path, len))
            }
        };
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            rotate_bytes: rotate_bytes.max(1),
            fsync,
            current,
        })
    }

    /// Appends one framed block record, rotating first if the tail segment is full.
    pub fn append(&mut self, block_number: u64, payload: &[u8]) -> Result<(), LedgerError> {
        let needs_rotation = match &self.current {
            None => true,
            Some((_, _, len)) => *len >= self.rotate_bytes,
        };
        if needs_rotation {
            let path = self.dir.join(segment_file_name(block_number));
            let mut file = fs::OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)
                .map_err(|e| LedgerError::io(&path, e))?;
            let mut header = Vec::with_capacity(HEADER_LEN as usize);
            header.extend_from_slice(SEGMENT_MAGIC);
            header.extend_from_slice(&block_number.to_be_bytes());
            file.write_all(&header)
                .map_err(|e| LedgerError::io(&path, e))?;
            self.current = Some((file, path, HEADER_LEN));
        }
        let (file, path, len) = self.current.as_mut().expect("rotation installs a segment");
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&codec::crc32(payload).to_be_bytes());
        frame.extend_from_slice(payload);
        file.write_all(&frame)
            .map_err(|e| LedgerError::io(&*path, e))?;
        if self.fsync {
            file.sync_data().map_err(|e| LedgerError::io(&*path, e))?;
        }
        *len += frame.len() as u64;
        Ok(())
    }

    /// Number of bytes in the current tail segment (diagnostics/tests).
    pub fn tail_len(&self) -> u64 {
        self.current.as_ref().map(|(_, _, len)| *len).unwrap_or(0)
    }
}
