//! Shared-store handles for the concurrent pipeline.
//!
//! The concurrent EOV pipeline (sharded endorsers, threaded committer) shares one
//! [`MultiVersionStore`] between stages: endorser workers take the read lock and simulate
//! against *pinned block snapshots* while the single committer thread takes the write lock to
//! install the next block's versions. Because the store is multi-versioned and snapshot reads
//! ([`MultiVersionStore::read_at`]) only ever consult versions at or below the pinned block,
//! a simulation's result is unaffected by later versions being appended concurrently — which
//! is precisely the Section 4.2 argument for replacing vanilla Fabric's endorsement
//! read-write lock with storage snapshots.
//!
//! This module is the concurrency-audit companion to [`crate::snapshot`]: it pins down, at
//! compile time, that every substrate type crossing a stage boundary is `Send + Sync`, and its
//! tests hammer the snapshot manager and a shared store from multiple threads.

use crate::mvstore::MultiVersionStore;
use parking_lot::RwLock;
use std::sync::Arc;

/// A [`MultiVersionStore`] shared between pipeline stages: endorser shards read (snapshot
/// reads at pinned heights), the committer writes (appends the next block's versions).
pub type SharedStore = Arc<RwLock<MultiVersionStore>>;

/// Wraps a store for sharing across pipeline stages.
pub fn into_shared(store: MultiVersionStore) -> SharedStore {
    Arc::new(RwLock::new(store))
}

/// Compile-time audit: every substrate type handed across pipeline stage boundaries must be
/// shareable between threads. A regression here (e.g. an `Rc` or a raw pointer sneaking into
/// the store) fails the build, not a stress test.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MultiVersionStore>();
    assert_send_sync::<SharedStore>();
    assert_send_sync::<crate::snapshot::SnapshotManager>();
    assert_send_sync::<crate::index::CommittedWriteIndex>();
    assert_send_sync::<crate::index::CommittedReadIndex>();
    assert_send_sync::<crate::pending::PendingIndex>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotManager;
    use eov_common::rwset::{Key, Value};
    use eov_common::txn::{Transaction, TxnId};
    use std::thread;

    /// Concurrent snapshot reads against a store that a committer thread keeps appending to:
    /// every read at a pinned height must see exactly the value that height had when it was
    /// pinned, regardless of how many blocks land concurrently.
    #[test]
    fn snapshot_reads_are_stable_under_concurrent_commits() {
        let store = into_shared(MultiVersionStore::new());
        store
            .write()
            .seed_genesis([(Key::new("A"), Value::from_i64(0))]);

        let committer = {
            let store = Arc::clone(&store);
            thread::spawn(move || {
                for block in 1..=50u64 {
                    let txn = Transaction::new(
                        TxnId(block),
                        block - 1,
                        eov_common::rwset::ReadSet::new(),
                        {
                            let mut ws = eov_common::rwset::WriteSet::new();
                            ws.record(Key::new("A"), Value::from_i64(block as i64));
                            ws
                        },
                    );
                    store.write().apply_block(block, [(&txn, 1)]);
                }
            })
        };

        let readers: Vec<_> = (0..4)
            .map(|_| {
                let store = Arc::clone(&store);
                thread::spawn(move || {
                    for _ in 0..200 {
                        let guard = store.read();
                        let pinned = guard.last_block();
                        let v = guard
                            .read_at(&Key::new("A"), pinned)
                            .expect("never pruned")
                            .map(|vv| vv.value.as_i64().unwrap())
                            .unwrap_or(0);
                        // The value at height `pinned` is by construction the block number
                        // that wrote it (0 at genesis).
                        assert_eq!(v, pinned as i64);
                    }
                })
            })
            .collect();

        committer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(store.read().last_block(), 50);
    }

    /// The snapshot manager's pin/unpin/register/prune surface is exercised from many threads
    /// at once; afterwards no pins may leak and the pruning floor must respect every pin that
    /// was active when it was computed.
    #[test]
    fn snapshot_manager_survives_concurrent_pin_churn() {
        let mgr = SnapshotManager::new();
        let register = {
            let mgr = mgr.clone();
            thread::spawn(move || {
                for block in 1..=100u64 {
                    mgr.register_block(block);
                }
            })
        };
        let pinners: Vec<_> = (0..4)
            .map(|_| {
                let mgr = mgr.clone();
                thread::spawn(move || {
                    for _ in 0..200 {
                        let block = mgr.pin_latest();
                        assert!(mgr.pin_count(block) >= 1);
                        mgr.unpin(block);
                    }
                })
            })
            .collect();
        register.join().unwrap();
        for p in pinners {
            p.join().unwrap();
        }
        // All pins released: pruning can advance to the horizon.
        assert_eq!(mgr.latest(), 100);
        assert_eq!(mgr.prune_below(90), 90);
        for block in 0..100u64 {
            assert_eq!(mgr.pin_count(block), 0, "leaked pin on block {block}");
        }
    }
}
