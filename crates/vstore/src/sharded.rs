//! Key-space sharded state: `S` independent [`MultiVersionStore`] partitions behind one
//! [`ShardRouter`], plus the sharded CW/CR/PW/PR dependency-resolution indices.
//!
//! Every operation of the unsharded store surface is implemented by fan-out: point operations
//! (put, latest, snapshot read) route to the owning shard, whole-store operations (pruning,
//! height advancement, counts) visit every shard. Because the store is a pure data partition —
//! no key ever lives in two shards — every read returns bit-for-bit what the unsharded store
//! would return, which is the foundation of the `sharding_determinism` ledger-identity
//! guarantee. The same argument covers the indices: CW/CR/PW/PR are per-key maps, so routing
//! each key to its shard's index partitions the map without changing any per-key answer.

use crate::index::{CommittedReadIndex, CommittedWriteIndex};
use crate::mvstore::{MultiVersionStore, VersionedValue};
use crate::pending::PendingIndex;
use crate::state::{StateRead, StateStore};
use eov_common::error::Result;
use eov_common::rwset::{Key, Value};
use eov_common::shard::ShardRouter;
use eov_common::version::SeqNo;

/// A multi-version store partitioned across `S` shards by a [`ShardRouter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedStore {
    router: ShardRouter,
    shards: Vec<MultiVersionStore>,
    /// Global height — individual shards only see the blocks that wrote into them.
    last_block: u64,
}

impl ShardedStore {
    /// Creates an empty sharded store with the given router.
    pub fn new(router: ShardRouter) -> Self {
        ShardedStore {
            shards: (0..router.shard_count())
                .map(|_| MultiVersionStore::new())
                .collect(),
            router,
            last_block: 0,
        }
    }

    /// A hash-partitioned store over `shards` shards.
    pub fn with_hash_shards(shards: usize) -> Self {
        Self::new(ShardRouter::hash(shards))
    }

    /// The router assigning keys to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard (diagnostics, balance checks in tests).
    pub fn shard(&self, shard: usize) -> &MultiVersionStore {
        &self.shards[shard]
    }

    /// Exclusive access to one shard. The parallel commit scheduler uses this to move shard
    /// stores out (`mem::take`) and hand them to apply workers while the backend's write lock
    /// is held — invisible to readers because no read can start until the lock drops.
    pub fn shard_mut(&mut self, shard: usize) -> &mut MultiVersionStore {
        &mut self.shards[shard]
    }

    fn owner(&self, key: &Key) -> &MultiVersionStore {
        &self.shards[self.router.shard_of(key)]
    }

    /// Full version history of `key` (oldest first).
    pub fn history(&self, key: &Key) -> &[VersionedValue] {
        self.owner(key).history(key)
    }

    /// Iterates over `(key, latest version)` pairs in global key order — a k-way merge over
    /// the per-shard ordered maps.
    pub fn iter_latest(&self) -> impl Iterator<Item = (&Key, &VersionedValue)> {
        let mut entries: Vec<(&Key, &VersionedValue)> = self
            .shards
            .iter()
            .flat_map(MultiVersionStore::iter_latest)
            .collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries.into_iter()
    }

    /// The lowest block height whose snapshot is still readable.
    pub fn pruned_below(&self) -> u64 {
        self.shards
            .iter()
            .map(MultiVersionStore::pruned_below)
            .max()
            .unwrap_or(0)
    }

    /// Restores the *global* height recorded in a checkpoint (individual shards only see the
    /// blocks that wrote into them, so their own heights undercount). Never regresses.
    pub fn restore_height(&mut self, last_block: u64) {
        self.last_block = self.last_block.max(last_block);
    }
}

impl StateRead for ShardedStore {
    fn read_at(&self, key: &Key, block: u64) -> Result<Option<&VersionedValue>> {
        self.owner(key).read_at(key, block)
    }

    fn latest(&self, key: &Key) -> Option<&VersionedValue> {
        self.owner(key).latest(key)
    }

    fn last_block(&self) -> u64 {
        self.last_block
    }
}

impl StateStore for ShardedStore {
    fn put(&mut self, key: Key, version: SeqNo, value: Value) {
        let shard = self.router.shard_of(&key);
        self.shards[shard].put(key, version, value);
    }

    fn commit_empty_block(&mut self, block_no: u64) {
        for shard in &mut self.shards {
            shard.commit_empty_block(block_no);
        }
        self.last_block = self.last_block.max(block_no);
    }

    fn prune_versions_below(&mut self, block: u64) {
        for shard in &mut self.shards {
            shard.prune_versions_below(block);
        }
    }

    fn key_count(&self) -> usize {
        self.shards.iter().map(MultiVersionStore::key_count).sum()
    }

    fn version_count(&self) -> usize {
        self.shards
            .iter()
            .map(MultiVersionStore::version_count)
            .sum()
    }
}

/// The four dependency-resolution indices of Section 4.3 (CW, CR, PW, PR), partitioned by key
/// shard. With a single shard this is exactly the unsharded layout — the orderer always goes
/// through this type and the `store_shards` knob only changes how many partitions back it.
#[derive(Clone, Debug)]
pub struct ShardedIndices {
    router: ShardRouter,
    cw: Vec<CommittedWriteIndex>,
    cr: Vec<CommittedReadIndex>,
    pw: Vec<PendingIndex>,
    pr: Vec<PendingIndex>,
}

impl ShardedIndices {
    /// Creates empty indices partitioned by `router`.
    pub fn new(router: ShardRouter) -> Self {
        let shards = router.shard_count();
        ShardedIndices {
            router,
            cw: (0..shards).map(|_| CommittedWriteIndex::new()).collect(),
            cr: (0..shards).map(|_| CommittedReadIndex::new()).collect(),
            pw: (0..shards).map(|_| PendingIndex::new()).collect(),
            pr: (0..shards).map(|_| PendingIndex::new()).collect(),
        }
    }

    /// The router assigning keys to index shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of index shards.
    pub fn shard_count(&self) -> usize {
        self.cw.len()
    }

    /// The committed-write index owning `key`.
    pub fn cw(&self, key: &Key) -> &CommittedWriteIndex {
        &self.cw[self.router.shard_of(key)]
    }

    /// The committed-read index owning `key`.
    pub fn cr(&self, key: &Key) -> &CommittedReadIndex {
        &self.cr[self.router.shard_of(key)]
    }

    /// The pending-write index owning `key`.
    pub fn pw(&self, key: &Key) -> &PendingIndex {
        &self.pw[self.router.shard_of(key)]
    }

    /// The pending-read index owning `key`.
    pub fn pr(&self, key: &Key) -> &PendingIndex {
        &self.pr[self.router.shard_of(key)]
    }

    /// Records a committed write of `key` at `seq`.
    pub fn record_cw(&mut self, key: Key, seq: SeqNo, txn: eov_common::txn::TxnId) {
        let shard = self.router.shard_of(&key);
        self.cw[shard].record(key, seq, txn);
    }

    /// Records a committed read of the latest value of `key` at `seq`.
    pub fn record_cr(&mut self, key: Key, seq: SeqNo, txn: eov_common::txn::TxnId) {
        let shard = self.router.shard_of(&key);
        self.cr[shard].record(key, seq, txn);
    }

    /// Drops committed readers of `key` made stale by a write at `seq`.
    pub fn drop_stale_readers(&mut self, key: &Key, seq: SeqNo) {
        let shard = self.router.shard_of(key);
        self.cr[shard].drop_stale_readers(key, seq);
    }

    /// Records a pending write of `key`.
    pub fn record_pw(&mut self, key: Key, txn: eov_common::txn::TxnId) {
        let shard = self.router.shard_of(&key);
        self.pw[shard].record(key, txn);
    }

    /// Records a pending read of `key`.
    pub fn record_pr(&mut self, key: Key, txn: eov_common::txn::TxnId) {
        let shard = self.router.shard_of(&key);
        self.pr[shard].record(key, txn);
    }

    /// Iterates over every `(shard, key, pending writers)` association of the PW indices (used
    /// by ww restoration, which sorts by key itself for determinism).
    pub fn iter_pw(&self) -> impl Iterator<Item = (usize, &Key, &[eov_common::txn::TxnId])> {
        self.pw
            .iter()
            .enumerate()
            .flat_map(|(shard, index)| index.iter().map(move |(key, txns)| (shard, key, txns)))
    }

    /// Clears the pending indices (block formation empties the pending set).
    pub fn clear_pending(&mut self) {
        for pw in &mut self.pw {
            pw.clear();
        }
        for pr in &mut self.pr {
            pr.clear();
        }
    }

    /// Removes a single transaction from every pending index shard.
    pub fn remove_pending_txn(&mut self, txn: eov_common::txn::TxnId) {
        for pw in &mut self.pw {
            pw.remove_txn(txn);
        }
        for pr in &mut self.pr {
            pr.remove_txn(txn);
        }
    }

    /// Prunes the committed indices below `horizon` (Section 4.6).
    pub fn prune_committed_below(&mut self, horizon: u64) {
        for cw in &mut self.cw {
            cw.prune_below(horizon);
        }
        for cr in &mut self.cr {
            cr.prune_below(horizon);
        }
    }

    /// Total committed-index entries across shards (diagnostics).
    pub fn committed_entry_count(&self) -> usize {
        self.cw.iter().map(CommittedWriteIndex::len).sum::<usize>()
            + self.cr.iter().map(CommittedReadIndex::len).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::txn::{Transaction, TxnId};

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    /// The sharded store must answer every read exactly like an unsharded store fed the same
    /// writes — the data-partition identity the determinism harness builds on.
    #[test]
    fn sharded_reads_match_the_unsharded_reference() {
        let mut reference = MultiVersionStore::new();
        let mut sharded = ShardedStore::with_hash_shards(4);
        assert_eq!(sharded.shard_count(), 4);

        let genesis: Vec<(Key, Value)> = (0..40)
            .map(|i| (k(&format!("acct:{i}")), Value::from_i64(i)))
            .collect();
        reference.seed_genesis(genesis.clone());
        sharded.seed_genesis(genesis);

        for block in 1..=5u64 {
            let txn = Transaction::from_parts(
                block,
                block - 1,
                [],
                (0..10).map(|i| {
                    (
                        k(&format!("acct:{}", (block as usize * 7 + i) % 40)),
                        Value::from_i64(block as i64 * 100 + i as i64),
                    )
                }),
            );
            reference.apply_block(block, [(&txn, 1)]);
            sharded.apply_block(block, [(&txn, 1)]);
        }

        assert_eq!(sharded.last_block(), 5);
        assert_eq!(StateStore::key_count(&sharded), reference.key_count());
        assert_eq!(
            StateStore::version_count(&sharded),
            reference.version_count()
        );
        for i in 0..40 {
            let key = k(&format!("acct:{i}"));
            for block in 0..=5u64 {
                assert_eq!(
                    StateRead::read_at(&sharded, &key, block).unwrap(),
                    reference.read_at(&key, block).unwrap(),
                    "{key} @ {block}"
                );
            }
            assert_eq!(StateRead::latest(&sharded, &key), reference.latest(&key));
        }

        // Merged latest iteration walks keys in global order, like the reference BTreeMap.
        let merged: Vec<&Key> = sharded.iter_latest().map(|(key, _)| key).collect();
        let expected: Vec<&Key> = reference.iter_latest().map(|(key, _)| key).collect();
        assert_eq!(merged, expected);
    }

    #[test]
    fn pruning_fans_out_to_every_shard() {
        let mut sharded = ShardedStore::with_hash_shards(2);
        sharded.seed_genesis([(k("a"), Value::from_i64(0)), (k("b"), Value::from_i64(0))]);
        for block in 1..=4u64 {
            let txn = Transaction::from_parts(
                block,
                block - 1,
                [],
                [
                    (k("a"), Value::from_i64(block as i64)),
                    (k("b"), Value::from_i64(block as i64)),
                ],
            );
            sharded.apply_block(block, [(&txn, 1)]);
        }
        sharded.prune_versions_below(3);
        assert_eq!(sharded.pruned_below(), 3);
        assert!(StateRead::read_at(&sharded, &k("a"), 2).is_err());
        assert_eq!(
            StateRead::read_at(&sharded, &k("a"), 4)
                .unwrap()
                .unwrap()
                .value
                .as_i64(),
            Some(4)
        );
    }

    /// Per-key index answers must be identical to an unsharded index fed the same records.
    #[test]
    fn sharded_indices_answer_like_unsharded_ones() {
        let mut reference_cw = CommittedWriteIndex::new();
        let mut sharded = ShardedIndices::new(ShardRouter::hash(3));
        assert_eq!(sharded.shard_count(), 3);

        for i in 0..30u64 {
            let key = k(&format!("key:{}", i % 10));
            let seq = SeqNo::new(i / 10 + 1, (i % 10) as u32 + 1);
            reference_cw.record(key.clone(), seq, TxnId(i));
            sharded.record_cw(key, seq, TxnId(i));
        }
        for i in 0..10 {
            let key = k(&format!("key:{i}"));
            assert_eq!(sharded.cw(&key).last(&key), reference_cw.last(&key));
            let probe = SeqNo::new(2, 1);
            assert_eq!(
                sharded.cw(&key).before(&key, probe),
                reference_cw.before(&key, probe)
            );
            assert_eq!(
                sharded.cw(&key).from(&key, probe),
                reference_cw.from(&key, probe)
            );
        }

        sharded.record_pw(k("key:1"), TxnId(100));
        sharded.record_pr(k("key:2"), TxnId(101));
        assert_eq!(sharded.pw(&k("key:1")).get(&k("key:1")), &[TxnId(100)]);
        assert_eq!(sharded.iter_pw().count(), 1);
        sharded.remove_pending_txn(TxnId(100));
        assert_eq!(sharded.iter_pw().count(), 0);
        assert_eq!(sharded.pr(&k("key:2")).get(&k("key:2")), &[TxnId(101)]);
        sharded.clear_pending();
        assert!(sharded.pr(&k("key:2")).get(&k("key:2")).is_empty());

        let before = sharded.committed_entry_count();
        sharded.prune_committed_below(100);
        assert!(sharded.committed_entry_count() < before);
    }
}
