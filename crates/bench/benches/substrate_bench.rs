//! Criterion micro-benchmarks of the substrates: multi-version store reads, committed-index
//! queries, SHA-256 block hashing, Zipfian sampling and Smallbank endorsement.

use criterion::{criterion_group, criterion_main, Criterion};
use eov_common::rwset::{Key, Value};
use eov_common::txn::{Transaction, TxnId};
use eov_common::version::SeqNo;
use eov_ledger::{sha256, Block, Digest};
use eov_vstore::{CommittedWriteIndex, MultiVersionStore, SnapshotManager};
use eov_workload::smallbank::{genesis_accounts, SmallbankContract, SmallbankOp};
use eov_workload::zipf::Zipfian;
use fabricsharp_core::endorser::SnapshotEndorser;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_mvstore(c: &mut Criterion) {
    let mut store = MultiVersionStore::new();
    store.seed_genesis(genesis_accounts(10_000));
    // Ten blocks of updates to the first 500 accounts so snapshot reads have history to skip.
    for block in 1..=10u64 {
        for i in 0..500usize {
            store.put(
                Key::new(format!("checking:{i}")),
                SeqNo::new(block, i as u32 + 1),
                Value::from_i64(block as i64),
            );
        }
        store.commit_empty_block(block);
    }

    let mut group = c.benchmark_group("mvstore");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("latest_read", |b| {
        b.iter(|| store.latest(&Key::new("checking:123")).map(|v| v.version))
    });
    group.bench_function("snapshot_read_block_3", |b| {
        b.iter(|| {
            store
                .read_at(&Key::new("checking:123"), 3)
                .unwrap()
                .map(|v| v.version)
        })
    });
    group.finish();
}

fn bench_indices(c: &mut Criterion) {
    let mut cw = CommittedWriteIndex::new();
    for block in 1..=50u64 {
        for key in 0..200u64 {
            cw.record(
                Key::new(format!("k{key}")),
                SeqNo::new(block, key as u32 + 1),
                TxnId(block * 1_000 + key),
            );
        }
    }
    let mut group = c.benchmark_group("committed_write_index");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("last", |b| b.iter(|| cw.last(&Key::new("k42"))));
    group.bench_function("before", |b| {
        b.iter(|| cw.before(&Key::new("k42"), SeqNo::new(25, 0)))
    });
    group.bench_function("range_from", |b| {
        b.iter(|| cw.from(&Key::new("k42"), SeqNo::new(40, 0)).len())
    });
    group.finish();
}

fn bench_ledger_and_zipf(c: &mut Criterion) {
    let mut group = c.benchmark_group("ledger_and_workload");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2));

    group.bench_function("sha256_1kib", |b| {
        let data = vec![0xabu8; 1024];
        b.iter(|| sha256(&data))
    });

    let txns: Vec<Transaction> = (0..100u64)
        .map(|i| {
            Transaction::from_parts(
                i,
                0,
                [(Key::new(format!("r{i}")), SeqNo::new(0, 1))],
                [(Key::new(format!("w{i}")), Value::from_i64(i as i64))],
            )
        })
        .collect();
    group.bench_function("build_block_100_txns", |b| {
        b.iter(|| Block::build(1, Digest::ZERO, txns.clone()).hash())
    });

    let zipf = Zipfian::new(10_000, 1.0);
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function("zipfian_sample", |b| b.iter(|| zipf.sample(&mut rng)));

    // Smallbank endorsement of a SendPayment against a 10k-account snapshot.
    let mut store = MultiVersionStore::new();
    store.seed_genesis(genesis_accounts(10_000));
    let snapshots = SnapshotManager::new();
    snapshots.register_block(0);
    let endorser = SnapshotEndorser::new(snapshots);
    group.bench_function("smallbank_endorse_send_payment", |b| {
        b.iter(|| {
            endorser.simulate_at(&store, TxnId(1), 0, |ctx| {
                SmallbankContract.run(
                    ctx,
                    &SmallbankOp::SendPayment {
                        from: 1,
                        to: 2,
                        amount: 5,
                    },
                )
            })
        })
    });
    group.finish();
}

criterion_group!(benches, bench_mvstore, bench_indices, bench_ledger_and_zipf);
criterion_main!(benches);
