//! The Smallbank contract family.
//!
//! The paper evaluates two flavours:
//!
//! * **Modified Smallbank** (Section 5.2, used for Figures 10–14): every transaction reads 4
//!   accounts and writes 4 accounts out of 10,000, with 1% designated "hot"; the probability
//!   of a read (write) targeting a hot account is the read (write) hot ratio of Table 2.
//! * **Original Smallbank** (Section 5.4, used for Figure 15): the classic operation mix —
//!   `Query Account` (read-only), `Deposit Checking` / `Write Check` / `Transact Savings`
//!   (single-account updates), `Send Payment` / `Amalgamate` (two-account updates), plus the
//!   contention-free `Create Account` workload.
//!
//! Accounts are stored as two keys each (`checking:<id>` and `savings:<id>`), matching the
//! Smallbank schema.

use eov_common::rwset::{Key, Value};
use fabricsharp_core::endorser::SimulationContext;

/// Key of an account's checking balance.
pub fn checking_key(account: usize) -> Key {
    Key::new(format!("checking:{account}"))
}

/// Key of an account's savings balance.
pub fn savings_key(account: usize) -> Key {
    Key::new(format!("savings:{account}"))
}

/// Genesis entries for `num_accounts` accounts, each starting with a 1,000 checking balance
/// and a 1,000 savings balance.
pub fn genesis_accounts(num_accounts: usize) -> Vec<(Key, Value)> {
    let mut entries = Vec::with_capacity(num_accounts * 2);
    for account in 0..num_accounts {
        entries.push((checking_key(account), Value::from_i64(1_000)));
        entries.push((savings_key(account), Value::from_i64(1_000)));
    }
    entries
}

/// One operation of the original Smallbank benchmark.
#[derive(Clone, Debug, PartialEq)]
pub enum SmallbankOp {
    /// Creates a brand-new account (write-only: the contention-free workload of Section 5.4).
    CreateAccount {
        /// The new account's id.
        account: usize,
        /// Initial checking balance.
        checking: i64,
        /// Initial savings balance.
        savings: i64,
    },
    /// Reads both balances of an account (read-only).
    QueryAccount {
        /// The account to read.
        account: usize,
    },
    /// Adds `amount` to the checking balance.
    DepositChecking {
        /// The target account.
        account: usize,
        /// Amount to deposit.
        amount: i64,
    },
    /// Subtracts `amount` from the checking balance (allows overdraft, like Smallbank).
    WriteCheck {
        /// The target account.
        account: usize,
        /// Cheque amount.
        amount: i64,
    },
    /// Adds `amount` to the savings balance.
    TransactSavings {
        /// The target account.
        account: usize,
        /// Amount to add (may be negative).
        amount: i64,
    },
    /// Moves `amount` from one account's checking balance to another's.
    SendPayment {
        /// Paying account.
        from: usize,
        /// Receiving account.
        to: usize,
        /// Amount transferred.
        amount: i64,
    },
    /// Moves the entire savings + checking balance of `from` into `to`'s checking balance.
    Amalgamate {
        /// Source account (zeroed).
        from: usize,
        /// Destination account.
        to: usize,
    },
    /// The modified-Smallbank transaction of Section 5.2: read the checking balances of
    /// `reads`, then overwrite the checking balances of `writes` with a derived value.
    ModifiedRw {
        /// Accounts whose balances are read.
        reads: Vec<usize>,
        /// Accounts whose balances are overwritten.
        writes: Vec<usize>,
    },
}

impl SmallbankOp {
    /// Number of state reads this operation performs (used by the simulator to model the
    /// read-interval parameter).
    pub fn read_count(&self) -> usize {
        match self {
            SmallbankOp::CreateAccount { .. } => 0,
            SmallbankOp::QueryAccount { .. } => 2,
            SmallbankOp::DepositChecking { .. }
            | SmallbankOp::WriteCheck { .. }
            | SmallbankOp::TransactSavings { .. } => 1,
            SmallbankOp::SendPayment { .. } => 2,
            SmallbankOp::Amalgamate { .. } => 3,
            SmallbankOp::ModifiedRw { reads, .. } => reads.len(),
        }
    }

    /// Whether the operation performs no writes (read-only queries).
    pub fn is_read_only(&self) -> bool {
        matches!(self, SmallbankOp::QueryAccount { .. })
    }
}

/// The Smallbank smart contract: executes a [`SmallbankOp`] inside a simulation context.
#[derive(Clone, Copy, Debug, Default)]
pub struct SmallbankContract;

impl SmallbankContract {
    /// Executes `op` against the snapshot wrapped by `ctx`.
    pub fn run(&self, ctx: &mut SimulationContext<'_>, op: &SmallbankOp) {
        match op {
            SmallbankOp::CreateAccount {
                account,
                checking,
                savings,
            } => {
                ctx.write(checking_key(*account), Value::from_i64(*checking));
                ctx.write(savings_key(*account), Value::from_i64(*savings));
            }
            SmallbankOp::QueryAccount { account } => {
                let _ = ctx.read_balance(&checking_key(*account));
                let _ = ctx.read_balance(&savings_key(*account));
            }
            SmallbankOp::DepositChecking { account, amount } => {
                let bal = ctx.read_balance(&checking_key(*account));
                ctx.write(checking_key(*account), Value::from_i64(bal + amount));
            }
            SmallbankOp::WriteCheck { account, amount } => {
                let bal = ctx.read_balance(&checking_key(*account));
                ctx.write(checking_key(*account), Value::from_i64(bal - amount));
            }
            SmallbankOp::TransactSavings { account, amount } => {
                let bal = ctx.read_balance(&savings_key(*account));
                ctx.write(savings_key(*account), Value::from_i64(bal + amount));
            }
            SmallbankOp::SendPayment { from, to, amount } => {
                let from_bal = ctx.read_balance(&checking_key(*from));
                let to_bal = ctx.read_balance(&checking_key(*to));
                ctx.write(checking_key(*from), Value::from_i64(from_bal - amount));
                ctx.write(checking_key(*to), Value::from_i64(to_bal + amount));
            }
            SmallbankOp::Amalgamate { from, to } => {
                let savings = ctx.read_balance(&savings_key(*from));
                let checking = ctx.read_balance(&checking_key(*from));
                let to_bal = ctx.read_balance(&checking_key(*to));
                ctx.write(savings_key(*from), Value::from_i64(0));
                ctx.write(checking_key(*from), Value::from_i64(0));
                ctx.write(
                    checking_key(*to),
                    Value::from_i64(to_bal + savings + checking),
                );
            }
            SmallbankOp::ModifiedRw { reads, writes } => {
                let mut acc = 0i64;
                for account in reads {
                    acc += ctx.read_balance(&checking_key(*account));
                }
                let derived = acc / (reads.len().max(1) as i64);
                for account in writes {
                    ctx.write(checking_key(*account), Value::from_i64(derived));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::txn::{Transaction, TxnId};
    use eov_vstore::{MultiVersionStore, SnapshotManager};
    use fabricsharp_core::endorser::SnapshotEndorser;

    fn seeded_store(accounts: usize) -> MultiVersionStore {
        let mut store = MultiVersionStore::new();
        store.seed_genesis(genesis_accounts(accounts));
        store
    }

    fn endorse(store: &MultiVersionStore, op: &SmallbankOp) -> Transaction {
        let mgr = SnapshotManager::new();
        mgr.register_block(store.last_block());
        let endorser = SnapshotEndorser::new(mgr);
        endorser.simulate(store, TxnId(1), |ctx| SmallbankContract.run(ctx, op))
    }

    #[test]
    fn genesis_creates_two_keys_per_account() {
        let store = seeded_store(5);
        assert_eq!(store.key_count(), 10);
        assert_eq!(
            store.latest_value(&checking_key(3)).unwrap().as_i64(),
            Some(1_000)
        );
    }

    #[test]
    fn send_payment_moves_money_between_checking_accounts() {
        let store = seeded_store(3);
        let txn = endorse(
            &store,
            &SmallbankOp::SendPayment {
                from: 0,
                to: 1,
                amount: 250,
            },
        );
        assert_eq!(txn.read_set.len(), 2);
        assert_eq!(
            txn.write_set.value_of(&checking_key(0)).unwrap().as_i64(),
            Some(750)
        );
        assert_eq!(
            txn.write_set.value_of(&checking_key(1)).unwrap().as_i64(),
            Some(1_250)
        );
    }

    #[test]
    fn amalgamate_zeroes_the_source_and_credits_the_target() {
        let store = seeded_store(3);
        let txn = endorse(&store, &SmallbankOp::Amalgamate { from: 2, to: 0 });
        assert_eq!(
            txn.write_set.value_of(&savings_key(2)).unwrap().as_i64(),
            Some(0)
        );
        assert_eq!(
            txn.write_set.value_of(&checking_key(2)).unwrap().as_i64(),
            Some(0)
        );
        assert_eq!(
            txn.write_set.value_of(&checking_key(0)).unwrap().as_i64(),
            Some(3_000)
        );
        assert_eq!(SmallbankOp::Amalgamate { from: 2, to: 0 }.read_count(), 3);
    }

    #[test]
    fn query_account_is_read_only() {
        let store = seeded_store(2);
        let op = SmallbankOp::QueryAccount { account: 1 };
        let txn = endorse(&store, &op);
        assert!(op.is_read_only());
        assert!(txn.write_set.is_empty());
        assert_eq!(txn.read_set.len(), 2);
    }

    #[test]
    fn create_account_is_write_only() {
        let store = seeded_store(1);
        let op = SmallbankOp::CreateAccount {
            account: 99,
            checking: 10,
            savings: 20,
        };
        let txn = endorse(&store, &op);
        assert!(txn.read_set.is_empty());
        assert_eq!(txn.write_set.len(), 2);
        assert_eq!(op.read_count(), 0);
        assert!(!op.is_read_only());
    }

    #[test]
    fn modified_rw_reads_and_writes_the_requested_accounts() {
        let store = seeded_store(10);
        let op = SmallbankOp::ModifiedRw {
            reads: vec![1, 2, 3, 4],
            writes: vec![5, 6, 7, 8],
        };
        let txn = endorse(&store, &op);
        assert_eq!(txn.read_set.len(), 4);
        assert_eq!(txn.write_set.len(), 4);
        assert_eq!(op.read_count(), 4);
        // The derived value is the mean of the read balances (all 1,000 at genesis).
        assert_eq!(
            txn.write_set.value_of(&checking_key(5)).unwrap().as_i64(),
            Some(1_000)
        );
    }

    #[test]
    fn single_account_updates_touch_exactly_one_key() {
        let store = seeded_store(4);
        for op in [
            SmallbankOp::DepositChecking {
                account: 1,
                amount: 5,
            },
            SmallbankOp::WriteCheck {
                account: 1,
                amount: 5,
            },
            SmallbankOp::TransactSavings {
                account: 1,
                amount: 5,
            },
        ] {
            let txn = endorse(&store, &op);
            assert_eq!(txn.read_set.len(), 1, "{op:?}");
            assert_eq!(txn.write_set.len(), 1, "{op:?}");
            assert_eq!(op.read_count(), 1);
        }
    }
}
