//! The paper's worked examples and theorems, end to end: Table 1 / Figure 2a, the Figure 3a
//! snapshot-consistency examples, Theorem 1 (Strong Serializability of anti-rw-free systems)
//! and Theorem 2 (unreorderable cycles are rejected before ordering, reorderable ones are not).

use fabricsharp::baselines::api::{mvcc_validate_and_apply, SystemKind};
use fabricsharp::core::theory::{
    figure2a_fixture, figure3a_txn1, figure3a_txn2, snapshot_consistency,
};
use fabricsharp::prelude::*;

/// Drives the Table 1 transactions through one system and returns the ids that end up
/// committed.
fn table1_commits(system: SystemKind) -> Vec<u64> {
    let (store, txns) = figure2a_fixture();
    let mut cc = system.build(CcConfig::default());
    let mut block2_writer = Transaction::from_parts(
        90,
        1,
        [],
        [
            (Key::new("B"), Value::from_i64(201)),
            (Key::new("C"), Value::from_i64(201)),
        ],
    );
    block2_writer.end_ts = Some(SeqNo::new(2, 1));
    cc.on_block_committed(2, &[(block2_writer, TxnStatus::Committed)]);

    for txn in txns {
        if !cc.on_endorsement(&txn, store.last_block()).is_accept() {
            continue;
        }
        let _ = cc.on_arrival(txn);
    }
    let block = cc.cut_block();
    let mut store = store;
    let statuses: Vec<TxnStatus> = if cc.needs_peer_validation() {
        mvcc_validate_and_apply(&mut store, 3, &block)
    } else {
        block.iter().map(|_| TxnStatus::Committed).collect()
    };
    block
        .iter()
        .zip(statuses)
        .filter(|(_, s)| s.is_committed())
        .map(|(t, _)| t.id.0)
        .collect()
}

#[test]
fn table1_fabric_commits_only_txn3() {
    assert_eq!(table1_commits(SystemKind::Fabric), vec![3]);
}

#[test]
fn table1_fabricpp_commits_txn4_and_txn5() {
    let mut commits = table1_commits(SystemKind::FabricPlusPlus);
    commits.sort();
    assert_eq!(commits, vec![4, 5]);
}

#[test]
fn table1_fabricsharp_commits_two_serializable_transactions() {
    // FabricSharp is not pinned to the same pair as Fabric++, but it must commit at least as
    // many transactions as vanilla Fabric and its choice must be serializable together with
    // the block-2 writer it knows about.
    let commits = table1_commits(SystemKind::FabricSharp);
    assert!(
        commits.len() >= 2,
        "Fabric# should save at least two of the four, got {commits:?}"
    );
    assert!(
        !commits.contains(&2),
        "Txn2 closes a cycle with the committed block-2 writer"
    );
}

#[test]
fn figure3a_snapshot_consistency_examples() {
    let (store, _) = figure2a_fixture();
    // Proposition 1: Txn1 reads across blocks yet is consistent with snapshot 2.
    assert_eq!(snapshot_consistency(&figure3a_txn1(), &store), Some(2));
    // Txn2's early read was overwritten: no snapshot serves both reads.
    assert_eq!(snapshot_consistency(&figure3a_txn2(), &store), None);
}

#[test]
fn theorem1_anti_rw_free_systems_are_strongly_serializable() {
    // The vanilla-Fabric history from the Table 1 scenario (only Txn3 commits after the block-2
    // writer) must be strongly serializable; so must any prefix of commits produced by Fabric.
    let (_, txns) = figure2a_fixture();
    let mut history: Vec<Transaction> = Vec::new();
    let mut block2_writer = Transaction::from_parts(
        90,
        1,
        [],
        [
            (Key::new("B"), Value::from_i64(201)),
            (Key::new("C"), Value::from_i64(201)),
        ],
    );
    block2_writer.end_ts = Some(SeqNo::new(2, 1));
    history.push(block2_writer);
    let mut txn3 = txns[1].clone();
    txn3.end_ts = Some(SeqNo::new(3, 1));
    history.push(txn3);
    assert!(is_strongly_serializable(&history));
    assert!(is_serializable(&history));
}

#[test]
fn theorem2_unreorderable_cycle_is_rejected_but_cww_cycle_is_not() {
    // Figure 7a: a cycle made purely of read-write conflicts between pending transactions can
    // never be serialized by reordering → the closing transaction is rejected.
    let mut cc = FabricSharpCC::with_defaults();
    let t1 = Transaction::from_parts(
        1,
        0,
        [(Key::new("X"), SeqNo::new(0, 1))],
        [(Key::new("Y"), Value::from_i64(1))],
    );
    let t2 = Transaction::from_parts(
        2,
        0,
        [(Key::new("Y"), SeqNo::new(0, 2))],
        [(Key::new("X"), Value::from_i64(2))],
    );
    assert!(cc.on_arrival(t1).is_accept());
    assert!(
        !cc.on_arrival(t2).is_accept(),
        "pure rw cycle must be rejected (Theorem 2)"
    );

    // Figure 7b: when the cycle involves a c-ww between pending transactions, reordering can
    // flip that edge, so everything is accepted and the block commit order resolves it.
    let mut cc = FabricSharpCC::with_defaults();
    let a = Transaction::from_parts(
        10,
        0,
        [(Key::new("P"), SeqNo::new(0, 1))],
        [(Key::new("Q"), Value::from_i64(1))],
    );
    let b = Transaction::from_parts(
        11,
        0,
        [],
        [
            (Key::new("P"), Value::from_i64(2)),
            (Key::new("R"), Value::from_i64(2)),
        ],
    );
    let c = Transaction::from_parts(
        12,
        0,
        [],
        [
            (Key::new("R"), Value::from_i64(3)),
            (Key::new("Q"), Value::from_i64(3)),
        ],
    );
    assert!(cc.on_arrival(a).is_accept());
    assert!(cc.on_arrival(b).is_accept());
    assert!(cc.on_arrival(c).is_accept());
    let block = cc.cut_block();
    assert_eq!(block.len(), 3);
    // The committed block must itself be serializable.
    assert!(is_serializable(&block));
    // And the reader of P must be ordered before the pending writer of P.
    let pos = |id: u64| block.iter().position(|t| t.id.0 == id).unwrap();
    assert!(
        pos(10) < pos(11),
        "anti-rw order must be respected by the reordering"
    );
}

#[test]
fn lemma2_reordering_preserves_concurrency_relationships() {
    // Take a pending set, record pairwise concurrency before the cut (treating "would commit in
    // the next block" as the end timestamp), and verify the relationship is unchanged by the
    // slots the reordering actually assigns.
    let mut cc = FabricSharpCC::with_defaults();
    let txns: Vec<Transaction> = (0..6u64)
        .map(|i| {
            Transaction::from_parts(
                i + 1,
                0,
                [(Key::new(format!("r{i}")), SeqNo::new(0, 1))],
                [(Key::new(format!("w{}", i % 3)), Value::from_i64(i as i64))],
            )
        })
        .collect();
    for txn in &txns {
        assert!(cc.on_arrival(txn.clone()).is_accept());
    }
    let block = cc.cut_block();
    // All transactions were simulated against block 0 and all commit in block 1, so every pair
    // must be concurrent both before and after reordering.
    for a in &block {
        for b in &block {
            if a.id != b.id {
                assert!(a.is_concurrent_with(b));
            }
        }
    }
    assert_eq!(block.len(), txns.len());
}
