//! Template-fastpath measurement table: whole-orderer arrival + formation medians with
//! `CcConfig::template_fastpath` off vs on, per workload mix.
//!
//! ```text
//! cargo run --release -p eov-bench --bin fastpath_table
//! ```
//!
//! Replays 200 endorsed transactions of each mix through `FabricSharpCC::on_arrival` plus one
//! `cut_block`, median of 15 runs, with the fast path off and on. Transactions are tagged by
//! the key-granular conflict analyzer (instance classification) exactly like the simulator
//! tags them, so the "on" column reflects what the knob buys on that mix: YCSB-C (100% reads)
//! is entirely safe and bypasses the graph wholesale; the write-partitioned YCSB-B row shows
//! the instance-level rescue — read instances whose sampled keys provably miss the write tail
//! are safe even though the read template itself is not; unpartitioned YCSB-A/B/F and the
//! Smallbank mixes classify unknown throughout, so their numbers must stay at ~1.0× (the knob
//! is inert there — and the `template_fastpath_determinism` battery pins that the ledgers are
//! bit-identical either way). This binary produces the BASELINES.md "Template fast path"
//! table.

use eov_common::config::{CcConfig, WorkloadParams};
use eov_common::txn::{Transaction, TxnId};
use eov_vstore::{MultiVersionStore, SnapshotManager};
use eov_workload::generator::{WorkloadGenerator, WorkloadKind};
use eov_workload::YcsbProfile;
use fabricsharp_core::endorser::SnapshotEndorser;
use fabricsharp_core::FabricSharpCC;
use std::time::Instant;

const RUNS: usize = 15;
const TXNS: usize = 200;

fn endorsed_txns(kind: WorkloadKind) -> Vec<Transaction> {
    let params = WorkloadParams {
        num_accounts: 2_000,
        ..WorkloadParams::default()
    };
    let mut generator = WorkloadGenerator::new(kind, params, 7);
    let analyzer = generator.analyzer();
    let mut store = MultiVersionStore::new();
    store.seed_genesis(generator.genesis());
    let snapshots = SnapshotManager::new();
    snapshots.register_block(0);
    let endorser = SnapshotEndorser::new(snapshots);
    (0..TXNS)
        .map(|i| {
            let template = generator.next_template();
            let class = analyzer.classify_instance(&template);
            endorser
                .simulate_at(&store, TxnId(i as u64 + 1), 0, |ctx| template.run(ctx))
                .with_template_class(class)
        })
        .collect()
}

fn median_ns(txns: &[Transaction], fastpath: bool) -> f64 {
    let body = || {
        let mut cc = FabricSharpCC::new(CcConfig {
            template_fastpath: fastpath,
            ..CcConfig::default()
        });
        for txn in txns {
            let _ = cc.on_arrival(txn.clone());
        }
        cc.cut_block().len() as u64
    };
    std::hint::black_box(body()); // warm-up
    let mut samples: Vec<u128> = (0..RUNS)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(body());
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

fn main() {
    let workloads: Vec<(&str, WorkloadKind)> = vec![
        ("ycsb-a", WorkloadKind::Ycsb(YcsbProfile::a())),
        ("ycsb-b", WorkloadKind::Ycsb(YcsbProfile::b())),
        (
            "ycsb-b part.",
            WorkloadKind::Ycsb(YcsbProfile::b().with_write_partition(0.125)),
        ),
        ("ycsb-c", WorkloadKind::Ycsb(YcsbProfile::c())),
        ("ycsb-f", WorkloadKind::Ycsb(YcsbProfile::f())),
        ("modified-smallbank", WorkloadKind::ModifiedSmallbank),
        (
            "mixed-smallbank θ=0.7",
            WorkloadKind::MixedSmallbank { theta: 0.7 },
        ),
        ("create-account", WorkloadKind::CreateAccount),
    ];

    println!("FabricSharp arrival + cut, {TXNS} txns, median of {RUNS} runs");
    println!("| workload | fastpath off (ns) | fastpath on (ns) | off/on |");
    println!("|---|---|---|---|");
    for (name, kind) in workloads {
        let txns = endorsed_txns(kind);
        let safe = txns.iter().filter(|t| t.template_class.is_safe()).count();
        let off = median_ns(&txns, false);
        let on = median_ns(&txns, true);
        println!(
            "| {name} ({safe}/{TXNS} safe) | {off:.0} | {on:.0} | {:.2}x |",
            off / on
        );
    }
}
