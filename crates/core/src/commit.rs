//! Serial commit semantics for one delivered block — the validate phase of the EOV pipeline.
//!
//! These routines are the *reference* committer: transactions are validated and applied
//! strictly in block order against the `StateStore` surface, which is what defines the
//! bit-exact ledger and store state every other commit path must reproduce. The parallel
//! commit scheduler ([`crate::scheduler`]) executes conflict-free waves concurrently but is
//! proven (and tested) to produce byte-identical results to these functions; the baselines
//! crate re-exports them so the five systems and the chain facades share one implementation.

use crate::pipeline::CommitOutcome;
use eov_common::abort::AbortReason;
use eov_common::txn::{Transaction, TxnStatus};
use eov_common::version::SeqNo;
use eov_vstore::{StateRead, StateStore};
use std::collections::HashSet;

/// Peer-side validation of a delivered block (the validate phase of the EOV pipeline), shared
/// by every system that needs it.
///
/// Transactions are validated *serially in block order*: a transaction is valid iff every key
/// it read still carries the version it observed, taking into account the writes of valid
/// transactions earlier in the same block. Valid transactions immediately apply their writes
/// to the store at version `(block_no, slot)`. The store's height advances to `block_no`
/// regardless, so later snapshots exist even for blocks whose transactions all aborted.
pub fn mvcc_validate_and_apply<S: StateStore>(
    store: &mut S,
    block_no: u64,
    txns: &[Transaction],
) -> Vec<TxnStatus> {
    let mut statuses = Vec::with_capacity(txns.len());
    for (i, txn) in txns.iter().enumerate() {
        let slot = i as u32 + 1;
        let stale = txn.read_set.iter().any(|read| {
            let latest = store
                .latest(&read.key)
                .map(|vv| vv.version)
                .unwrap_or(SeqNo::zero());
            latest != read.version
        });
        if stale {
            statuses.push(TxnStatus::Aborted(AbortReason::StaleRead));
        } else {
            for write in txn.write_set.iter() {
                store.put(
                    write.key.clone(),
                    SeqNo::new(block_no, slot),
                    write.value.clone(),
                );
            }
            statuses.push(TxnStatus::Committed);
        }
    }
    store.commit_empty_block(block_no);
    statuses
}

/// Applies every transaction of a block without validation (used for FabricSharp, whose
/// ordering already guarantees serializability). Writes are installed in block order.
pub fn apply_without_validation<S: StateStore>(
    store: &mut S,
    block_no: u64,
    txns: &[Transaction],
) -> Vec<TxnStatus> {
    for (i, txn) in txns.iter().enumerate() {
        for write in txn.write_set.iter() {
            store.put(
                write.key.clone(),
                SeqNo::new(block_no, i as u32 + 1),
                write.value.clone(),
            );
        }
    }
    store.commit_empty_block(block_no);
    vec![TxnStatus::Committed; txns.len()]
}

/// How many transactions in a block (about to be committed) read a version that is no longer
/// the latest — i.e. commits that tolerate an anti-rw dependency. Evaluated serially in block
/// order against the pre-block state plus earlier in-block writes, exactly like the MVCC check
/// would be. Feeds the Figure 5 "commits a Strong-Serializability system would abort" metric.
pub fn count_anti_rw_commits<S: StateRead>(store: &S, txns: &[Transaction]) -> u64 {
    let mut in_block_writes: HashSet<&str> = HashSet::new();
    let mut count = 0;
    for txn in txns {
        let stale = txn.read_set.iter().any(|read| {
            let overwritten_in_block = in_block_writes.contains(read.key.as_str());
            let latest = store
                .latest(&read.key)
                .map(|vv| vv.version)
                .unwrap_or(SeqNo::zero());
            overwritten_in_block || latest != read.version
        });
        if stale {
            count += 1;
        }
        for write in txn.write_set.iter() {
            in_block_writes.insert(write.key.as_str());
        }
    }
    count
}

/// The complete validator/committer step for one block, shared by the inline and threaded
/// commit stages: counts anti-rw-tolerant commits against the pre-block state, then either
/// MVCC-validates (the baselines) or applies unconditionally (FabricSharp).
pub fn commit_block<S: StateStore>(
    store: &mut S,
    block_no: u64,
    txns: &[Transaction],
    needs_validation: bool,
) -> CommitOutcome {
    let anti_rw_commits = count_anti_rw_commits(store, txns);
    let statuses = if needs_validation {
        mvcc_validate_and_apply(store, block_no, txns)
    } else {
        apply_without_validation(store, block_no, txns)
    };
    CommitOutcome {
        statuses,
        anti_rw_commits,
    }
}
