//! Time-travel (reenactment) queries over the retained version history.
//!
//! The multi-version store already holds everything a historical audit needs: every key maps
//! to its full chain of `(version, value)` pairs, sorted by commit slot. [`TimeTravel`] turns
//! that into the reenactment query surface of Arab et al. (PAPERS.md): *what was the value of
//! `key` as of block `h`?* (`value_as_of`), *how did it evolve between `h0` and `h1`?*
//! (`history_range`), and *which commit slot produced the visible value?* (`version_as_of` —
//! the store half of provenance; `eov_ledger::reenact` joins the slot back to the committing
//! transaction). Answers below the pruning horizon are refused with the same
//! [`CommonError::SnapshotPruned`](eov_common::error::CommonError::SnapshotPruned) contract as
//! snapshot reads, because pruned chains no longer hold the evidence.
//!
//! All three backends answer identically for the same committed writes — sharding partitions
//! the key space without changing any per-key chain — which the cold-recovery batteries
//! assert against a block-by-block replayed oracle.

use crate::mvstore::{MultiVersionStore, VersionedValue};
use crate::sharded::ShardedStore;
use crate::shared::StoreBackend;
use eov_common::error::{CommonError, Result};
use eov_common::rwset::Key;
use eov_common::version::SeqNo;

/// Historical queries over a multi-versioned backend.
pub trait TimeTravel {
    /// Full version history of `key` (oldest first); empty if never written.
    fn full_history(&self, key: &Key) -> &[VersionedValue];

    /// The lowest block height whose history is still complete (the pruning horizon).
    fn oldest_queryable(&self) -> u64;

    /// The value of `key` as of the snapshot after block `height`: the newest version whose
    /// block component is `<= height`. Errors below the pruning horizon.
    fn value_as_of(&self, key: &Key, height: u64) -> Result<Option<&VersionedValue>> {
        if height < self.oldest_queryable() {
            return Err(CommonError::SnapshotPruned(height));
        }
        let chain = self.full_history(key);
        let idx = chain.partition_point(|v| v.version <= SeqNo::new(height, u32::MAX));
        Ok(idx.checked_sub(1).map(|i| &chain[i]))
    }

    /// Every version of `key` committed in blocks `h0..=h1` (oldest first). Errors if `h0` is
    /// below the pruning horizon (versions there may already be gone).
    fn history_range(&self, key: &Key, h0: u64, h1: u64) -> Result<&[VersionedValue]> {
        if h0 < self.oldest_queryable() {
            return Err(CommonError::SnapshotPruned(h0));
        }
        let chain = self.full_history(key);
        let lo = chain.partition_point(|v| v.version.block < h0);
        let hi = chain.partition_point(|v| v.version <= SeqNo::new(h1, u32::MAX));
        Ok(&chain[lo..hi.max(lo)])
    }

    /// The commit slot `(block, seq)` that produced the value visible at `height`, if any —
    /// the key into the ledger for provenance resolution.
    fn version_as_of(&self, key: &Key, height: u64) -> Result<Option<SeqNo>> {
        Ok(self.value_as_of(key, height)?.map(|v| v.version))
    }
}

impl TimeTravel for MultiVersionStore {
    fn full_history(&self, key: &Key) -> &[VersionedValue] {
        self.history(key)
    }

    fn oldest_queryable(&self) -> u64 {
        self.pruned_below()
    }
}

impl TimeTravel for ShardedStore {
    fn full_history(&self, key: &Key) -> &[VersionedValue] {
        self.history(key)
    }

    fn oldest_queryable(&self) -> u64 {
        self.pruned_below()
    }
}

impl TimeTravel for StoreBackend {
    fn full_history(&self, key: &Key) -> &[VersionedValue] {
        self.history(key)
    }

    fn oldest_queryable(&self) -> u64 {
        self.pruned_below()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{StateRead, StateStore};
    use eov_common::rwset::Value;
    use eov_common::txn::Transaction;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    /// A backend with key `A` rewritten in blocks 1..=5 (value = block) plus genesis 0.
    fn populated(shards: usize) -> StoreBackend {
        let mut store = StoreBackend::for_shards(shards);
        store.seed_genesis([(k("A"), Value::from_i64(0)), (k("B"), Value::from_i64(-1))]);
        for b in 1..=5u64 {
            let txn = Transaction::from_parts(b, b - 1, [], [(k("A"), Value::from_i64(b as i64))]);
            store.apply_block(b, [(&txn, 1)]);
        }
        store
    }

    #[test]
    fn value_as_of_matches_read_at_on_every_backend() {
        for shards in [0usize, 2, 4] {
            let store = populated(shards);
            for h in 0..=6u64 {
                for key in [k("A"), k("B"), k("missing")] {
                    assert_eq!(
                        store.value_as_of(&key, h).unwrap(),
                        store.read_at(&key, h).unwrap(),
                        "S={shards} {key} @ {h}"
                    );
                }
            }
        }
    }

    #[test]
    fn history_range_slices_the_chain_by_block() {
        let store = populated(2);
        let mid = store.history_range(&k("A"), 2, 4).unwrap();
        let blocks: Vec<u64> = mid.iter().map(|v| v.version.block).collect();
        assert_eq!(blocks, vec![2, 3, 4]);
        // Degenerate and out-of-range windows are empty, not errors.
        assert!(store.history_range(&k("A"), 4, 2).unwrap().is_empty());
        assert!(store.history_range(&k("A"), 9, 12).unwrap().is_empty());
        // Full range covers genesis too.
        assert_eq!(store.history_range(&k("A"), 0, 5).unwrap().len(), 6);
    }

    #[test]
    fn version_as_of_returns_the_committing_slot() {
        let store = populated(0);
        assert_eq!(
            store.version_as_of(&k("A"), 3).unwrap(),
            Some(SeqNo::new(3, 1))
        );
        assert_eq!(
            store.version_as_of(&k("B"), 3).unwrap(),
            Some(SeqNo::new(0, 2))
        );
        assert_eq!(store.version_as_of(&k("missing"), 3).unwrap(), None);
    }

    #[test]
    fn queries_below_the_pruning_horizon_are_refused() {
        let mut store = populated(0);
        store.prune_versions_below(3);
        assert_eq!(
            store.value_as_of(&k("A"), 2),
            Err(CommonError::SnapshotPruned(2))
        );
        assert_eq!(
            store.history_range(&k("A"), 1, 5),
            Err(CommonError::SnapshotPruned(1))
        );
        // At or above the horizon still answers.
        assert!(store.value_as_of(&k("A"), 3).unwrap().is_some());
        assert!(!store.history_range(&k("A"), 3, 5).unwrap().is_empty());
    }
}
