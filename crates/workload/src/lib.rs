//! # eov-workload
//!
//! The benchmark workloads of the paper's evaluation:
//!
//! * [`zipf`] — a Zipfian index sampler (inverse-CDF over `1/i^θ` weights), used by the
//!   Figure 1 motivation experiment and the Figure 15 mixed workload.
//! * [`contracts`] — the smart-contract abstraction plus the no-op and single-key-update
//!   contracts of Figure 1.
//! * [`smallbank`] — the Smallbank contract family: the original operation mix used in
//!   Section 5.4 and the modified 4-read/4-write transaction of Section 5.2.
//! * [`generator`] — workload generators parameterised exactly like Table 2 (hot ratios,
//!   client delay, read interval, request rate) and Section 5.4 (Create-Account and mixed
//!   workloads with Zipfian skew).
//! * [`templates`] — Vandevoort-style template-robustness analysis: classifies each
//!   template in a workload's mix as safe (provably cycle-free) or unknown, feeding the
//!   orderer's `template_fastpath` knob.
//! * [`conflict`] — the key-granular refinement of [`templates`]: symbolic per-template
//!   key-expression footprints with functional constraints, a static template×template
//!   conflict matrix, and **instance-level** safe classification (rescuing e.g. YCSB-B read
//!   transactions whose sampled keys provably miss the write partition).

#![forbid(unsafe_code)]

pub mod conflict;
pub mod contracts;
pub mod generator;
pub mod smallbank;
pub mod templates;
pub mod ycsb;
pub mod zipf;

pub use conflict::{ConflictAnalyzer, ConflictMatrix, KeyExpr, ParamDomain, TemplateFootprint};
pub use contracts::{KvUpdateContract, NoOpContract, SmartContract};
pub use generator::{TxnTemplate, WorkloadGenerator, WorkloadKind};
pub use smallbank::{SmallbankContract, SmallbankOp};
pub use templates::{TemplateClassifier, TemplateSpec};
pub use ycsb::{YcsbOp, YcsbProfile, YcsbTxn};
pub use zipf::Zipfian;
