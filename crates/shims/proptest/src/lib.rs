//! Offline shim for the subset of `proptest` used by this workspace.
//!
//! Provides the `proptest!` / `prop_assert*!` macros, the [`Strategy`] trait
//! with `prop_map`, range and tuple strategies, `collection::{vec, hash_set}`,
//! `any::<T>()`, `sample::Index` and `ProptestConfig::with_cases`.
//!
//! Semantics: each test runs `cases` randomized iterations, seeded
//! deterministically from the test's module path and name plus the case
//! index, so failures reproduce run-to-run. Unlike upstream proptest there is
//! **no shrinking** — a failing case panics with the normal assertion message
//! (generated inputs are visible via `Debug` in the assertion you write).

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::hash::{Hash, Hasher};

    /// Runner configuration; only `cases` is honoured by this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of randomized cases each test executes.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 48 }
        }
    }

    impl ProptestConfig {
        /// Configuration running `cases` iterations per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic per-(test, case) generator used by the `proptest!` macro.
    pub fn rng_for_case(test_path: &str, case: u32) -> StdRng {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        test_path.hash(&mut hasher);
        case.hash(&mut hasher);
        StdRng::seed_from_u64(hasher.finish())
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($($s:ident.$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Weighted union of boxed strategies over one value type — what the `prop_oneof!` macro
    /// builds. Arm weights mirror upstream's `w => strategy` syntax.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u32,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if no arm is given or every weight is zero.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| *w).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! needs a positive total weight"
            );
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total_weight);
            for (weight, strat) in &self.arms {
                if pick < *weight {
                    return strat.generate(rng);
                }
                pick -= weight;
            }
            unreachable!("weights sum to total_weight");
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s of `elem`-generated values with `len` in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s with a target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generates `HashSet`s of `elem`-generated values. The target size is
    /// drawn from `size`; if the element domain is too small to reach it,
    /// the set is as large as a bounded number of draws allows.
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
            let target = rng.gen_range(self.size.clone());
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(16) + 16 {
                set.insert(self.elem.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngCore;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// The canonical strategy for `T`, i.e. `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    /// Returns the canonical full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod sample {
    use super::arbitrary::Arbitrary;
    use rand::rngs::StdRng;
    use rand::RngCore;

    /// An index into a collection whose length is only known at use time.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub struct Index(usize);

    impl Index {
        /// Projects this index into `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index called with an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut StdRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice between strategies yielding one value type, mirroring upstream's
/// `prop_oneof![w1 => s1, s2, ...]` (arms without a weight default to 1; weighted and
/// unweighted arms may be mixed).
#[macro_export]
macro_rules! prop_oneof {
    (@arms [$($acc:tt)*]) => {
        $crate::strategy::Union::new(vec![$($acc)*])
    };
    (@arms [$($acc:tt)*] $weight:literal => $strat:expr $(, $($rest:tt)*)?) => {
        $crate::prop_oneof!(@arms [
            $($acc)*
            ($weight, Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),
        ] $($($rest)*)?)
    };
    (@arms [$($acc:tt)*] $strat:expr $(, $($rest:tt)*)?) => {
        $crate::prop_oneof!(@arms [
            $($acc)*
            (1u32, Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),
        ] $($($rest)*)?)
    };
    ($($arms:tt)+) => {
        $crate::prop_oneof!(@arms [] $($arms)+)
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic randomized iterations.
#[macro_export]
macro_rules! proptest {
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn tuples_and_map_compose(pair in (0u64..100, 0u64..100).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 199, "sum of two sub-100 values");
        }

        #[test]
        fn hash_sets_hit_their_target(s in prop::collection::hash_set(any::<u64>(), 3..6)) {
            prop_assert!((3..6).contains(&s.len()));
        }

        #[test]
        fn index_projects_into_range(idx in any::<prop::sample::Index>(), len in 1usize..50) {
            prop_assert!(idx.index(len) < len);
        }

        #[test]
        fn oneof_draws_from_every_weighted_arm(
            picks in prop::collection::vec(
                prop_oneof![
                    3 => (0u64..10).prop_map(|v| v),
                    1 => (100u64..110).prop_map(|v| v),
                    Just(555u64),
                ],
                40..60,
            )
        ) {
            prop_assert!(picks
                .iter()
                .all(|&v| v < 10u64 || (100u64..110).contains(&v) || v == 555));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::rng_for_case("x::y", 3);
        let b = crate::test_runner::rng_for_case("x::y", 3);
        use rand::RngCore;
        let (mut a, mut b) = (a, b);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
