//! Orderer replicas: the composition of a consensus-log cursor, a leader policy and a block
//! cutter into one replicated orderer front-end, plus a small multi-replica harness used to
//! check the agreement property of Section 3.5.
//!
//! The concurrency control itself is *not* wired in here (that would invert the crate
//! dependencies); instead the replica exposes the deterministic transaction stream and block
//! boundaries, and the caller (simulator, tests, or the FabricSharp orderer service in
//! `eov-baselines`) plugs its CC between `next_transaction` and `cut`.

use crate::adversary::{ClientSubmission, LeaderPolicy};
use crate::log::{ConsensusLog, LogCursor, Submission};
use crate::orderer::{BlockCutter, CutBatch};
use eov_common::config::BlockConfig;
use eov_common::txn::Transaction;

/// One orderer replica: replays the shared total order and cuts blocks deterministically.
#[derive(Debug)]
pub struct OrdererReplica {
    /// Replica identifier (diagnostics only).
    pub id: u32,
    cursor: LogCursor,
    cutter: BlockCutter,
    /// Blocks cut so far (transaction batches in consensus order).
    blocks: Vec<CutBatch>,
}

impl OrdererReplica {
    /// Creates a replica reading from `log` with the given block-formation configuration.
    pub fn new(id: u32, log: &ConsensusLog, config: BlockConfig) -> Self {
        OrdererReplica {
            id,
            cursor: log.cursor(),
            cutter: BlockCutter::new(config),
            blocks: Vec::new(),
        }
    }

    /// Pulls every available transaction from the log at simulated time `now_ms`, enqueueing
    /// each and cutting blocks whenever the size condition fires. Returns how many
    /// transactions were consumed.
    pub fn drain(&mut self, now_ms: u64) -> usize {
        let mut consumed = 0;
        while let Some(Submission { txn, .. }) = self.cursor.poll() {
            consumed += 1;
            if let Some(batch) = self.cutter.enqueue(txn, now_ms) {
                self.blocks.push(batch);
            }
        }
        consumed
    }

    /// Fires the timeout condition at simulated time `now_ms`.
    pub fn tick(&mut self, now_ms: u64) {
        if let Some(batch) = self.cutter.maybe_cut_on_timeout(now_ms) {
            self.blocks.push(batch);
        }
    }

    /// Flushes whatever is pending (end of run).
    pub fn flush(&mut self, now_ms: u64) {
        if let Some(batch) = self.cutter.flush(now_ms) {
            self.blocks.push(batch);
        }
    }

    /// The blocks this replica has cut so far.
    pub fn blocks(&self) -> &[CutBatch] {
        &self.blocks
    }

    /// The transaction-id sequences of the cut blocks — the canonical representation compared
    /// across replicas for agreement.
    pub fn block_ids(&self) -> Vec<Vec<u64>> {
        self.blocks
            .iter()
            .map(|b| b.txns.iter().map(|t| t.id.0).collect())
            .collect()
    }
}

/// A set of orderer replicas fed from one consensus log, with an optional leader policy that
/// decides the order in which client submissions enter the log (the Section 3.5 threat model:
/// the leader controls the tentative order, the replicas merely replay it).
pub struct ReplicaSet<L: LeaderPolicy> {
    log: ConsensusLog,
    leader: L,
    replicas: Vec<OrdererReplica>,
}

impl<L: LeaderPolicy> ReplicaSet<L> {
    /// Creates `n` replicas sharing one log, with `leader` deciding the proposal order.
    pub fn new(n: u32, config: BlockConfig, leader: L) -> Self {
        let log = ConsensusLog::new();
        let replicas = (0..n)
            .map(|id| OrdererReplica::new(id, &log, config))
            .collect();
        ReplicaSet {
            log,
            leader,
            replicas,
        }
    }

    /// Submits a batch of client submissions through the leader and into the total order.
    /// Commitment submissions are revealed after sequencing; reveals that do not match their
    /// commitment are dropped (and counted in the return value's second component).
    pub fn submit_batch(&mut self, submissions: Vec<ClientSubmission>) -> (usize, usize) {
        let proposed = self.leader.propose_order(submissions);
        let mut accepted = 0;
        let mut rejected = 0;
        for submission in proposed {
            match submission.reveal() {
                Ok(txn) => {
                    self.log.append(Submission { txn, submitter: 0 });
                    accepted += 1;
                }
                Err(_) => rejected += 1,
            }
        }
        (accepted, rejected)
    }

    /// Convenience: submits plain transactions.
    pub fn submit_plain(&mut self, txns: Vec<Transaction>) {
        let submissions = txns.into_iter().map(ClientSubmission::Plain).collect();
        let _ = self.submit_batch(submissions);
    }

    /// Lets every replica drain the log and cut blocks at simulated time `now_ms`.
    pub fn step(&mut self, now_ms: u64) {
        for replica in &mut self.replicas {
            replica.tick(now_ms);
            replica.drain(now_ms);
        }
    }

    /// Flushes every replica.
    pub fn flush(&mut self, now_ms: u64) {
        for replica in &mut self.replicas {
            replica.flush(now_ms);
        }
    }

    /// The agreement predicate: every replica has cut exactly the same blocks in the same
    /// order.
    pub fn in_agreement(&self) -> bool {
        let Some(first) = self.replicas.first() else {
            return true;
        };
        let reference = first.block_ids();
        self.replicas.iter().all(|r| r.block_ids() == reference)
    }

    /// Access to the individual replicas.
    pub fn replicas(&self) -> &[OrdererReplica] {
        &self.replicas
    }

    /// The shared consensus log (e.g. to attach extra cursors in tests).
    pub fn log(&self) -> &ConsensusLog {
        &self.log
    }

    /// The leader policy (e.g. to inspect how many attacks a malicious leader launched).
    pub fn leader(&self) -> &L {
        &self.leader
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::HonestLeader;
    use eov_common::rwset::{Key, Value};
    use eov_common::version::SeqNo;

    fn txn(id: u64) -> Transaction {
        Transaction::from_parts(
            id,
            0,
            [(Key::new("A"), SeqNo::new(0, 1))],
            [(Key::new("B"), Value::from_i64(id as i64))],
        )
    }

    #[test]
    fn replicas_agree_on_block_boundaries_and_contents() {
        let config = BlockConfig {
            max_txns_per_block: 4,
            block_timeout_ms: 1_000,
        };
        let mut set = ReplicaSet::new(3, config, HonestLeader);
        set.submit_plain((1..=10).map(txn).collect());
        set.step(5);
        set.flush(10);
        assert!(set.in_agreement());
        let blocks = set.replicas()[0].block_ids();
        assert_eq!(
            blocks.len(),
            3,
            "10 txns at 4 per block = 2 full blocks + 1 flushed"
        );
        assert_eq!(blocks[0], vec![1, 2, 3, 4]);
        assert_eq!(blocks[2], vec![9, 10]);
        assert_eq!(set.log().len(), 10);
    }

    #[test]
    fn replicas_that_join_late_still_agree() {
        let config = BlockConfig {
            max_txns_per_block: 3,
            block_timeout_ms: 1_000,
        };
        let mut set = ReplicaSet::new(1, config, HonestLeader);
        set.submit_plain((1..=6).map(txn).collect());
        set.step(1);

        // A second "replica" created afterwards replays the same log from the start.
        let mut late = OrdererReplica::new(9, set.log(), config);
        late.drain(2);
        late.flush(3);
        set.flush(3);
        assert_eq!(late.block_ids(), set.replicas()[0].block_ids());
        assert_eq!(late.blocks().len(), 2);
    }

    #[test]
    fn timeout_cuts_are_replicated_too() {
        let config = BlockConfig {
            max_txns_per_block: 100,
            block_timeout_ms: 50,
        };
        let mut set = ReplicaSet::new(2, config, HonestLeader);
        set.submit_plain(vec![txn(1), txn(2)]);
        set.step(0); // both replicas enqueue at t=0
        set.step(60); // timeout fires on both
        assert!(set.in_agreement());
        assert_eq!(set.replicas()[0].blocks().len(), 1);
        assert_eq!(set.replicas()[0].blocks()[0].txns.len(), 2);
    }

    #[test]
    fn mismatched_reveals_are_dropped_before_entering_the_order() {
        use crate::adversary::commitment_of;
        let config = BlockConfig::default();
        let mut set = ReplicaSet::new(1, config, HonestLeader);
        let good = ClientSubmission::committed(txn(1));
        let bad = {
            let original = txn(2);
            let mut mutated = original.clone();
            mutated.write_set.record(Key::new("B"), Value::from_i64(-1));
            ClientSubmission::Committed {
                commitment: commitment_of(&original),
                sealed: mutated,
            }
        };
        let (accepted, rejected) = set.submit_batch(vec![good, bad]);
        assert_eq!(accepted, 1);
        assert_eq!(rejected, 1);
        assert_eq!(set.log().len(), 1);
    }
}
