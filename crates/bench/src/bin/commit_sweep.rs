//! Commit-path scaling sweep — the multi-core story of the parallel wave scheduler.
//!
//! ```text
//! cargo run --release -p eov-bench --bin commit_sweep
//! ```
//!
//! Two views of `E = CcConfig::execution_threads`:
//!
//! 1. **Micro** — [`fabricsharp_core::scheduler::CommitScheduler::commit_block`] on synthetic
//!    blocks at every `E × S` point: a 4096-txn *disjoint* block (one maximal wave — the
//!    embarrassingly parallel upper bound) and a 4096-txn *hot-40* block (blind writers over
//!    40 keys — narrow waves, the coordination-bound lower bound). Medians of wall-clock
//!    nanoseconds plus the speedup over the `E = 0` serial reference of the same `S`.
//! 2. **End-to-end** — the simulator's measured per-block validate/commit wall-clock and wave
//!    statistics for FabricSharp on write-partitioned YCSB-B at `E × W` (formation threads
//!    compose with execution threads; the ledger is bit-identical at every point — see
//!    `tests/scheduler_determinism.rs`).

use eov_baselines::api::SystemKind;
use eov_bench::banner;
use eov_common::rwset::Key;
use eov_common::rwset::Value;
use eov_common::txn::Transaction;
use eov_common::version::SeqNo;
use eov_sim::{SimulationConfig, Simulator};
use eov_vstore::{into_shared_backend, StateStore, StoreBackend};
use eov_workload::generator::WorkloadKind;
use eov_workload::YcsbProfile;
use fabricsharp_core::scheduler::CommitScheduler;
use std::sync::Arc;
use std::time::Instant;

/// Timed runs per point; the reported number is the median.
const RUNS: usize = 9;
/// Transactions per synthetic block.
const BLOCK: usize = 4096;

const EXECUTION_THREADS: [usize; 4] = [0, 1, 2, 4];
const STORE_SHARDS: [usize; 2] = [0, 4];

/// `BLOCK` transactions, each reading its own genesis key and writing it back: zero
/// conflicts, so the planner emits a single block-wide wave and both the staleness probes and
/// the write installation fan out across every worker.
fn disjoint_block() -> Vec<Transaction> {
    (0..BLOCK as u64)
        .map(|i| {
            Transaction::from_parts(
                i + 1,
                0,
                [(Key::new(format!("acct:{i}")), SeqNo::new(0, i as u32 + 1))],
                [(Key::new(format!("acct:{i}")), Value::from_i64(2))],
            )
        })
        .collect()
}

/// Seeded backend for the disjoint input at a given shard count (genesis versions are
/// assigned in iteration order by `seed_genesis`, identically for every backend shape).
fn disjoint_block_seed(shards: usize) -> StoreBackend {
    let mut backend = StoreBackend::for_shards(shards);
    backend.seed_genesis((0..BLOCK).map(|i| (Key::new(format!("acct:{i}")), Value::from_i64(1))));
    backend
}

/// `BLOCK` blind writers over 40 hot keys: every 41st transaction collides, so waves stay
/// ~40 wide and the scheduler is dominated by wave barriers rather than execution — the
/// stress case for coordination overhead.
fn hot_block() -> Vec<Transaction> {
    (0..BLOCK as u64)
        .map(|i| {
            Transaction::from_parts(
                i + 1,
                0,
                [],
                [(
                    Key::new(format!("hot:{}", i % 40)),
                    Value::from_i64(i as i64),
                )],
            )
        })
        .collect()
}

/// Median wall-clock nanoseconds of committing `txns` as block 1 on a clone of `seed`, with
/// an `E`-thread scheduler (the pool is spawned once, outside the timed region).
fn median_commit_ns(seed: &StoreBackend, txns: &Arc<Vec<Transaction>>, execution: usize) -> f64 {
    let mut scheduler = CommitScheduler::new(execution);
    let mut samples: Vec<u128> = Vec::with_capacity(RUNS + 1);
    for _ in 0..=RUNS {
        let store = into_shared_backend(seed.clone());
        let start = Instant::now();
        let outcome = scheduler.commit_block(&store, 1, txns, true);
        let elapsed = start.elapsed().as_nanos();
        assert_eq!(outcome.statuses.len(), txns.len());
        samples.push(elapsed);
    }
    samples.remove(0); // warm-up
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

fn micro_sweep(
    label: &str,
    seed_for: impl Fn(usize) -> StoreBackend,
    txns: &Arc<Vec<Transaction>>,
) {
    println!(
        "{label} ({} txns/block; median of {RUNS} commits)",
        txns.len()
    );
    println!(
        "{:<10}{:>16}{:>16}{:>12}",
        "S shards", "E threads", "commit µs", "vs E=0"
    );
    for shards in STORE_SHARDS {
        let seed = seed_for(shards);
        let serial = median_commit_ns(&seed, txns, 0);
        for execution in EXECUTION_THREADS {
            let ns = if execution == 0 {
                serial
            } else {
                median_commit_ns(&seed, txns, execution)
            };
            println!(
                "{:<10}{:>16}{:>16.0}{:>11.2}x",
                shards,
                execution,
                ns / 1_000.0,
                serial / ns
            );
        }
    }
    println!();
}

fn main() {
    banner(
        "commit_sweep",
        "parallel wave-commit scaling: E (execution threads) x S (store shards) x W (formation threads)",
    );
    println!(
        "detected parallelism on this machine: {}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let disjoint = Arc::new(disjoint_block());
    let hot = Arc::new(hot_block());
    micro_sweep(
        "disjoint block (single maximal wave)",
        disjoint_block_seed,
        &disjoint,
    );
    micro_sweep(
        "hot-40 block (narrow ww waves)",
        StoreBackend::for_shards,
        &hot,
    );

    // End-to-end: the simulator's measured commit wall-clock and wave shape at E x W.
    println!("end-to-end simulator sweep: FabricSharp, write-partitioned YCSB-B, S=4");
    println!(
        "{:<6}{:>6}{:>10}{:>12}{:>12}{:>10}{:>12}{:>10}",
        "W", "E", "eff tps", "commit p50", "commit p99", "waves/b", "mean width", "widened"
    );
    for formation in [0usize, 2] {
        for execution in [0usize, 2, 4] {
            let mut config = SimulationConfig::new(
                SystemKind::FabricSharp,
                WorkloadKind::Ycsb(YcsbProfile::b().with_write_partition(0.2)),
            );
            config.duration_s = 3.0;
            config.store_shards = 4;
            config.formation_threads = formation;
            config.execution_threads = execution;
            let report = Simulator::run(&config);
            println!(
                "{:<6}{:>6}{:>10.0}{:>10.0}µs{:>10.0}µs{:>10.2}{:>12.1}{:>10}",
                formation,
                execution,
                report.effective_tps(),
                report.commit.p50_us,
                report.commit.p99_us,
                report.wave.waves_per_block(),
                report.wave.mean_wave_width(),
                report.wave.widened,
            );
        }
    }
    println!(
        "\nThe disjoint micro block is the scaling upper bound (one wave, perfectly parallel\n\
         probes + sharded applies); the hot-40 block bounds coordination overhead (barriers\n\
         every ~40 txns). End-to-end, E>=1 leaves ledger, store and report bit-identical to\n\
         E=0 — the sweep only moves the measured commit wall-clock and the wave shape."
    );
}
