//! # eov-vstore
//!
//! The versioned state substrate of the EOV blockchain:
//!
//! * [`mvstore::MultiVersionStore`] — the peers' state database. Every entry is a
//!   `(key, version, value)` tuple whose version is the `(block, seq)` slot of the transaction
//!   that installed it (Figure 2a of the paper). The store keeps *all* versions so that any
//!   block snapshot can be read back, which is exactly the storage-snapshot mechanism
//!   Algorithm 1 relies on (Section 4.2).
//! * [`snapshot`] — block snapshot handles and the snapshot manager that pins/prunes them.
//! * [`index`] — the orderer-side committed-transaction indices `CommittedWriteTxns` (CW) and
//!   `CommittedReadTxns` (CR) of Section 4.3. The paper stores these in LevelDB; here they are
//!   ordered in-memory maps exposing the same query surface (`Before`, `Last`, range-from).
//! * [`pending`] — the in-memory `PendingWriteTxns` (PW) / `PendingReadTxns` (PR) indices over
//!   the not-yet-ordered transactions.
//! * [`shared`] — the [`shared::SharedStore`] handle used by the concurrent pipeline to share
//!   one store between endorser shards (readers) and the committer (writer), plus the
//!   compile-time `Send + Sync` audit of every stage-crossing substrate type.
//! * [`state`] — the [`state::StateRead`] / [`state::StateStore`] traits every backend
//!   implements, so the endorsement and commit paths are backend-agnostic.
//! * [`sharded`] — the key-space sharding layer: [`sharded::ShardedStore`] partitions the
//!   multi-version store across `S` shards behind a deterministic
//!   [`eov_common::shard::ShardRouter`], and [`sharded::ShardedIndices`] partitions the
//!   CW/CR/PW/PR dependency-resolution indices the same way.
//! * [`timetravel`] — the reenactment query surface over the retained history:
//!   [`timetravel::TimeTravel`] answers "value of `key` as of block `h`", block-range
//!   histories, and the commit slot behind any visible value, identically on every backend.

#![forbid(unsafe_code)]

pub mod index;
pub mod mvstore;
pub mod pending;
pub mod sharded;
pub mod shared;
pub mod snapshot;
pub mod state;
pub mod timetravel;

pub use index::{CommittedReadIndex, CommittedWriteIndex};
pub use mvstore::{MultiVersionStore, VersionedValue};
pub use pending::PendingIndex;
pub use sharded::{ShardedIndices, ShardedStore};
pub use shared::{into_shared, into_shared_backend, SharedStore, StoreBackend};
pub use snapshot::{SnapshotManager, SnapshotView};
pub use state::{StateRead, StateStore};
pub use timetravel::TimeTravel;
