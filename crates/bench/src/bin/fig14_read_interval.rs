//! Figure 14 — throughput and abort-rate breakdown as the read interval (simulating
//! computation-heavy contracts) sweeps 0 … 200 ms.
//!
//! ```text
//! cargo run --release -p eov-bench --bin fig14_read_interval
//! ```

use eov_baselines::api::SystemKind;
use eov_bench::{banner, print_throughput_table, run_all_systems};
use eov_common::config::ExperimentGrid;
use eov_sim::SimulationConfig;
use eov_workload::generator::WorkloadKind;

fn main() {
    banner(
        "Figure 14",
        "throughput (left) and abort-rate breakdown (right) under varying read interval",
    );
    let grid = ExperimentGrid::default();
    let mut rows = Vec::new();
    for &interval in &grid.read_intervals_ms {
        let mut base = SimulationConfig::new(SystemKind::Fabric, WorkloadKind::ModifiedSmallbank);
        base.params.read_interval_ms = interval;
        rows.push((format!("{interval} ms"), run_all_systems(base)));
    }

    print_throughput_table(
        "read interval",
        &rows,
        |r| r.effective_tps(),
        "effective tps",
    );

    // Abort breakdown for the three systems the paper highlights in the right panel.
    for system in [
        SystemKind::FoccS,
        SystemKind::FabricPlusPlus,
        SystemKind::FabricSharp,
    ] {
        let index = SystemKind::all()
            .iter()
            .position(|s| *s == system)
            .expect("known system");
        println!("Abort breakdown — {}", system.label());
        println!(
            "{:<14} {:>16} {:>18} {:>18} {:>10} {:>12}",
            "read interval",
            "Concurrent-ww",
            "2 consecutive rw",
            "Simulation abort",
            "Others",
            "abort rate"
        );
        for (x, reports) in &rows {
            let report = &reports[index];
            let breakdown = report.abort_breakdown();
            let get = |name: &str| {
                breakdown
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, f)| *f * 100.0)
                    .unwrap_or(0.0)
            };
            println!(
                "{:<14} {:>15.1}% {:>17.1}% {:>17.1}% {:>9.1}% {:>11.1}%",
                x,
                get("Concurrent-ww"),
                get("2 consecutive rw"),
                get("Simulation abort"),
                get("Others"),
                report.abort_rate() * 100.0
            );
        }
        println!();
    }

    println!(
        "Paper's shape: vanilla Fabric collapses (its execute-phase lock serialises long\n\
         simulations against block commit); Fabric++ loses throughput to simulation aborts\n\
         (cross-block reads); Focc-s accumulates concurrent-ww and dangerous-structure aborts;\n\
         Fabric# degrades the most gracefully."
    );
}
