//! Template-robustness static analysis.
//!
//! Vandevoort et al. ("Robustness against Read Committed for Transaction Templates", VLDB'21)
//! show that serializability violations under weak protocols can be ruled out *statically*,
//! by conflict-graph reasoning over transaction **templates** — the read/write key-set shapes
//! a workload draws from — rather than over individual transactions. This module applies the
//! same idea to FabricSharp's orderer-side reordering: a template is classified
//! [`TemplateClass::Safe`] when no instance of it can ever sit on a dependency cycle given the
//! whole template mix, which lets the orderer skip graph insertion and cycle probing for those
//! transactions entirely (`CcConfig::template_fastpath`).
//!
//! # Classification rule
//!
//! Templates are abstracted to *key families* — the key-space prefixes a workload touches
//! (`checking:`, `savings:`, `usertable:`, `kv:`). Template `i` in mix `M` is **safe** iff
//!
//! 1. no template in `M` (including `i` itself) writes any family `i` reads, and
//! 2. `i` writes nothing, or every write of `i` targets *fresh* keys (brand-new, globally
//!    unique per instance, e.g. Create-Account's monotone account ids) in families no *other*
//!    template in `M` reads or writes.
//!
//! Everything else is [`TemplateClass::Unknown`] and takes the fully tracked path.
//!
//! # Safety argument
//!
//! A dependency cycle through an instance `t` needs at least one edge *into* `t` and one
//! *out of* `t`. Every edge kind the orderer tracks (wr, ww, rw anti-dependencies, and their
//! committed/near variants) requires a key shared between `t`'s read or write set and the
//! other transaction's write or read set:
//!
//! * Rule 1 kills every edge incident to `t`'s reads: nobody writes those families, so no
//!   wr edge into `t` and no rw/anti-rw edge out of `t` can exist.
//! * Rule 2 kills every edge incident to `t`'s writes: either there are none, or the written
//!   keys are fresh — no earlier transaction wrote them (no ww into `t`) and no concurrent
//!   template instance reads or writes them (no wr/ww out of `t`, no rw into `t`; two
//!   instances of `i` write disjoint fresh keys by construction).
//!
//! With no in-edge or no out-edge possible, `t` cannot lie on any cycle — so dropping it from
//! the dependency graph cannot change any other transaction's cycle verdict, and its own
//! verdict is always "acyclic". The rule is deliberately conservative: read-only templates are
//! *not* safe when any template in the mix writes their families (a pending writer with a
//! stale snapshot can pick up a near-wr predecessor plus an anti-rw successor through such a
//! reader, closing a cycle through it), which is why YCSB-B's 95%-read traffic still takes
//! the slow path while YCSB-C qualifies wholesale.

use crate::generator::{TxnTemplate, WorkloadKind};
use crate::ycsb::YcsbProfile;
use eov_common::txn::TemplateClass;
use std::collections::HashMap;

/// A key family: the key-space prefix a template's operations target.
pub type KeyFamily = &'static str;

/// The `kv:` family (the Figure 1 single-key-update workload).
pub const FAMILY_KV: KeyFamily = "kv";
/// The `checking:` family (Smallbank checking balances).
pub const FAMILY_CHECKING: KeyFamily = "checking";
/// The `savings:` family (Smallbank savings balances).
pub const FAMILY_SAVINGS: KeyFamily = "savings";
/// The `usertable:` family (YCSB records).
pub const FAMILY_USERTABLE: KeyFamily = "usertable";

/// The read/write key-set shape of one transaction template.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TemplateSpec {
    /// Stable template name (used to map generated templates back to their spec).
    pub name: &'static str,
    /// Families the template reads.
    pub reads: Vec<KeyFamily>,
    /// Families the template writes.
    pub writes: Vec<KeyFamily>,
    /// Whether every written key is brand-new and globally unique per instance (the
    /// Create-Account pattern). Only fresh writers can be safe despite writing.
    pub fresh_writes: bool,
}

impl TemplateSpec {
    /// A template that only reads.
    pub fn read_only(name: &'static str, reads: impl Into<Vec<KeyFamily>>) -> Self {
        TemplateSpec {
            name,
            reads: reads.into(),
            writes: Vec::new(),
            fresh_writes: false,
        }
    }

    /// A template that reads and writes existing keys.
    pub fn read_write(
        name: &'static str,
        reads: impl Into<Vec<KeyFamily>>,
        writes: impl Into<Vec<KeyFamily>>,
    ) -> Self {
        TemplateSpec {
            name,
            reads: reads.into(),
            writes: writes.into(),
            fresh_writes: false,
        }
    }

    /// A write-only template whose keys are fresh per instance.
    pub fn fresh_writer(name: &'static str, writes: impl Into<Vec<KeyFamily>>) -> Self {
        TemplateSpec {
            name,
            reads: Vec::new(),
            writes: writes.into(),
            fresh_writes: true,
        }
    }
}

/// Classifies every template in `mix` per the module-level rule. The verdicts are
/// mix-relative: the same template can be safe in one mix and unknown in another.
pub fn classify(mix: &[TemplateSpec]) -> Vec<TemplateClass> {
    mix.iter()
        .enumerate()
        .map(|(i, spec)| {
            let reads_clean = spec
                .reads
                .iter()
                .all(|family| mix.iter().all(|other| !other.writes.contains(family)));
            let writes_clean = spec.writes.is_empty()
                || (spec.fresh_writes
                    && spec.writes.iter().all(|family| {
                        mix.iter().enumerate().all(|(j, other)| {
                            j == i
                                || (!other.reads.contains(family) && !other.writes.contains(family))
                        })
                    }));
            if reads_clean && writes_clean {
                TemplateClass::Safe
            } else {
                TemplateClass::Unknown
            }
        })
        .collect()
}

/// The template mix a [`WorkloadKind`] draws from, as key-family shapes.
pub fn catalog(kind: &WorkloadKind) -> Vec<TemplateSpec> {
    match kind {
        WorkloadKind::NoOp => vec![TemplateSpec::read_only("noop", [])],
        WorkloadKind::KvUpdate { .. } => vec![TemplateSpec::read_write(
            "kv-update",
            [FAMILY_KV],
            [FAMILY_KV],
        )],
        WorkloadKind::ModifiedSmallbank => vec![TemplateSpec::read_write(
            "modified-rw",
            [FAMILY_CHECKING],
            [FAMILY_CHECKING],
        )],
        WorkloadKind::MixedSmallbank { .. } => vec![
            TemplateSpec::read_only("query-account", [FAMILY_CHECKING, FAMILY_SAVINGS]),
            TemplateSpec::read_write("deposit-checking", [FAMILY_CHECKING], [FAMILY_CHECKING]),
            TemplateSpec::read_write("write-check", [FAMILY_CHECKING], [FAMILY_CHECKING]),
            TemplateSpec::read_write("transact-savings", [FAMILY_SAVINGS], [FAMILY_SAVINGS]),
            TemplateSpec::read_write("send-payment", [FAMILY_CHECKING], [FAMILY_CHECKING]),
            TemplateSpec::read_write(
                "amalgamate",
                [FAMILY_CHECKING, FAMILY_SAVINGS],
                [FAMILY_CHECKING, FAMILY_SAVINGS],
            ),
        ],
        WorkloadKind::CreateAccount => vec![TemplateSpec::fresh_writer(
            "create-account",
            [FAMILY_CHECKING, FAMILY_SAVINGS],
        )],
        WorkloadKind::Ycsb(profile) => vec![ycsb_spec(profile)],
    }
}

/// The composite YCSB template: one shape covering the whole op mix of a profile (each
/// transaction may combine reads, updates and RMWs, so the template reads `usertable:` when
/// any op kind reads and writes it when any op kind writes).
fn ycsb_spec(profile: &YcsbProfile) -> TemplateSpec {
    let reads = profile.read_fraction > 0.0 || profile.rmw_fraction() > 0.0;
    let writes = profile.update_fraction > 0.0 || profile.rmw_fraction() > 0.0;
    TemplateSpec {
        name: "ycsb",
        reads: if reads {
            vec![FAMILY_USERTABLE]
        } else {
            vec![]
        },
        writes: if writes {
            vec![FAMILY_USERTABLE]
        } else {
            vec![]
        },
        fresh_writes: false,
    }
}

/// The stable spec name of a generated template (see [`catalog`]).
pub fn template_spec_name(template: &TxnTemplate) -> &'static str {
    use crate::smallbank::SmallbankOp;
    match template {
        TxnTemplate::NoOp => "noop",
        TxnTemplate::KvUpdate { .. } => "kv-update",
        TxnTemplate::Smallbank(op) => match op {
            SmallbankOp::CreateAccount { .. } => "create-account",
            SmallbankOp::QueryAccount { .. } => "query-account",
            SmallbankOp::DepositChecking { .. } => "deposit-checking",
            SmallbankOp::WriteCheck { .. } => "write-check",
            SmallbankOp::TransactSavings { .. } => "transact-savings",
            SmallbankOp::SendPayment { .. } => "send-payment",
            SmallbankOp::Amalgamate { .. } => "amalgamate",
            SmallbankOp::ModifiedRw { .. } => "modified-rw",
        },
        TxnTemplate::Ycsb(_) => "ycsb",
    }
}

/// Precomputed per-workload classifier: maps each generated template to its class in the
/// workload's mix. Templates outside the catalog fall back to [`TemplateClass::Unknown`].
#[derive(Clone, Debug)]
pub struct TemplateClassifier {
    classes: HashMap<&'static str, TemplateClass>,
}

impl TemplateClassifier {
    /// Builds the classifier for a workload kind by classifying its whole catalog.
    pub fn new(kind: &WorkloadKind) -> Self {
        let mix = catalog(kind);
        let classes = classify(&mix);
        TemplateClassifier {
            classes: mix
                .iter()
                .zip(classes)
                .map(|(spec, class)| (spec.name, class))
                .collect(),
        }
    }

    /// The class of one generated template.
    pub fn classify_template(&self, template: &TxnTemplate) -> TemplateClass {
        self.classes
            .get(template_spec_name(template))
            .copied()
            .unwrap_or(TemplateClass::Unknown)
    }

    /// Whether any template in the workload's mix is safe (lets callers skip per-transaction
    /// work when the whole mix is unknown).
    pub fn any_safe(&self) -> bool {
        self.classes.values().any(TemplateClass::is_safe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallbank::SmallbankOp;

    fn classes_of(kind: &WorkloadKind) -> Vec<(&'static str, TemplateClass)> {
        let mix = catalog(kind);
        let classes = classify(&mix);
        mix.iter().map(|s| s.name).zip(classes).collect()
    }

    /// The pinned Smallbank / YCSB classification table: these verdicts are part of the
    /// fast path's correctness contract and must not drift silently.
    #[test]
    fn classification_table_is_pinned() {
        use TemplateClass::{Safe, Unknown};
        assert_eq!(classes_of(&WorkloadKind::NoOp), vec![("noop", Safe)]);
        assert_eq!(
            classes_of(&WorkloadKind::KvUpdate { theta: 0.5 }),
            vec![("kv-update", Unknown)]
        );
        assert_eq!(
            classes_of(&WorkloadKind::ModifiedSmallbank),
            vec![("modified-rw", Unknown)]
        );
        assert_eq!(
            classes_of(&WorkloadKind::CreateAccount),
            vec![("create-account", Safe)]
        );
        // Mixed Smallbank: writers cover both families, so even the read-only query is
        // unknown (it can sit between a near-wr predecessor and an anti-rw successor).
        assert_eq!(
            classes_of(&WorkloadKind::MixedSmallbank { theta: 0.5 }),
            vec![
                ("query-account", Unknown),
                ("deposit-checking", Unknown),
                ("write-check", Unknown),
                ("transact-savings", Unknown),
                ("send-payment", Unknown),
                ("amalgamate", Unknown),
            ]
        );
        // YCSB: only the pure-read C mix qualifies.
        assert_eq!(
            classes_of(&WorkloadKind::Ycsb(YcsbProfile::a())),
            vec![("ycsb", Unknown)]
        );
        assert_eq!(
            classes_of(&WorkloadKind::Ycsb(YcsbProfile::b())),
            vec![("ycsb", Unknown)]
        );
        assert_eq!(
            classes_of(&WorkloadKind::Ycsb(YcsbProfile::f())),
            vec![("ycsb", Unknown)]
        );
        assert_eq!(
            classes_of(&WorkloadKind::Ycsb(YcsbProfile::c())),
            vec![("ycsb", Safe)]
        );
    }

    #[test]
    fn classifier_tags_generated_templates() {
        let classifier = TemplateClassifier::new(&WorkloadKind::Ycsb(YcsbProfile::c()));
        assert!(classifier.any_safe());
        let txn = TxnTemplate::Ycsb(crate::ycsb::YcsbTxn { ops: vec![] });
        assert_eq!(classifier.classify_template(&txn), TemplateClass::Safe);
        // Templates outside the catalog are conservatively unknown.
        assert_eq!(
            classifier.classify_template(&TxnTemplate::NoOp),
            TemplateClass::Unknown
        );

        let mixed = TemplateClassifier::new(&WorkloadKind::MixedSmallbank { theta: 0.0 });
        assert!(!mixed.any_safe());
        assert_eq!(
            mixed.classify_template(&TxnTemplate::Smallbank(SmallbankOp::QueryAccount {
                account: 0
            })),
            TemplateClass::Unknown
        );
    }

    #[test]
    fn fresh_writer_demotes_when_anyone_touches_its_families() {
        let create = TemplateSpec::fresh_writer("create", [FAMILY_CHECKING, FAMILY_SAVINGS]);
        assert_eq!(
            classify(std::slice::from_ref(&create)),
            vec![TemplateClass::Safe]
        );

        // A reader of either family demotes the fresh writer — and the reader itself, since
        // the engine conservatively counts fresh writes as writes when checking reads.
        let query = TemplateSpec::read_only("query", [FAMILY_CHECKING]);
        assert_eq!(
            classify(&[create.clone(), query]),
            vec![TemplateClass::Unknown, TemplateClass::Unknown]
        );

        // Losing the freshness guarantee demotes it even alone.
        let mut blind = create;
        blind.fresh_writes = false;
        assert_eq!(classify(&[blind]), vec![TemplateClass::Unknown]);
    }

    #[test]
    fn read_only_is_safe_only_without_writers_on_its_families() {
        let reader = TemplateSpec::read_only("reader", [FAMILY_USERTABLE]);
        assert_eq!(
            classify(std::slice::from_ref(&reader)),
            vec![TemplateClass::Safe]
        );

        let writer = TemplateSpec::read_write("writer", [], [FAMILY_USERTABLE]);
        assert_eq!(
            classify(&[reader.clone(), writer]),
            vec![TemplateClass::Unknown, TemplateClass::Unknown]
        );

        // A writer on a disjoint family leaves the reader safe.
        let other = TemplateSpec::read_write("other", [FAMILY_KV], [FAMILY_KV]);
        assert_eq!(
            classify(&[reader, other]),
            vec![TemplateClass::Safe, TemplateClass::Unknown]
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const FAMILIES: [KeyFamily; 4] = [FAMILY_KV, FAMILY_CHECKING, FAMILY_SAVINGS, FAMILY_USERTABLE];

    fn family_subset() -> impl Strategy<Value = Vec<KeyFamily>> {
        proptest::collection::vec(0usize..FAMILIES.len(), 0..3).prop_map(|idx| {
            let mut fams: Vec<KeyFamily> = idx.into_iter().map(|i| FAMILIES[i]).collect();
            fams.sort_unstable();
            fams.dedup();
            fams
        })
    }

    fn arb_spec() -> impl Strategy<Value = TemplateSpec> {
        (family_subset(), family_subset(), any::<bool>()).prop_map(|(reads, writes, fresh)| {
            TemplateSpec {
                name: "t",
                reads,
                writes,
                fresh_writes: fresh,
            }
        })
    }

    proptest! {
        /// Adding one read op to a safe template never *promotes* anything, and the mutated
        /// template itself demotes whenever the new family has a writer in the mix.
        #[test]
        fn adding_a_conflicting_op_demotes_to_unknown(
            mut mix in proptest::collection::vec(arb_spec(), 1..5),
            target in 0usize..5,
            family in 0usize..FAMILIES.len(),
        ) {
            let target = target % mix.len();
            let family = FAMILIES[family];
            let before = classify(&mix);
            if before[target] != TemplateClass::Safe {
                // Only mutations of *safe* templates are interesting; the strategy produces
                // plenty of safe starting points (read-only and fresh-writer shapes).
                continue;
            }

            // Mutation 1: the safe template gains one non-fresh write op. It must demote —
            // a non-fresh write always admits a ww/rw conflict with a sibling instance.
            let mut mutated = mix.clone();
            if !mutated[target].writes.contains(&family) {
                mutated[target].writes.push(family);
            }
            mutated[target].fresh_writes = false;
            let after = classify(&mutated);
            prop_assert_eq!(
                after[target],
                TemplateClass::Unknown,
                "safe template kept its verdict after gaining write on {}", family
            );

            // Mutation 2: some other template gains a write on a family the safe template
            // reads; the safe template must demote.
            if let Some(&read_family) = mix[target].reads.first() {
                let other = (target + 1) % mix.len();
                if other != target {
                    if !mix[other].writes.contains(&read_family) {
                        mix[other].writes.push(read_family);
                    }
                    let after = classify(&mix);
                    prop_assert_eq!(
                        after[target],
                        TemplateClass::Unknown,
                        "reader stayed safe although {} gained a writer", read_family
                    );
                }
            }
        }

        /// Soundness envelope: a safe verdict implies no shared family between the template's
        /// reads and anyone's writes, and (unless fresh) an empty write set.
        #[test]
        fn safe_verdicts_are_structurally_sound(
            mix in proptest::collection::vec(arb_spec(), 1..6),
        ) {
            let classes = classify(&mix);
            for (i, class) in classes.iter().enumerate() {
                if *class != TemplateClass::Safe {
                    continue;
                }
                for family in &mix[i].reads {
                    for other in &mix {
                        prop_assert!(
                            !other.writes.contains(family),
                            "safe template {} reads {} which {} writes", i, family, other.name
                        );
                    }
                }
                if !mix[i].writes.is_empty() {
                    prop_assert!(mix[i].fresh_writes, "non-fresh writer classified safe");
                    for family in &mix[i].writes {
                        for (j, other) in mix.iter().enumerate() {
                            if j == i { continue; }
                            prop_assert!(
                                !other.reads.contains(family) && !other.writes.contains(family),
                                "fresh writer {} shares family {} with template {}", i, family, j
                            );
                        }
                    }
                }
            }
        }
    }
}
