//! Algorithm 3 — abort-free reordering at block formation, plus Algorithm 5 (ww restoration).
//!
//! When the block-formation condition fires, the orderer:
//!
//! 1. topologically sorts the pending transactions according to reachability in the dependency
//!    graph — this *is* the reordering: every dependency recorded since the transactions
//!    arrived is respected, so no pending transaction needs to be aborted;
//! 2. restores the c-ww dependencies among pending transactions that were deliberately ignored
//!    at arrival time, orienting each one along the commit order just computed (Algorithm 5),
//!    so that *future* arrivals see the complete dependency information;
//! 3. persists the block's effects into the committed-transaction indices (CW / CR), marks the
//!    transactions committed in the graph, and clears the pending indices;
//! 4. prunes the graph and the committed indices below the `max_span` horizon (Section 4.6).

use crate::orderer_cc::FabricSharpCC;
use eov_common::txn::{Transaction, TxnId};
use eov_common::version::SeqNo;
use eov_depgraph::{snapshot_threshold, GraphEngine};
use eov_vstore::ShardedIndices;
use std::collections::HashMap;
use std::time::Instant;

impl FabricSharpCC {
    /// Algorithm 3: forms the next block from the pending set. Returns the transactions in
    /// their final commit order with `end_ts` assigned; returns an empty vector (and does not
    /// advance the block number) when nothing is pending.
    ///
    /// With [`CcConfig::pipelined_formation`] on, this degenerates to a synchronous
    /// seal-then-join round trip through the formation worker — same contract, same bits —
    /// so drivers that never overlap (tests, the phased chains) keep working unchanged.
    ///
    /// [`CcConfig::pipelined_formation`]: eov_common::config::CcConfig::pipelined_formation
    pub fn cut_block(&mut self) -> Vec<Transaction> {
        if self.config.pipelined_formation {
            if self.begin_cut() == 0 {
                return Vec::new();
            }
            return self.finish_cut().txns;
        }
        if self.pending_txns.is_empty() {
            return Vec::new();
        }
        let block_no = self.next_block;

        // Step 1: compute the commit order (topological sort over reachability). The `_par`
        // entry point fans the sharded engine's per-shard sorts out across the formation
        // worker pool when one is configured; the k-way merge behind it re-imposes the same
        // deterministic order the inline sort computes.
        let t_order = Instant::now();
        let tracked_order: Vec<TxnId> = self
            .graph
            .topo_sort_pending_par()
            .into_iter()
            .filter(|id| self.pending_txns.contains_key(&id.0))
            .collect();
        // Template fast path: splice the untracked (safe-class) transactions back in at their
        // acceptance positions. With the fast path off, `safe_pending` is always empty and
        // `tracked_order` passes through untouched.
        let order = merge_safe_into_order(tracked_order, &self.safe_pending, &self.pending_seq);
        self.stats.reorder_compute_order += t_order.elapsed();

        // Step 2: restore ww dependencies among pending transactions along that order.
        let t_ww = Instant::now();
        let raw_chains = raw_ww_chains(&self.indices);
        restore_ww_from_chains(&mut self.graph, &order, &raw_chains);
        self.stats.reorder_restore_ww += t_ww.elapsed();

        // Step 3: persist — assign slots, update CW/CR, mark committed in the graph.
        let t_persist = Instant::now();
        let (block_txns, span_sum) = persist_block_graph_side(
            &mut self.graph,
            &mut self.pending_txns,
            &order,
            block_no,
            self.config.template_fastpath,
        );
        persist_block_index_side(
            &mut self.indices,
            &block_txns,
            self.config.template_fastpath,
        );
        for txn in &block_txns {
            self.pending_seq.remove(&txn.id.0);
        }
        self.stats.block_span_sum += span_sum;
        self.safe_pending.clear();
        self.indices.clear_pending();
        self.stats.reorder_persist += t_persist.elapsed();

        // Step 4: prune everything that can no longer matter.
        let t_prune = Instant::now();
        let next = block_no + 1;
        self.graph.prune_for_next_block(next);
        let horizon = snapshot_threshold(next, self.config.max_span);
        self.indices.prune_committed_below(horizon);
        self.stats.reorder_prune += t_prune.elapsed();

        self.stats.blocks_formed += 1;
        self.stats.committed += block_txns.len() as u64;
        self.next_block = next;
        block_txns
    }
}

/// Merges the fast-path (untracked) pending transactions into the tracked topological
/// order by acceptance sequence, reproducing the reference order bit for bit.
///
/// Why this is exact: the reference topo sort is a Kahn sort whose ready-heap is keyed by
/// pending-list slot — i.e. acceptance order. A safe transaction's node is edge-free, so
/// in the reference run it is ready from the first step and pops exactly when its slot is
/// the minimum among ready nodes: immediately before the first tracked transaction that
/// *follows* it in acceptance order pops. Emitting safe transactions changes no tracked
/// transaction's readiness (no edges), so the tracked subsequence is unchanged. Hence:
/// walk the tracked order, and before each tracked transaction emit every remaining safe
/// transaction accepted earlier than it; leftovers go at the end.
pub(crate) fn merge_safe_into_order(
    tracked: Vec<TxnId>,
    safe_pending: &[TxnId],
    pending_seq: &HashMap<u64, u64>,
) -> Vec<TxnId> {
    if safe_pending.is_empty() {
        return tracked;
    }
    let mut merged = Vec::with_capacity(tracked.len() + safe_pending.len());
    let mut safe = safe_pending.iter().copied().peekable();
    for id in tracked {
        let tracked_seq = pending_seq[&id.0];
        while let Some(next_safe) = safe.peek().copied() {
            if pending_seq[&next_safe.0] < tracked_seq {
                merged.push(next_safe);
                safe.next();
            } else {
                break;
            }
        }
        merged.push(id);
    }
    merged.extend(safe);
    merged
}

/// Snapshots the raw per-key pending-writer chains in deterministic key order: for every key
/// with at least one pending writer, the writers in PW record order tagged with the owning
/// shard. Position filtering against the commit order happens later, in
/// [`restore_ww_from_chains`] — keeping the snapshot order-free lets pipelined formation take
/// it at seal time, before the commit order exists.
///
/// Deterministic iteration: the keys are sorted (PendingIndex iteration order is not
/// deterministic across replicas, but the set of keys is identical, so sorting fixes the
/// replication requirement of Section 3.5). Each key routes to exactly one shard, so the
/// (shard, key) pairs are unique and the key order is total. Only the `TxnId` lists are
/// copied — the keys themselves stay borrowed (the ROADMAP-named per-block `String` clone
/// hot spot stays gone).
pub(crate) fn raw_ww_chains(indices: &ShardedIndices) -> Vec<(usize, Vec<TxnId>)> {
    let mut keyed: Vec<(usize, &eov_common::rwset::Key, &[TxnId])> = indices.iter_pw().collect();
    keyed.sort_by(|a, b| a.1.cmp(b.1));
    keyed
        .into_iter()
        .map(|(shard, _key, txns)| (shard, txns.to_vec()))
        .collect()
}

/// Algorithm 5: for every key written by pending transactions, walk its writers in the
/// computed commit order, connect every consecutive pair that is not already connected in
/// the reachability structure, and propagate the updated reachability downstream once, in
/// topological order. `raw_chains` is the key-ordered snapshot from [`raw_ww_chains`].
pub(crate) fn restore_ww_from_chains(
    graph: &mut GraphEngine,
    order: &[TxnId],
    raw_chains: &[(usize, Vec<TxnId>)],
) {
    let position: HashMap<TxnId, usize> =
        order.iter().enumerate().map(|(i, id)| (*id, i)).collect();

    // Per-key writer chains, one construction shared by both execution paths below: only
    // pending writers that made it into the order matter, and a chain needs at least two
    // of them to induce an edge.
    let chains: Vec<(usize, Vec<TxnId>)> = raw_chains
        .iter()
        .filter_map(|(shard, txns)| {
            let mut writers: Vec<TxnId> = txns
                .iter()
                .copied()
                .filter(|t| position.contains_key(t))
                .collect();
            if writers.len() < 2 {
                return None;
            }
            writers.sort_by_key(|t| position[t]);
            Some((*shard, writers))
        })
        .collect();

    // Parallel decomposition: with a formation worker pool attached and no live border
    // transaction, every per-key writer chain and its downstream closure stays inside the
    // shard owning the key, so the whole restoration + propagation step decomposes into
    // independent per-shard jobs (operations on disjoint shards commute, hence the result
    // is bit-identical to the sequential interleaving below — pinned by the depgraph
    // proptests and end-to-end by `tests/parallel_formation_determinism.rs`).
    if graph.can_restore_ww_per_shard() {
        let mut chains_by_shard: std::collections::BTreeMap<usize, Vec<Vec<TxnId>>> =
            std::collections::BTreeMap::new();
        for (shard, writers) in chains {
            chains_by_shard.entry(shard).or_default().push(writers);
        }
        graph.restore_ww_chains(chains_by_shard.into_iter().collect());
        return;
    }

    let mut head_txns: Vec<TxnId> = Vec::new();
    for (shard, writers) in chains {
        // Connect every consecutive pair that is not already connected; pairs already
        // connected (like Txn0 → Txn3 in Figure 9) are implicit. The paper's Algorithm 5
        // restores only the *first* unconnected pair per key, but with three or more
        // pending writers of one key that leaves the ww chain incomplete and a later
        // arrival can close an undetected cycle through the committed tail of the chain
        // (caught by the `formation_properties` property test). Restoring every
        // consecutive pair keeps the graph acyclic (edges always follow the commit order)
        // and is therefore a strictly safe strengthening.
        for pair in writers.windows(2) {
            let (first, second) = (pair[0], pair[1]);
            if graph.already_connected(first, second) {
                continue;
            }
            graph.add_ww_edge(shard, first, second);
            if !head_txns.contains(&second) {
                head_txns.push(second);
            }
        }
    }

    // Propagate the new reachability downstream exactly once per node, in topological
    // order (Figure 9: Txn8 is reachable through both restored edges but is updated once).
    graph.propagate_from(&head_txns);
}

/// The graph half of block persistence: walks the commit order, moves each transaction out of
/// `pending_txns` with its slot assigned, and marks it committed (or logs the untracked
/// commit for fast-path transactions). Returns the block plus the summed block span. The
/// graph and the CW/CR indices are disjoint structures, so splitting the reference
/// interleaving into a graph pass here and an index pass in [`persist_block_index_side`]
/// leaves every observable bit identical — which is what lets pipelined formation run this
/// half on the worker while the indices stay with the driver.
pub(crate) fn persist_block_graph_side(
    graph: &mut GraphEngine,
    pending_txns: &mut HashMap<u64, Transaction>,
    order: &[TxnId],
    block_no: u64,
    template_fastpath: bool,
) -> (Vec<Transaction>, u64) {
    let mut block_txns = Vec::with_capacity(order.len());
    let mut span_sum = 0u64;
    for (i, id) in order.iter().enumerate() {
        let mut txn = pending_txns
            .remove(&id.0)
            .expect("order only contains pending transactions");
        let slot = SeqNo::new(block_no, i as u32 + 1);
        txn.end_ts = Some(slot);
        if template_fastpath && txn.template_class.is_safe() {
            // Fast-path transaction: it has no graph node to mark and no conflicts any
            // future arrival could resolve against. The untracked-commit log keeps replay
            // idempotent until the commit ages past the pruning horizon.
            graph.note_untracked_commit(txn.id, block_no);
        } else {
            graph.mark_committed(txn.id, slot);
        }
        span_sum += txn.block_span().unwrap_or(0);
        block_txns.push(txn);
    }
    (block_txns, span_sum)
}

/// The index half of block persistence: records the committed reads and writes of every
/// non-fast-path transaction, in commit order, dropping stale readers of each overwritten
/// key. See [`persist_block_graph_side`] for why the split is exact.
pub(crate) fn persist_block_index_side(
    indices: &mut ShardedIndices,
    block_txns: &[Transaction],
    template_fastpath: bool,
) {
    for txn in block_txns {
        if template_fastpath && txn.template_class.is_safe() {
            // Fast-path transaction: nothing ever resolves against its keys, so the CW/CR
            // updates are skipped wholesale.
            continue;
        }
        let slot = txn.end_ts.expect("block transactions carry their slot");
        // Committed-read index: record this transaction as a reader of each key it read.
        for read in txn.read_set.iter() {
            indices.record_cr(read.key.clone(), slot, txn.id);
        }
        // Committed-write index: record the writes and drop readers of the overwritten
        // values (they no longer read the latest version).
        for write in txn.write_set.iter() {
            indices.record_cw(write.key.clone(), slot, txn.id);
            indices.drop_stale_readers(&write.key, slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eov_common::config::CcConfig;
    use eov_common::rwset::{Key, Value};
    use eov_common::version::SeqNo as V;

    fn k(s: &str) -> Key {
        Key::new(s)
    }

    fn txn(id: u64, snapshot: u64, reads: &[(&str, (u64, u32))], writes: &[&str]) -> Transaction {
        Transaction::from_parts(
            id,
            snapshot,
            reads.iter().map(|(key, v)| (k(key), V::new(v.0, v.1))),
            writes
                .iter()
                .map(|key| (k(key), Value::from_i64(id as i64))),
        )
    }

    fn exact_cc() -> FabricSharpCC {
        FabricSharpCC::new(CcConfig {
            track_exact_reachability: true,
            ..CcConfig::default()
        })
    }

    #[test]
    fn empty_cut_is_a_noop() {
        let mut cc = exact_cc();
        assert!(cc.cut_block().is_empty());
        assert_eq!(cc.next_block(), 1);
        assert_eq!(cc.stats().blocks_formed, 0);
    }

    #[test]
    fn cut_assigns_slots_in_dependency_respecting_order() {
        let mut cc = exact_cc();
        // Consensus order: t2 then t1, but t2 depends on t1 (t2 writes A which t1 read, giving
        // t1 → t2 via rw when t1 arrives first... here we arrange the reverse): t1 reads A,
        // t2 writes A. Arrival order t2, t1: when t1 arrives, PW[A] contains t2, so t1 gains an
        // anti-rw successor t2 → order must place t1 before t2.
        assert!(cc.on_arrival(txn(2, 0, &[], &["A"])).is_accept());
        assert!(cc
            .on_arrival(txn(1, 0, &[("A", (0, 1))], &["B"]))
            .is_accept());
        let block = cc.cut_block();
        assert_eq!(block.len(), 2);
        assert_eq!(
            block[0].id.0, 1,
            "the reader must be serialized before the writer"
        );
        assert_eq!(block[1].id.0, 2);
        assert_eq!(block[0].end_ts, Some(V::new(1, 1)));
        assert_eq!(block[1].end_ts, Some(V::new(1, 2)));
        assert_eq!(cc.next_block(), 2);
        assert_eq!(cc.pending_len(), 0);
        assert_eq!(cc.stats().committed, 2);
    }

    #[test]
    fn committed_indices_are_updated_for_later_arrivals() {
        let mut cc = exact_cc();
        assert!(cc
            .on_arrival(txn(1, 0, &[("A", (0, 1))], &["B"]))
            .is_accept());
        let block1 = cc.cut_block();
        assert_eq!(block1.len(), 1);

        // A new transaction that read B at the *genesis* version even though txn1 just wrote
        // B in block 1: its readset is stale relative to the committed write, which shows up
        // as an anti-rw successor pointing at a committed transaction. On its own that is
        // harmless (accepted)...
        assert!(cc
            .on_arrival(txn(2, 0, &[("B", (0, 1))], &["C"]))
            .is_accept());
        // ...but a third transaction that also closes the loop back to txn2 is rejected:
        // txn3 reads C (stale vs txn2's pending write → succ txn2) and writes B
        // (rw: committed reader txn... and ww to committed writer txn1). The cycle
        // txn2 → txn3 → txn2 has no pending c-ww, so it is unreorderable.
        let decision = cc.on_arrival(txn(3, 0, &[("C", (0, 1))], &["B"]));
        assert!(!decision.is_accept());
    }

    #[test]
    fn ww_restoration_orders_pending_writers_of_the_same_key() {
        let mut cc = exact_cc();
        // Three blind writers of the same key H: no dependencies at arrival (c-ww ignored), so
        // the commit order is the arrival order and the restoration links the first
        // unconnected pair.
        assert!(cc.on_arrival(txn(1, 0, &[], &["H"])).is_accept());
        assert!(cc.on_arrival(txn(2, 0, &[], &["H"])).is_accept());
        assert!(cc.on_arrival(txn(3, 0, &[], &["H"])).is_accept());
        let block = cc.cut_block();
        let ids: Vec<u64> = block.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3]);
        // The restored edge connects txn1 → txn2 in the graph.
        assert!(cc
            .graph()
            .reaches_exact(eov_common::txn::TxnId(1), eov_common::txn::TxnId(2)));
    }

    #[test]
    fn block_numbers_and_spans_accumulate_across_blocks() {
        let mut cc = exact_cc();
        assert!(cc.on_arrival(txn(1, 0, &[], &["A"])).is_accept());
        let b1 = cc.cut_block();
        assert_eq!(b1[0].end_ts.unwrap().block, 1);

        assert!(cc.on_arrival(txn(2, 0, &[], &["B"])).is_accept());
        assert!(cc.on_arrival(txn(3, 1, &[], &["C"])).is_accept());
        let b2 = cc.cut_block();
        assert_eq!(b2.len(), 2);
        assert_eq!(b2[0].end_ts.unwrap().block, 2);
        // Spans: txn1 committed in block 1 from snapshot 0 (span 1); txn2 block 2 from
        // snapshot 0 (span 2); txn3 block 2 from snapshot 1 (span 1). Total 4.
        assert_eq!(cc.stats().block_span_sum, 4);
        assert_eq!(cc.stats().blocks_formed, 2);
    }

    #[test]
    fn graph_is_pruned_once_transactions_age_out() {
        let mut cc = FabricSharpCC::new(CcConfig {
            max_span: 2,
            track_exact_reachability: true,
            ..CcConfig::default()
        });
        assert!(cc.on_arrival(txn(1, 0, &[], &["A"])).is_accept());
        cc.cut_block(); // block 1
        assert!(cc.graph().contains(eov_common::txn::TxnId(1)));

        // Keep cutting blocks with fresh snapshots; after the horizon passes block 1, txn1 is
        // pruned from the graph and from the committed indices.
        for (id, snapshot) in [(2u64, 1u64), (3, 2), (4, 3)] {
            assert!(cc.on_arrival(txn(id, snapshot, &[], &["B"])).is_accept());
            cc.cut_block();
        }
        assert!(!cc.graph().contains(eov_common::txn::TxnId(1)));
    }
}
