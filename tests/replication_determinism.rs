//! Replication and determinism: the paper's safety argument (Section 3.5) requires every
//! honest orderer, fed the same consensus stream, to perform the same reordering and deliver
//! identical blocks. These tests drive independent controller replicas from a shared
//! `ConsensusLog` and compare their outputs, and exercise the hash-commitment mitigation.

use fabricsharp::consensus::adversary::{
    commitment_of, ClientSubmission, FrontRunningLeader, LeaderPolicy,
};
use fabricsharp::consensus::{BlockCutter, ConsensusLog, Submission};
use fabricsharp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a stream of moderately contended transactions over 6 keys.
fn transaction_stream(count: usize, seed: u64) -> Vec<Transaction> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let read_key = Key::new(format!("k{}", rng.gen_range(0..6)));
            let write_key = Key::new(format!("k{}", rng.gen_range(0..6)));
            Transaction::from_parts(
                i as u64 + 1,
                0,
                [(read_key, SeqNo::new(0, 1))],
                [(write_key, Value::from_i64(i as i64))],
            )
        })
        .collect()
}

#[test]
fn replicated_fabricsharp_orderers_produce_identical_blocks() {
    let log = ConsensusLog::new();
    for txn in transaction_stream(120, 4) {
        log.append(Submission { txn, submitter: 0 });
    }

    // Two independent replicas replay the same log with the same block-formation rule.
    let mut replicas: Vec<(FabricSharpCC, Vec<Vec<u64>>)> = (0..2)
        .map(|_| (FabricSharpCC::with_defaults(), Vec::new()))
        .collect();
    for (cc, blocks) in &mut replicas {
        let mut cursor = log.cursor();
        while let Some(submission) = cursor.poll() {
            let _ = cc.on_arrival(submission.txn);
            if cc.pending_len() >= 30 {
                blocks.push(cc.cut_block().iter().map(|t| t.id.0).collect());
            }
        }
        let tail = cc.cut_block();
        if !tail.is_empty() {
            blocks.push(tail.iter().map(|t| t.id.0).collect());
        }
    }
    let (_, blocks_a) = &replicas[0];
    let (_, blocks_b) = &replicas[1];
    assert_eq!(
        blocks_a, blocks_b,
        "replicas disagreed on block contents or order"
    );
    assert!(!blocks_a.is_empty());
}

#[test]
fn block_cutters_fed_from_the_same_log_cut_identical_batches() {
    let log = ConsensusLog::new();
    let producer = log.producer();
    for txn in transaction_stream(57, 9) {
        producer.submit(txn, 1);
    }
    log.ingest();

    let config = BlockConfig {
        max_txns_per_block: 10,
        block_timeout_ms: 1_000,
    };
    let cut_ids = |mut cutter: BlockCutter| -> Vec<Vec<u64>> {
        let mut cursor = log.cursor();
        let mut blocks = Vec::new();
        let mut t = 0u64;
        while let Some(submission) = cursor.poll() {
            t += 1;
            if let Some(batch) = cutter.enqueue(submission.txn, t) {
                blocks.push(batch.txns.iter().map(|x| x.id.0).collect());
            }
        }
        if let Some(batch) = cutter.flush(t + 1) {
            blocks.push(batch.txns.iter().map(|x| x.id.0).collect());
        }
        blocks
    };
    let a = cut_ids(BlockCutter::new(config));
    let b = cut_ids(BlockCutter::new(config));
    assert_eq!(a, b);
    assert_eq!(
        a.len(),
        6,
        "57 transactions at 10 per block = 5 full blocks + 1 flush"
    );
}

#[test]
fn simulator_runs_are_reproducible_for_identical_configurations() {
    let mut config =
        SimulationConfig::new(SystemKind::FabricSharp, WorkloadKind::ModifiedSmallbank);
    config.duration_s = 2.0;
    config.params.num_accounts = 500;
    config.params.request_rate_tps = 300;
    let a = Simulator::run(&config);
    let b = Simulator::run(&config);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.in_ledger, b.in_ledger);
    assert_eq!(a.blocks, b.blocks);
    assert_eq!(a.aborted(), b.aborted());
}

#[test]
fn front_running_leader_aborts_the_victim_but_commitments_defeat_it() {
    let victim = Transaction::from_parts(
        7,
        0,
        [(Key::new("asset"), SeqNo::new(0, 1))],
        [(Key::new("asset"), Value::from_i64(1))],
    );

    // Plaintext submission: the fabricated conflicting transaction is sequenced first and the
    // victim closes an unreorderable cycle, so FabricSharp aborts it.
    let mut attacker = FrontRunningLeader::new(Key::new("asset"), |v: &Transaction| {
        let mut attack = v.clone();
        attack.id = TxnId(1_000_000 + v.id.0);
        attack
    });
    let order = attacker.propose_order(vec![ClientSubmission::Plain(victim.clone())]);
    let mut cc = FabricSharpCC::with_defaults();
    let mut decisions = Vec::new();
    for submission in order {
        let txn = submission
            .reveal()
            .expect("plaintext submissions always reveal");
        decisions.push((txn.id.0, cc.on_arrival(txn).is_accept()));
    }
    assert_eq!(decisions.len(), 2);
    assert!(decisions[0].1, "the front-running transaction is accepted");
    assert!(!decisions[1].1, "the victim is aborted by the attack");

    // Commitment submission: the leader sees only the hash, injects nothing, and the victim
    // commits. A post-ordering mutation of the sealed contents is detected.
    let mut blinded = FrontRunningLeader::new(Key::new("asset"), |v: &Transaction| v.clone());
    let order = blinded.propose_order(vec![ClientSubmission::committed(victim.clone())]);
    assert_eq!(order.len(), 1);
    assert_eq!(blinded.attacks_launched, 0);
    let mut cc = FabricSharpCC::with_defaults();
    let revealed = order.into_iter().next().unwrap().reveal().unwrap();
    assert!(cc.on_arrival(revealed).is_accept());

    let mut tampered = victim.clone();
    tampered
        .write_set
        .record(Key::new("asset"), Value::from_i64(999));
    let bad = ClientSubmission::Committed {
        commitment: commitment_of(&victim),
        sealed: tampered,
    };
    assert!(
        bad.reveal().is_err(),
        "a mutated reveal must not match its commitment"
    );
}
