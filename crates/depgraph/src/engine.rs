//! [`GraphEngine`]: the orderer-facing dispatch between the unsharded reference graph and the
//! key-space sharded graph.
//!
//! `FabricSharpCC` holds one of these; `CcConfig::store_shards` selects the variant at
//! construction time. Both variants answer every query identically (the sharded one by
//! construction — see [`crate::sharded`]), so the concurrency control's algorithms are written
//! once against this surface.
//!
//! Besides the tracked graph, the engine keeps an **untracked-commit log**: transactions the
//! orderer committed *without* ever inserting them into the graph (the template fast path —
//! statically safe transaction classes skip insertion entirely). The log answers the
//! idempotence questions the graph would otherwise answer (`is_untracked` backs the arrival
//! guard and `register_committed`'s already-seen check) and is pruned on the same
//! `snapshot_threshold` schedule as committed graph nodes, so recovery and replay behave
//! identically whether a committed transaction was tracked or not.

use crate::graph::{CycleCheck, DependencyGraph, InsertReport, PendingTxnSpec, TxnNode};
use crate::prune::snapshot_threshold;
use crate::sharded::{ShardDeps, ShardedDependencyGraph};
use eov_common::config::CcConfig;
use eov_common::txn::TxnId;
use eov_common::version::SeqNo;
use std::collections::HashMap;

/// The tracked-graph variant behind a [`GraphEngine`].
#[derive(Clone, Debug)]
enum EngineKind {
    /// One global graph — the unsharded reference engine (`store_shards == 0`).
    Global(DependencyGraph),
    /// Per-shard graphs with the cross-shard coordinator (`store_shards >= 1`).
    Sharded(ShardedDependencyGraph),
}

/// The dependency-graph engine behind the FabricSharp orderer: the tracked graph (global or
/// sharded) plus the untracked-commit log for graph-bypassing transactions.
#[derive(Clone, Debug)]
pub struct GraphEngine {
    kind: EngineKind,
    /// Commit block of every transaction committed without graph insertion, pruned on the
    /// committed-node schedule.
    untracked: HashMap<TxnId, u64>,
}

impl GraphEngine {
    /// Builds the engine selected by `config.store_shards`; `config.formation_threads` attaches
    /// the sharded engine's worker pool (inert for the flat engine, which has no per-shard
    /// decomposition to fan out).
    pub fn new(config: CcConfig) -> Self {
        let kind = if config.store_shards == 0 {
            EngineKind::Global(DependencyGraph::new(config))
        } else {
            EngineKind::Sharded(
                ShardedDependencyGraph::new(config, config.store_shards)
                    .with_formation_threads(config.formation_threads),
            )
        };
        GraphEngine {
            kind,
            untracked: HashMap::new(),
        }
    }

    /// Number of worker threads the sharded engine fans per-shard work out on (0 = inline,
    /// and always 0 for the flat engine).
    pub fn formation_threads(&self) -> usize {
        match &self.kind {
            EngineKind::Global(_) => 0,
            EngineKind::Sharded(g) => g.formation_threads(),
        }
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &CcConfig {
        match &self.kind {
            EngineKind::Global(g) => g.config(),
            EngineKind::Sharded(g) => g.config(),
        }
    }

    /// Number of key-space shards (1 for the global engine).
    pub fn shard_count(&self) -> usize {
        match &self.kind {
            EngineKind::Global(_) => 1,
            EngineKind::Sharded(g) => g.shard_count(),
        }
    }

    /// Number of live border (multi-shard) transactions; always 0 for the global engine.
    pub fn border_count(&self) -> usize {
        match &self.kind {
            EngineKind::Global(_) => 0,
            EngineKind::Sharded(g) => g.border_count(),
        }
    }

    /// Number of distinct transactions currently tracked (the untracked log is not counted —
    /// its entries were never graph-resident).
    pub fn len(&self) -> usize {
        match &self.kind {
            EngineKind::Global(g) => g.len(),
            EngineKind::Sharded(g) => g.len(),
        }
    }

    /// Whether no transaction is tracked.
    pub fn is_empty(&self) -> bool {
        match &self.kind {
            EngineKind::Global(g) => g.is_empty(),
            EngineKind::Sharded(g) => g.is_empty(),
        }
    }

    /// Whether `id` is currently tracked in the graph.
    pub fn contains(&self, id: TxnId) -> bool {
        match &self.kind {
            EngineKind::Global(g) => g.contains(id),
            EngineKind::Sharded(g) => g.contains(id),
        }
    }

    /// Records that `id` committed in `block` without ever being graph-inserted (template
    /// fast path). The entry ages out exactly when a committed graph node of that block
    /// would ([`GraphEngine::prune_for_next_block`]).
    pub fn note_untracked_commit(&mut self, id: TxnId, block: u64) {
        self.untracked.insert(id, block);
    }

    /// Whether `id` committed via the untracked (graph-bypassing) path and has not yet aged
    /// out of the log.
    pub fn is_untracked(&self, id: TxnId) -> bool {
        self.untracked.contains_key(&id)
    }

    /// Whether the engine knows `id` at all — tracked in the graph or in the untracked log.
    /// This is the idempotence question arrival and replay ask.
    pub fn knows(&self, id: TxnId) -> bool {
        self.contains(id) || self.is_untracked(id)
    }

    /// Membership snapshot of every id the engine currently knows (tracked graph nodes plus
    /// the untracked-commit log). Pipelined formation seals this set at the cut so the driver
    /// can keep answering [`GraphEngine::knows`]-style idempotence questions while the graph
    /// itself is away on the formation worker.
    pub fn known_ids(&self) -> std::collections::HashSet<TxnId> {
        let mut known: std::collections::HashSet<TxnId> = match &self.kind {
            EngineKind::Global(g) => g.tracked_ids().collect(),
            EngineKind::Sharded(g) => g.tracked_ids().collect(),
        };
        // lint-determinism: allow (membership set; no consumer sequences on iteration order)
        known.extend(self.untracked.keys().copied());
        known
    }

    /// Number of not-yet-pruned untracked commits (tests and stats).
    pub fn untracked_len(&self) -> usize {
        self.untracked.len()
    }

    /// Immutable access to a node (for the sharded engine: one of its copies — all copies
    /// agree on timestamps, age and the reach set).
    pub fn node(&self, id: TxnId) -> Option<&TxnNode> {
        match &self.kind {
            EngineKind::Global(g) => g.node(id),
            EngineKind::Sharded(g) => g.node(id),
        }
    }

    /// The immediate successors of `id` (union across shards for border transactions).
    pub fn successors(&self, id: TxnId) -> Vec<TxnId> {
        match &self.kind {
            EngineKind::Global(g) => g.successors(id),
            EngineKind::Sharded(g) => g.successors_global(id),
        }
    }

    /// Number of pending transactions.
    pub fn pending_len(&self) -> usize {
        match &self.kind {
            EngineKind::Global(g) => g.pending_len(),
            EngineKind::Sharded(g) => g.pending_len(),
        }
    }

    /// Section 4.4's arrival-time cycle probe.
    pub fn would_close_cycle(&self, preds: &[TxnId], succs: &[TxnId]) -> CycleCheck {
        match &self.kind {
            EngineKind::Global(g) => g.would_close_cycle(preds, succs),
            EngineKind::Sharded(g) => g.would_close_cycle(preds, succs),
        }
    }

    /// Algorithm 4: inserts a pending transaction. The global engine uses the flat dependency
    /// lists; the sharded engine uses `per_shard` (or, when it is empty, treats the spec as a
    /// single-shard transaction homed on shard 0 with the flat lists).
    pub fn insert_pending(
        &mut self,
        spec: PendingTxnSpec,
        global_preds: &[TxnId],
        global_succs: &[TxnId],
        per_shard: &[ShardDeps],
        next_block: u64,
    ) -> InsertReport {
        match &mut self.kind {
            EngineKind::Global(g) => g.insert_pending(spec, global_preds, global_succs, next_block),
            EngineKind::Sharded(g) => {
                g.insert_pending(spec, global_preds, global_succs, per_shard, next_block)
            }
        }
    }

    /// Marks a transaction committed at `end_ts`.
    pub fn mark_committed(&mut self, id: TxnId, end_ts: SeqNo) {
        match &mut self.kind {
            EngineKind::Global(g) => g.mark_committed(id, end_ts),
            EngineKind::Sharded(g) => g.mark_committed(id, end_ts),
        }
    }

    /// Removes a transaction entirely (withdrawals), from the graph and the untracked log.
    pub fn remove(&mut self, id: TxnId) {
        self.untracked.remove(&id);
        match &mut self.kind {
            EngineKind::Global(g) => g.remove(id),
            EngineKind::Sharded(g) => g.remove(id),
        }
    }

    /// Algorithm 3, line 1: the deterministic topological order of the pending set.
    pub fn topo_sort_pending(&self) -> Vec<TxnId> {
        match &self.kind {
            EngineKind::Global(g) => g.topo_sort_pending(),
            EngineKind::Sharded(g) => g.topo_sort_pending(),
        }
    }

    /// Worker-pool variant of [`GraphEngine::topo_sort_pending`]: the sharded engine fans its
    /// per-shard sorts out when a pool is attached; output is bit-identical either way. This
    /// is what block formation calls.
    pub fn topo_sort_pending_par(&mut self) -> Vec<TxnId> {
        match &mut self.kind {
            EngineKind::Global(g) => g.topo_sort_pending(),
            EngineKind::Sharded(g) => g.topo_sort_pending_par(),
        }
    }

    /// Whether Algorithm 5's ww restoration may be decomposed per shard and fanned out on the
    /// worker pool ([`GraphEngine::restore_ww_chains`]); always false for the flat engine.
    pub fn can_restore_ww_per_shard(&self) -> bool {
        match &self.kind {
            EngineKind::Global(_) => false,
            EngineKind::Sharded(g) => g.can_restore_ww_per_shard(),
        }
    }

    /// Algorithm 5 decomposed per shard (valid only when
    /// [`GraphEngine::can_restore_ww_per_shard`] holds): restores the per-key writer chains
    /// grouped by owning shard and propagates downstream inside each shard, fanning the
    /// independent shards out on the worker pool.
    pub fn restore_ww_chains(&mut self, chains_by_shard: Vec<(usize, Vec<Vec<TxnId>>)>) {
        match &mut self.kind {
            EngineKind::Global(_) => {
                unreachable!("callers gate on can_restore_ww_per_shard, which is false here")
            }
            EngineKind::Sharded(g) => g.restore_ww_chains(chains_by_shard),
        }
    }

    /// Whether `earlier` already reaches `later` (Algorithm 5's redundant-edge skip).
    pub fn already_connected(&self, earlier: TxnId, later: TxnId) -> bool {
        match &self.kind {
            EngineKind::Global(g) => g.already_connected(earlier, later),
            EngineKind::Sharded(g) => g.already_connected(earlier, later),
        }
    }

    /// Algorithm 5's restored ww edge; `shard` is the shard owning the restored key (ignored
    /// by the global engine).
    pub fn add_ww_edge(&mut self, shard: usize, from: TxnId, to: TxnId) {
        match &mut self.kind {
            EngineKind::Global(g) => g.add_edge_with_union(from, to),
            EngineKind::Sharded(g) => g.add_ww_edge(shard, from, to),
        }
    }

    /// The tail of Algorithm 5: propagates the restored reachability downstream of `heads`
    /// exactly once per node, in topological order.
    pub fn propagate_from(&mut self, heads: &[TxnId]) {
        match &mut self.kind {
            EngineKind::Global(g) => {
                let iteration = g.reachable_in_topo_order(heads);
                for txn in iteration {
                    for s in g.successors(txn) {
                        g.propagate_reachability(txn, s);
                    }
                }
            }
            EngineKind::Sharded(g) => g.propagate_from(heads),
        }
    }

    /// Section 4.6 pruning: evicts committed graph nodes *and* untracked-commit entries older
    /// than `snapshot_threshold(next_block, max_span)`. Returns the number of transactions
    /// removed across both stores, so the count is independent of which path committed them.
    pub fn prune_for_next_block(&mut self, next_block: u64) -> usize {
        let threshold = snapshot_threshold(next_block, self.config().max_span);
        let before = self.untracked.len();
        // lint-determinism: allow (pure filter; the predicate has no side effects)
        self.untracked.retain(|_, block| *block >= threshold);
        let untracked_pruned = before - self.untracked.len();
        let graph_pruned = match &mut self.kind {
            EngineKind::Global(g) => g.prune_for_next_block(next_block),
            EngineKind::Sharded(g) => g.prune_for_next_block(next_block),
        };
        graph_pruned + untracked_pruned
    }

    /// Exact reachability query (test oracles, false-positive classification).
    pub fn reaches_exact(&self, from: TxnId, to: TxnId) -> bool {
        match &self.kind {
            EngineKind::Global(g) => g.reaches_exact(from, to),
            EngineKind::Sharded(g) => g.reaches_exact(from, to),
        }
    }

    /// Exact whole-graph acyclicity (test oracle).
    pub fn is_acyclic_exact(&self) -> bool {
        match &self.kind {
            EngineKind::Global(g) => g.is_acyclic_exact(),
            EngineKind::Sharded(g) => g.is_acyclic_exact(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_variant_follows_the_store_shards_knob() {
        let global = GraphEngine::new(CcConfig::default());
        assert!(matches!(global.kind, EngineKind::Global(_)));
        assert_eq!(global.shard_count(), 1);
        assert_eq!(global.border_count(), 0);

        let sharded = GraphEngine::new(CcConfig {
            store_shards: 4,
            ..CcConfig::default()
        });
        assert!(matches!(sharded.kind, EngineKind::Sharded(_)));
        assert_eq!(sharded.shard_count(), 4);
        assert!(sharded.is_empty());
    }

    #[test]
    fn both_variants_agree_on_a_tiny_workload() {
        let mut engines = [
            GraphEngine::new(CcConfig {
                track_exact_reachability: true,
                ..CcConfig::default()
            }),
            GraphEngine::new(CcConfig {
                track_exact_reachability: true,
                store_shards: 2,
                ..CcConfig::default()
            }),
        ];
        for engine in &mut engines {
            let spec = |id: u64| PendingTxnSpec {
                id: TxnId(id),
                start_ts: SeqNo::snapshot_after(0),
                read_keys: vec![],
                write_keys: vec![],
            };
            engine.insert_pending(spec(1), &[], &[], &[], 1);
            engine.insert_pending(spec(2), &[TxnId(1)], &[], &[], 1);
            assert!(engine.contains(TxnId(2)));
            assert_eq!(engine.len(), 2);
            assert_eq!(engine.pending_len(), 2);
            assert!(engine.reaches_exact(TxnId(1), TxnId(2)));
            assert!(engine.is_acyclic_exact());
            assert!(!engine
                .would_close_cycle(&[TxnId(2)], &[TxnId(1)])
                .is_acyclic());
            assert_eq!(engine.topo_sort_pending(), vec![TxnId(1), TxnId(2)]);
            engine.mark_committed(TxnId(1), SeqNo::new(1, 1));
            assert_eq!(engine.pending_len(), 1);
            assert_eq!(engine.successors(TxnId(1)), vec![TxnId(2)]);
        }
    }

    #[test]
    fn untracked_commits_are_known_and_age_out_on_the_committed_schedule() {
        for shards in [0usize, 2] {
            let mut engine = GraphEngine::new(CcConfig {
                store_shards: shards,
                ..CcConfig::default()
            });
            let max_span = engine.config().max_span;
            engine.note_untracked_commit(TxnId(1), 1);
            engine.note_untracked_commit(TxnId(2), 5);
            assert!(engine.is_untracked(TxnId(1)), "shards={shards}");
            assert!(engine.knows(TxnId(2)));
            assert!(
                !engine.contains(TxnId(1)),
                "log entries are not graph nodes"
            );
            assert_eq!(engine.untracked_len(), 2);
            assert_eq!(engine.len(), 0);

            // Pruning for block `1 + max_span + 1` evicts the block-1 commit (its age fell
            // below the snapshot threshold) but keeps the block-5 one.
            let pruned = engine.prune_for_next_block(1 + max_span + 1);
            assert_eq!(pruned, 1, "shards={shards}");
            assert!(!engine.knows(TxnId(1)));
            assert!(engine.is_untracked(TxnId(2)));

            // Withdrawal removes log entries too.
            engine.remove(TxnId(2));
            assert!(!engine.knows(TxnId(2)));
            assert_eq!(engine.untracked_len(), 0);
        }
    }
}
